#![warn(missing_docs)]
//! THINC: a virtual display architecture for thin-client computing.
//!
//! This is the umbrella crate of the workspace; it re-exports every
//! subsystem so that examples and integration tests can use a single
//! dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
pub use thinc_baselines as baselines;
pub use thinc_bench as bench;
pub use thinc_client as client;
pub use thinc_compress as compress;
pub use thinc_core as core;
pub use thinc_display as display;
pub use thinc_net as net;
pub use thinc_protocol as protocol;
pub use thinc_raster as raster;
pub use thinc_telemetry as telemetry;
pub use thinc_workloads as workloads;
