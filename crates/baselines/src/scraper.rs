//! The screen-scraping, client-pull systems: VNC and the GoToMyPC
//! class.
//!
//! Both reduce everything to framebuffer pixels and compress them;
//! the client *requests* each update ("the client-pull model used by
//! popular systems such as VNC and GoToMyPC", §5), which costs at
//! least half a round trip per update and caps the video frame rate
//! at the request rate — the effect behind VNC's halved WAN A/V
//! quality in Figure 5. GoToMyPC additionally quantizes to 8-bit
//! color, compresses very aggressively (high server CPU — "complex
//! compression algorithms ... at the expense of high server
//! utilization and longer latencies"), and routes every byte through
//! a hosted relay that adds ~70 ms of RTT.

use thinc_compress::{adaptive_codec, Codec};
use thinc_display::driver::NullDriver;
use thinc_display::request::DrawRequest;
use thinc_display::server::WindowServer;
use thinc_net::link::{DuplexLink, NetworkConfig};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::{Direction, PacketTrace};
use thinc_raster::{PixelFormat, Point, Rect, Region, YuvFrame};

use crate::framework::{encode_region, raster_cost, server_time};
use crate::traits::{AvStats, RemoteDisplay};

/// Configuration of a scraping system.
struct ScrapeConfig {
    name: &'static str,
    /// Wire pixel depth in bytes (GoToMyPC: 1; VNC: 3).
    depth_bytes: usize,
    /// Pixel codec.
    codec: Codec,
    /// Multiplier on encode CPU (GoToMyPC's heavyweight compressor).
    cpu_factor: u64,
    /// Client viewport; when smaller than the session the client
    /// *clips* (VNC) — only the intersecting part is sent.
    viewport: Option<(u32, u32)>,
}

/// A screen-scraping client-pull system.
pub struct Scraper {
    cfg: ScrapeConfig,
    ws: WindowServer<NullDriver>,
    link: DuplexLink,
    trace: PacketTrace,
    /// Pending damage not yet sent.
    damage: Region,
    /// Server-side arrival time of the client's outstanding update
    /// request, if any.
    pending_request: Option<SimTime>,
    /// Earliest time the server can serve (CPU busy horizon).
    cpu_free: SimTime,
    last_arrival: Option<SimTime>,
    av: AvStats,
    /// Current on-screen video rectangle (for frame accounting).
    video_rect: Option<Rect>,
    frames_pending: u32,
}

/// VNC 4.0-style system: 24-bit, adaptive encoding, client pull.
pub struct Vnc(Scraper);

/// GoToMyPC-style system: 8-bit, heavy compression, relay-routed.
pub struct GoToMyPc(Scraper);

impl Vnc {
    /// VNC over `net` with full-size client display.
    pub fn new(net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self::with_viewport(net, width, height, None)
    }

    /// VNC with a small client screen: the display is clipped to the
    /// viewport (VNC has no resize support, §8.3).
    pub fn with_viewport(
        net: &NetworkConfig,
        width: u32,
        height: u32,
        viewport: Option<(u32, u32)>,
    ) -> Self {
        // Adaptive encoding: cheap pixel-RLE on fast local links,
        // heavier dictionary coding once latency indicates a WAN
        // ("adaptive compression schemes which change encoding
        // settings according to the characteristics of the link").
        let codec = if net.rtt >= SimDuration::from_millis(10) {
            Codec::Lzss
        } else {
            adaptive_codec(net.bandwidth_bps, 3, width as usize * 3)
        };
        Self(Scraper::new(
            ScrapeConfig {
                name: "VNC",
                depth_bytes: 3,
                codec,
                cpu_factor: 1,
                viewport,
            },
            net,
            width,
            height,
        ))
    }
}

impl GoToMyPc {
    /// GoToMyPC over `net`; the hosted relay hop is added internally
    /// (the paper measured ~70 ms RTT through the relay).
    pub fn new(net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self::with_viewport(net, width, height, None)
    }

    /// GoToMyPC with a small client screen: client-side resize (the
    /// full-size data is still sent; the client scales it down).
    pub fn with_viewport(
        net: &NetworkConfig,
        width: u32,
        height: u32,
        viewport: Option<(u32, u32)>,
    ) -> Self {
        let relay = NetworkConfig::custom(
            "relay",
            net.bandwidth_bps,
            SimDuration::from_millis(70).max(net.rtt) - net.rtt,
            net.rwnd_bytes,
        );
        let routed = net.via_relay(&relay);
        let mut s = Scraper::new(
            ScrapeConfig {
                name: "GoToMyPC",
                depth_bytes: 1,
                codec: Codec::PngLike {
                    bpp: 1,
                    stride: width as usize,
                },
                // "Complex compression algorithms ... at the expense
                // of high server utilization and longer latencies."
                cpu_factor: 25,
                // Client-side resize: full data sent regardless.
                viewport: None,
            },
            &routed,
            width,
            height,
        );
        let _ = viewport; // Resize happens on the client; wire unchanged.
        s.cfg.name = "GoToMyPC";
        Self(s)
    }
}

impl Scraper {
    fn new(cfg: ScrapeConfig, net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self {
            cfg,
            ws: WindowServer::new(width, height, PixelFormat::Rgb888, NullDriver),
            link: net.connect(),
            trace: PacketTrace::new(),
            damage: Region::new(),
            // The client's first update request is in flight at t=0.
            pending_request: Some(SimTime::ZERO + net.rtt.div(2)),
            cpu_free: SimTime::ZERO,
            last_arrival: None,
            av: AvStats::default(),
            video_rect: None,
            frames_pending: 0,
        }
    }

    /// Serves pull cycles whose request has arrived by `now`.
    fn serve(&mut self, now: SimTime) {
        #[allow(clippy::while_let_loop)] // Multiple exit conditions read better this way.
        loop {
            let Some(req_at) = self.pending_request else { break };
            if req_at > now {
                break;
            }
            if self.damage.is_empty() {
                // Server waits for content; it will reply as soon as
                // new drawing occurs (handled on next serve call).
                break;
            }
            let mut region = self.damage.clone();
            if let Some((vw, vh)) = self.cfg.viewport {
                // Clipping client: only the viewport's pixels travel.
                region.intersect_rect(&Rect::new(0, 0, vw, vh));
                if region.is_empty() {
                    // Damage entirely outside the viewport: consumed.
                    self.damage = Region::new();
                    self.request_again(req_at);
                    continue;
                }
            }
            self.damage = Region::new();
            let (bytes, cycles) =
                encode_region(self.ws.screen(), &region, self.cfg.codec, self.cfg.depth_bytes);
            let cpu = server_time(cycles * self.cfg.cpu_factor);
            let t = req_at.max(self.cpu_free).max(now);
            self.cpu_free = t + cpu;
            let arrival = self.link.send_down(self.cpu_free, bytes);
            self.trace
                .record(self.cpu_free, arrival, bytes, Direction::Down, "update");
            self.last_arrival = Some(arrival);
            // Video frame accounting: this update showed the video
            // area once, however many frames were coalesced into it.
            if let Some(vr) = self.video_rect {
                if region.intersects_rect(&vr) && self.frames_pending > 0 {
                    self.av.frames_delivered += 1;
                    self.av.frames_dropped += self.frames_pending - 1;
                    self.frames_pending = 0;
                }
            }
            self.request_again(arrival);
        }
    }

    fn request_again(&mut self, client_time: SimTime) {
        let arr = self.link.send_up(client_time, 24);
        self.trace.record(client_time, arr, 24, Direction::Up, "pull");
        self.pending_request = Some(arr);
    }
}

macro_rules! impl_scraper {
    ($ty:ty) => {
        impl RemoteDisplay for $ty {
            fn name(&self) -> String {
                self.0.cfg.name.into()
            }
            fn click(&mut self, now: SimTime, _pos: Point) -> SimTime {
                let arr = self.0.link.send_up(now, 48);
                self.0.trace.record(now, arr, 48, Direction::Up, "input");
                arr
            }
            fn process(&mut self, now: SimTime, reqs: Vec<DrawRequest>) -> SimDuration {
                let cpu = server_time(raster_cost(&reqs));
                self.0.ws.process_all(reqs);
                let dmg = self.0.ws.take_screen_damage();
                self.0.damage.union(&dmg);
                self.0.serve(now + cpu);
                cpu
            }
            fn pump(&mut self, now: SimTime) {
                self.0.serve(now);
            }
            fn drain(&mut self, from: SimTime) -> SimTime {
                let mut now = from;
                for _ in 0..10_000 {
                    if self.0.damage.is_empty() {
                        break;
                    }
                    let next = self.0.pending_request.unwrap_or(now).max(now);
                    self.0.serve(next);
                    now = self
                        .0
                        .last_arrival
                        .map(|a| a.max(next))
                        .unwrap_or(next);
                }
                self.0.last_arrival.unwrap_or(from).max(from)
            }
            fn last_client_arrival(&self) -> Option<SimTime> {
                self.0.last_arrival
            }
            fn trace(&self) -> &PacketTrace {
                &self.0.trace
            }
            fn video_frame(&mut self, now: SimTime, frame: &YuvFrame, dst: Rect) {
                // The player decodes to RGB and blits: pure damage.
                self.0.ws.process(DrawRequest::VideoPut {
                    frame: frame.clone(),
                    dst,
                });
                let dmg = self.0.ws.take_screen_damage();
                self.0.damage.union(&dmg);
                self.0.video_rect = Some(dst);
                self.0.frames_pending += 1;
                self.0.serve(now);
            }
            fn audio(&mut self, _now: SimTime, _pcm: &[u8]) {
                // No audio support (video-only platforms, §8.2).
            }
            fn av_stats(&self) -> AvStats {
                self.0.av
            }
            fn client_processing_secs(&self) -> Option<f64> {
                // VNC is instrumentable in the paper; decode cost is
                // roughly proportional to received bytes.
                let bytes = self.0.trace.bytes(Direction::Down);
                Some(bytes as f64 * 14.0 / crate::framework::CLIENT_HZ as f64)
            }
            fn supports_small_screen(&self) -> bool {
                true
            }
            fn supports_audio(&self) -> bool {
                false
            }
        }
    };
}

impl_scraper!(Vnc);
impl_scraper!(GoToMyPc);

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::Color;

    fn fill(w: u32, h: u32) -> DrawRequest {
        DrawRequest::FillRect {
            target: thinc_display::SCREEN,
            rect: Rect::new(0, 0, w, h),
            color: Color::rgb(40, 80, 120),
        }
    }

    #[test]
    fn pull_cycle_serves_damage() {
        let mut vnc = Vnc::new(&NetworkConfig::lan_desktop(), 256, 256);
        vnc.process(SimTime::ZERO, vec![fill(128, 128)]);
        let last = vnc.drain(SimTime::ZERO);
        assert!(last > SimTime::ZERO);
        assert!(vnc.trace().bytes(Direction::Down) > 0);
        // Pull requests appear in the uplink.
        assert!(vnc.trace().bytes(Direction::Up) > 0);
    }

    #[test]
    fn updates_wait_for_request_round_trip() {
        let wan = NetworkConfig::wan_desktop();
        let mut vnc = Vnc::new(&wan, 256, 256);
        vnc.process(SimTime::ZERO, vec![fill(64, 64)]);
        let last = vnc.drain(SimTime::ZERO);
        // At minimum: request arrival (rtt/2) + response (rtt/2).
        assert!(last.as_micros() >= 66_000, "{last}");
    }

    #[test]
    fn coalescing_drops_video_frames() {
        let wan = NetworkConfig::wan_desktop();
        let mut vnc = Vnc::new(&wan, 512, 512);
        let frame = YuvFrame::new(thinc_raster::YuvFormat::Yv12, 64, 64);
        // 24 frames over one simulated second; the pull cycle takes
        // ≥66 ms, so at most ~15 updates can be served.
        for i in 0..24 {
            vnc.video_frame(SimTime(i * 41_667), &frame, Rect::new(0, 0, 512, 512));
        }
        vnc.drain(SimTime(1_000_000));
        let s = vnc.av_stats();
        assert!(s.frames_delivered < 20, "{s:?}");
        assert!(s.frames_dropped > 0, "{s:?}");
        assert_eq!(s.frames_delivered + s.frames_dropped, 24);
    }

    #[test]
    fn gotomypc_sends_less_but_works_harder() {
        let wan = NetworkConfig::wan_desktop();
        // Noisy content so that depth dominates, not trivially
        // compressible fills.
        let img = DrawRequest::PutImage {
            target: thinc_display::SCREEN,
            rect: Rect::new(0, 0, 200, 200),
            data: (0..200 * 200 * 3).map(|i| (i * 2654435761u64 >> 13) as u8).collect(),
        };
        let mut vnc = Vnc::new(&wan, 512, 512);
        vnc.process(SimTime::ZERO, vec![img.clone()]);
        vnc.drain(SimTime::ZERO);
        let mut gp = GoToMyPc::new(&wan, 512, 512);
        gp.process(SimTime::ZERO, vec![img]);
        gp.drain(SimTime::ZERO);
        assert!(
            gp.trace().bytes(Direction::Down) < vnc.trace().bytes(Direction::Down),
            "gp {} vnc {}",
            gp.trace().bytes(Direction::Down),
            vnc.trace().bytes(Direction::Down)
        );
    }

    #[test]
    fn gotomypc_latency_includes_relay() {
        let lan = NetworkConfig::lan_desktop();
        let mut gp = GoToMyPc::new(&lan, 256, 256);
        gp.process(SimTime::ZERO, vec![fill(32, 32)]);
        let last = gp.drain(SimTime::ZERO);
        // Even on a LAN, the relay adds ~70 ms of RTT to the cycle.
        assert!(last.as_micros() >= 60_000, "{last}");
    }

    #[test]
    fn vnc_viewport_clips_data() {
        let lan = NetworkConfig::lan_desktop();
        let mut full = Vnc::new(&lan, 512, 512);
        full.process(SimTime::ZERO, vec![fill(512, 512)]);
        full.drain(SimTime::ZERO);
        let mut clipped = Vnc::with_viewport(&lan, 512, 512, Some((128, 128)));
        clipped.process(SimTime::ZERO, vec![fill(512, 512)]);
        clipped.drain(SimTime::ZERO);
        assert!(
            clipped.trace().bytes(Direction::Down) < full.trace().bytes(Direction::Down) / 2
        );
    }

    #[test]
    fn no_audio_support() {
        let mut vnc = Vnc::new(&NetworkConfig::lan_desktop(), 64, 64);
        vnc.audio(SimTime::ZERO, &[0; 1000]);
        assert_eq!(vnc.av_stats().audio_bytes, 0);
        assert!(!vnc.supports_audio());
    }
}
