//! The local PC baseline: no thin client at all.
//!
//! Applications run and render directly on the (slower) client
//! machine. It is the paper's reference point: most bandwidth-
//! efficient (only the web content itself crosses the network) but
//! *not* the fastest for web browsing — THINC beats it because the
//! server's faster CPU processes pages more quickly (§8.3).

use thinc_display::driver::NullDriver;
use thinc_display::request::DrawRequest;
use thinc_display::server::WindowServer;
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::{Direction, PacketTrace};
use thinc_raster::{PixelFormat, Point, Rect, YuvFrame};

use crate::framework::{raster_cost, CLIENT_HZ};
use crate::traits::{AvStats, RemoteDisplay};

/// A PC running everything locally.
pub struct LocalPc {
    ws: WindowServer<NullDriver>,
    trace: PacketTrace,
    last_arrival: Option<SimTime>,
    av: AvStats,
    client_cycles: u64,
}

impl LocalPc {
    /// A local PC with the given display geometry.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            ws: WindowServer::new(width, height, PixelFormat::Rgb888, NullDriver),
            trace: PacketTrace::new(),
            last_arrival: None,
            av: AvStats::default(),
            client_cycles: 0,
        }
    }

    /// The locally rendered screen.
    pub fn screen(&self) -> &thinc_raster::Framebuffer {
        self.ws.screen()
    }

}

impl RemoteDisplay for LocalPc {
    fn name(&self) -> String {
        "Local PC".into()
    }

    fn click(&mut self, now: SimTime, _pos: Point) -> SimTime {
        // Local input: no network.
        now
    }

    fn process(&mut self, now: SimTime, reqs: Vec<DrawRequest>) -> SimDuration {
        // Rendering happens on the client CPU.
        let cycles = raster_cost(&reqs);
        self.client_cycles += cycles;
        self.ws.process_all(reqs);
        let dur = SimDuration::from_micros(cycles * 1_000_000 / CLIENT_HZ);
        self.last_arrival = Some(now + dur);
        dur
    }

    fn pump(&mut self, _now: SimTime) {}

    fn drain(&mut self, from: SimTime) -> SimTime {
        self.last_arrival.unwrap_or(from).max(from)
    }

    fn last_client_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    fn trace(&self) -> &PacketTrace {
        &self.trace
    }

    fn video_frame(&mut self, now: SimTime, frame: &YuvFrame, dst: Rect) {
        // The player fetches the *encoded* clip over the network (the
        // paper's local PC transfers ~6 MB — the MPEG-1 file itself,
        // ~1.2 Mbps) and decodes locally.
        let encoded_bytes = 1_200_000 / 8 / 24; // Per frame at 24 fps.
        let arrival = now + SimDuration::from_micros(encoded_bytes * 8 * 1_000_000 / 100_000_000);
        self.trace
            .record(now, arrival, encoded_bytes, Direction::Down, "content");
        self.ws.process(DrawRequest::VideoPut {
            frame: frame.clone(),
            dst,
        });
        self.av.frames_delivered += 1;
        self.last_arrival = Some(now);
    }

    fn audio(&mut self, now: SimTime, pcm: &[u8]) {
        self.av.audio_bytes += pcm.len() as u64;
        self.last_arrival = Some(now);
    }

    fn av_stats(&self) -> AvStats {
        self.av
    }

    fn client_processing_secs(&self) -> Option<f64> {
        Some(self.client_cycles as f64 / CLIENT_HZ as f64)
    }

    fn fetch_content(&mut self, now: SimTime, bytes: u64) -> SimTime {
        // Content crosses the client's own link, and the slower
        // client CPU processes the HTML — the dominant cost of local
        // web browsing in Figure 2.
        let fetch = SimDuration::from_micros(bytes * 8 * 1_000_000 / 100_000_000);
        let arrival = now + fetch;
        self.trace.record(now, arrival, bytes, Direction::Down, "content");
        let cycles = bytes * crate::framework::BROWSER_CYCLES_PER_BYTE;
        self.client_cycles += cycles;
        let done = arrival + SimDuration::from_micros(cycles * 1_000_000 / CLIENT_HZ);
        self.last_arrival = Some(done);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::Color;

    #[test]
    fn renders_locally_no_network() {
        let mut pc = LocalPc::new(64, 64);
        pc.process(
            SimTime::ZERO,
            vec![DrawRequest::FillRect {
                target: thinc_display::SCREEN,
                rect: Rect::new(0, 0, 8, 8),
                color: Color::WHITE,
            }],
        );
        assert_eq!(pc.screen().get_pixel(4, 4), Some(Color::WHITE));
        assert_eq!(pc.trace().total_bytes(), 0);
    }

    #[test]
    fn content_fetch_is_the_only_traffic() {
        let mut pc = LocalPc::new(64, 64);
        let arr = pc.fetch_content(SimTime::ZERO, 100_000);
        assert!(arr > SimTime::ZERO);
        assert_eq!(pc.trace().total_bytes(), 100_000);
    }

    #[test]
    fn client_cpu_is_charged() {
        let mut pc = LocalPc::new(1024, 768);
        let dur = pc.process(
            SimTime::ZERO,
            vec![DrawRequest::FillRect {
                target: thinc_display::SCREEN,
                rect: Rect::new(0, 0, 1024, 768),
                color: Color::WHITE,
            }],
        );
        assert!(dur > SimDuration::ZERO);
        assert!(pc.client_processing_secs().unwrap() > 0.0);
    }

    #[test]
    fn av_always_delivered() {
        let mut pc = LocalPc::new(64, 64);
        let f = YuvFrame::new(thinc_raster::YuvFormat::Yv12, 16, 16);
        pc.video_frame(SimTime::ZERO, &f, Rect::new(0, 0, 64, 64));
        pc.audio(SimTime::ZERO, &[0; 100]);
        assert_eq!(pc.av_stats().frames_delivered, 1);
        assert_eq!(pc.av_stats().audio_bytes, 100);
    }
}
