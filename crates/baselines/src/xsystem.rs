//! The X-class systems: plain X (over a compressed ssh tunnel, as
//! configured in §8.1) and NX (proxy compression + round-trip
//! suppression).
//!
//! X pushes application-level display commands to the client, which
//! runs the entire window system. Two architectural properties drive
//! its measured behaviour (§2, §8.3): the client/server coupling
//! costs synchronization round trips that hurt badly at WAN
//! latencies, and the client pays all rendering cost. NX keeps the
//! same protocol but compresses aggressively and eliminates most
//! round trips, "indicating that some of these problems can be
//! mitigated through careful X proxy design".

use thinc_compress::Codec;
use thinc_display::driver::NullDriver;
use thinc_display::request::DrawRequest;
use thinc_display::server::WindowServer;
use thinc_net::link::{DuplexLink, NetworkConfig};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::{Direction, PacketTrace};
use thinc_raster::{PixelFormat, Point, Rect, YuvFrame};

use crate::framework::{raster_cost, server_time, x_request_size, CLIENT_HZ};
use crate::traits::{AvStats, RemoteDisplay};

/// How many drawing requests between synchronization round trips in
/// plain X (toolkit round trips, XSync, resource queries).
const X_SYNC_EVERY: usize = 12;

/// Configuration of an X-class system.
struct XConfig {
    name: &'static str,
    /// Stream codec applied to the forwarded command stream.
    codec: Codec,
    /// Synchronization round trips per `X_SYNC_EVERY` requests
    /// (`true` for plain X; NX's proxy answers locally).
    sync_round_trips: bool,
    /// Multiplier on per-frame video CPU (NX recompresses the frame
    /// stream aggressively and futilely; plain X ships it through the
    /// cheap ssh codec).
    video_cpu_factor: u64,
}

/// An X-class remote display system.
pub struct XClass {
    cfg: XConfig,
    link: DuplexLink,
    trace: PacketTrace,
    /// The *client-side* window system (X runs the GUI on the client).
    client_ws: WindowServer<NullDriver>,
    last_arrival: Option<SimTime>,
    av: AvStats,
    client_cycles: u64,
    /// When the uplink is free for the next sync reply.
    sync_horizon: SimTime,
    /// CPU-busy horizon of the proxy/codec pipeline.
    cpu_horizon: SimTime,
}

/// Plain X over a compressed ssh tunnel.
pub struct XSystem(XClass);

/// NoMachine NX.
pub struct Nx(XClass);

impl XSystem {
    /// X on the given network with the given screen geometry.
    pub fn new(net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self(XClass::new(
            XConfig {
                name: "X",
                // The §8.1 setup tunnels X through ssh with
                // compression enabled.
                codec: Codec::Lzss,
                sync_round_trips: true,
                video_cpu_factor: 1,
            },
            net,
            width,
            height,
        ))
    }
}

impl Nx {
    /// NX on the given network.
    pub fn new(net: &NetworkConfig, width: u32, height: u32) -> Self {
        // NX uses more aggressive compression on slower links ("NX
        // has specific user settings for this type of environment").
        let codec = if net.rtt >= SimDuration::from_millis(10) {
            Codec::PngLike { bpp: 3, stride: width as usize * 3 }
        } else {
            Codec::Lzss
        };
        Self(XClass::new(
            XConfig {
                name: "NX",
                codec,
                sync_round_trips: false,
                video_cpu_factor: 4,
            },
            net,
            width,
            height,
        ))
    }
}

impl XClass {
    fn new(cfg: XConfig, net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self {
            cfg,
            link: net.connect(),
            trace: PacketTrace::new(),
            client_ws: WindowServer::new(width, height, PixelFormat::Rgb888, NullDriver),
            last_arrival: None,
            av: AvStats::default(),
            client_cycles: 0,
            sync_horizon: SimTime::ZERO,
            cpu_horizon: SimTime::ZERO,
        }
    }

    /// Serializes the batch in real X11 request framing, compresses
    /// the stream (the §8.1 setup tunnels X through `ssh -C`), sends
    /// it downstream, and executes the requests on the client.
    fn forward(&mut self, now: SimTime, reqs: &[DrawRequest], tag: &'static str) -> SimTime {
        // Video frames take the dedicated path in `xclass_video`.
        let stream_reqs: Vec<DrawRequest> = reqs
            .iter()
            .filter(|r| !matches!(r, DrawRequest::VideoPut { .. }))
            .cloned()
            .collect();
        let stream = crate::xwire::encode_batch(&stream_reqs);
        let wire = 24 + self.cfg.codec.compress(&stream).len() as u64;
        let mut t = now;
        // Synchronization round trips stall the pipeline.
        if self.cfg.sync_round_trips {
            let syncs = reqs.len() / X_SYNC_EVERY + 1;
            for _ in 0..syncs {
                let up = self.link.send_up(t.max(self.sync_horizon), 32);
                self.trace.record(t, up, 32, Direction::Up, "sync");
                let down = self.link.send_down(up, 32);
                self.trace.record(up, down, 32, Direction::Down, "sync");
                self.sync_horizon = down;
                t = down;
            }
        }
        let arrival = self.link.send_down(t, wire);
        self.trace.record(t, arrival, wire, Direction::Down, tag);
        // Client executes the window-system work.
        let cycles = raster_cost(reqs);
        self.client_cycles += cycles;
        let done = arrival + SimDuration::from_micros(cycles * 1_000_000 / CLIENT_HZ);
        self.last_arrival = Some(done);
        done
    }
}

impl RemoteDisplay for XSystem {
    fn name(&self) -> String {
        self.0.cfg.name.into()
    }
    fn click(&mut self, now: SimTime, _pos: Point) -> SimTime {
        let arr = self.0.link.send_up(now, 48);
        self.0.trace.record(now, arr, 48, Direction::Up, "input");
        arr
    }
    fn process(&mut self, now: SimTime, reqs: Vec<DrawRequest>) -> SimDuration {
        // The application's drawing is forwarded, not executed
        // server-side; server cost is protocol marshalling only.
        self.0.client_ws.process_all(reqs.clone());
        let cpu = server_time(reqs.len() as u64 * 500);
        self.0.forward(now + cpu, &reqs, "update");
        cpu
    }
    fn pump(&mut self, _now: SimTime) {}
    fn drain(&mut self, from: SimTime) -> SimTime {
        self.0.last_arrival.unwrap_or(from).max(from)
    }
    fn last_client_arrival(&self) -> Option<SimTime> {
        self.0.last_arrival
    }
    fn trace(&self) -> &PacketTrace {
        &self.0.trace
    }
    fn video_frame(&mut self, now: SimTime, frame: &YuvFrame, dst: Rect) {
        xclass_video(&mut self.0, now, frame, dst);
    }
    fn audio(&mut self, now: SimTime, pcm: &[u8]) {
        xclass_audio(&mut self.0, now, pcm);
    }
    fn av_stats(&self) -> AvStats {
        self.0.av
    }
    fn client_processing_secs(&self) -> Option<f64> {
        Some(self.0.client_cycles as f64 / CLIENT_HZ as f64)
    }
}

impl RemoteDisplay for Nx {
    fn name(&self) -> String {
        self.0.cfg.name.into()
    }
    fn click(&mut self, now: SimTime, _pos: Point) -> SimTime {
        let arr = self.0.link.send_up(now, 48);
        self.0.trace.record(now, arr, 48, Direction::Up, "input");
        arr
    }
    fn process(&mut self, now: SimTime, reqs: Vec<DrawRequest>) -> SimDuration {
        self.0.client_ws.process_all(reqs.clone());
        // The NX proxy does compression work server-side.
        let bytes: u64 = reqs.iter().map(x_request_size).sum();
        let cpu = server_time(reqs.len() as u64 * 500 + bytes / 8);
        self.0.forward(now + cpu, &reqs, "update");
        cpu
    }
    fn pump(&mut self, _now: SimTime) {}
    fn drain(&mut self, from: SimTime) -> SimTime {
        self.0.last_arrival.unwrap_or(from).max(from)
    }
    fn last_client_arrival(&self) -> Option<SimTime> {
        self.0.last_arrival
    }
    fn trace(&self) -> &PacketTrace {
        &self.0.trace
    }
    fn video_frame(&mut self, now: SimTime, frame: &YuvFrame, dst: Rect) {
        xclass_video(&mut self.0, now, frame, dst);
    }
    fn audio(&mut self, now: SimTime, pcm: &[u8]) {
        xclass_audio(&mut self.0, now, pcm);
    }
    fn av_stats(&self) -> AvStats {
        self.0.av
    }
    fn client_processing_secs(&self) -> Option<f64> {
        Some(self.0.client_cycles as f64 / CLIENT_HZ as f64)
    }
}

/// Video through an X-class pipe: decoded frames go down as image
/// uploads. Frames are dropped when the pipe cannot accept them
/// (the §8.3 failure mode: "unable to keep up with the stream of
/// updates ... resulting in dropped frames or extremely long playback
/// times").
fn xclass_video(x: &mut XClass, now: SimTime, frame: &YuvFrame, dst: Rect) {
    let _ = frame;
    let bytes = dst.area() * 3 * 3 / 4; // Post-codec RGB upload.
    // NX's proxy attempts real-time compression of the frame data —
    // expensive and mostly futile on video ("attempts to apply
    // ineffective and expensive compression algorithms on the video
    // data", §8.3). Plain X ships it through the cheaper ssh codec.
    let cpu_cycles = bytes * x.cfg.codec.cost_per_byte() * x.cfg.video_cpu_factor;
    let t = now.max(x.cpu_horizon) + server_time(cpu_cycles);
    x.cpu_horizon = t;
    if crate::framework::av_backlogged(&x.link.down, t) {
        x.av.frames_dropped += 1;
        return;
    }
    let arrival = x.link.send_down(t, bytes);
    x.trace.record(t, arrival, bytes, Direction::Down, "video");
    x.av.frames_delivered += 1;
    x.client_cycles += dst.area() * 8; // Client draws the image.
    x.last_arrival = Some(arrival);
}

/// Audio through the remote sound server (aRts for X in §8.1).
fn xclass_audio(x: &mut XClass, now: SimTime, pcm: &[u8]) {
    let bytes = pcm.len() as u64;
    if crate::framework::av_backlogged(&x.link.down, now) {
        return; // Sound server drops when saturated.
    }
    let arrival = x.link.send_down(now, bytes);
    x.trace.record(now, arrival, bytes, Direction::Down, "audio");
    x.av.audio_bytes += bytes;
    x.last_arrival = Some(arrival);
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::Color;

    fn fill_reqs(n: usize) -> Vec<DrawRequest> {
        (0..n)
            .map(|i| DrawRequest::FillRect {
                target: thinc_display::SCREEN,
                rect: Rect::new(i as i32, 0, 10, 10),
                color: Color::WHITE,
            })
            .collect()
    }

    #[test]
    fn x_pays_round_trips_on_wan() {
        let wan = NetworkConfig::wan_desktop();
        let mut x = XSystem::new(&wan, 1024, 768);
        x.process(SimTime::ZERO, fill_reqs(40));
        let last = x.drain(SimTime::ZERO);
        // 40 requests => at least 4 sync round trips => > 4 * 66 ms.
        assert!(last.as_micros() > 4 * 66_000, "{last}");
        // NX avoids them.
        let mut nx = Nx::new(&wan, 1024, 768);
        nx.process(SimTime::ZERO, fill_reqs(40));
        let nx_last = nx.drain(SimTime::ZERO);
        assert!(nx_last < last);
    }

    #[test]
    fn client_renders_the_gui() {
        let lan = NetworkConfig::lan_desktop();
        let mut x = XSystem::new(&lan, 64, 64);
        x.process(SimTime::ZERO, fill_reqs(1));
        assert_eq!(
            self::screen_pixel(&x.0, 5, 5),
            Some(Color::WHITE),
            "client-side window system executed the request"
        );
        assert!(x.client_processing_secs().unwrap() > 0.0);
    }

    fn screen_pixel(x: &XClass, px: i32, py: i32) -> Option<Color> {
        x.client_ws.screen().get_pixel(px, py)
    }

    #[test]
    fn nx_compresses_images_harder_than_x() {
        let wan = NetworkConfig::wan_desktop();
        // Graphic content compresses much better under NX's codec.
        let img = DrawRequest::PutImage {
            target: thinc_display::SCREEN,
            rect: Rect::new(0, 0, 200, 200),
            data: vec![100u8; 200 * 200 * 3],
        };
        let mut x = XSystem::new(&wan, 1024, 768);
        x.process(SimTime::ZERO, vec![img.clone()]);
        let mut nx = Nx::new(&wan, 1024, 768);
        nx.process(SimTime::ZERO, vec![img]);
        assert!(
            nx.trace().bytes(Direction::Down) < x.trace().bytes(Direction::Down),
            "nx {} vs x {}",
            nx.trace().bytes(Direction::Down),
            x.trace().bytes(Direction::Down)
        );
    }

    #[test]
    fn video_drops_when_saturated() {
        let lan = NetworkConfig::lan_desktop();
        let mut x = XSystem::new(&lan, 1024, 768);
        let frame = YuvFrame::new(thinc_raster::YuvFormat::Yv12, 352, 240);
        let dst = Rect::new(0, 0, 1024, 768);
        // 24 fullscreen RGB frames in one second over 100 Mbps: the
        // pipe saturates and frames drop.
        for i in 0..24 {
            x.video_frame(SimTime(i * 41_667), &frame, dst);
        }
        let s = x.av_stats();
        assert!(s.frames_dropped > 0, "{s:?}");
    }

    #[test]
    fn click_takes_half_rtt() {
        let wan = NetworkConfig::wan_desktop();
        let mut x = XSystem::new(&wan, 64, 64);
        let arr = x.click(SimTime::ZERO, Point::new(1, 1));
        assert!(arr.as_micros() >= 33_000);
    }
}
