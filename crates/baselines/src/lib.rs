#![warn(missing_docs)]
//! Behavioural models of the thin-client systems THINC is evaluated
//! against (§8): X, NX, VNC, Sun Ray, the ICA/RDP class, the
//! GoToMyPC class, and a local PC. Each model is built over the same
//! substrates as THINC itself — the same window-system operation
//! stream, the same simulated network, the same measurement hooks —
//! and differs only in the *architectural* choices the paper
//! attributes each system's performance to:
//!
//! | System  | Intercept       | Primitives        | Delivery |
//! |---------|-----------------|-------------------|----------|
//! | X       | app requests    | high-level        | push + sync round trips |
//! | NX      | app requests    | high-level + compression | push, round-trip suppression |
//! | VNC     | framebuffer     | compressed pixels | client pull |
//! | Sun Ray | custom X server | low-level, inferred from pixels | push |
//! | ICA/RDP | display commands| rich 2D commands  | push |
//! | GoToMyPC| framebuffer     | 8-bit compressed pixels, relay-routed | client pull |
//!
//! The [`RemoteDisplay`] trait is the uniform harness interface; the
//! benchmark drives every system (and THINC, via an adapter in the
//! bench crate) through it.

pub mod framework;
pub mod local;
pub mod rdp;
pub mod scraper;
pub mod sunray;
pub mod traits;
pub mod xsystem;
pub mod xwire;

pub use local::LocalPc;
pub use rdp::{RdpClass, ResizeModel};
pub use scraper::{GoToMyPc, Vnc};
pub use sunray::SunRay;
pub use traits::{AvStats, RemoteDisplay};
pub use xsystem::{Nx, XSystem};
