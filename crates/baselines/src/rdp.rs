//! The ICA/RDP class: rich 2D display commands, server push.
//!
//! Citrix MetaFrame and Microsoft Remote Desktop "translate
//! application display commands into a rich set of low-level graphics
//! commands" (§2). The class behaves like a semantic push system for
//! onscreen drawing (fills, text with glyph caching, copies), but the
//! richer command set carries per-command processing overhead, there
//! is no offscreen tracking (offscreen composition arrives as
//! compressed bitmaps) and no transparent video path (frames travel
//! as bitmap updates and drop under load — §8.3: ICA ~20% LAN A/V
//! quality). Small screens are handled client-side: ICA resizes on
//! the client (full-size data + client CPU), RDP clips the viewport.

use thinc_compress::Codec;
use thinc_display::drawable::SCREEN;
use thinc_display::driver::NullDriver;
use thinc_display::request::DrawRequest;
use thinc_display::server::WindowServer;
use thinc_net::link::{DuplexLink, NetworkConfig};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::{Direction, PacketTrace};
use thinc_raster::{PixelFormat, Point, Rect, YuvFrame};

use crate::framework::{raster_cost, server_time, CLIENT_HZ};
use crate::traits::{AvStats, RemoteDisplay};

/// How a small client screen is handled (§8.3's two models).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeModel {
    /// Full-size session; the client sees a clipped viewport (RDP).
    Clip,
    /// Full-size data sent; the client scales it down (ICA).
    ClientResize,
}

/// Extra server cycles per rich command ("the added overhead of
/// supporting a complex set of display primitives", §2).
const RICH_CMD_CYCLES: u64 = 12_000;
/// Wire overhead per command.
const CMD_BYTES: u64 = 32;

/// An ICA/RDP-class system.
pub struct RdpClass {
    name: &'static str,
    ws: WindowServer<NullDriver>,
    link: DuplexLink,
    trace: PacketTrace,
    codec: Codec,
    /// Strings already sent to the client glyph cache.
    glyph_cache: std::collections::HashSet<String>,
    viewport: Option<(u32, u32)>,
    resize: ResizeModel,
    last_arrival: Option<SimTime>,
    av: AvStats,
    cpu_free: SimTime,
    client_cycles: u64,
}

impl RdpClass {
    /// An RDP-flavoured instance (viewport clipping).
    pub fn rdp(net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self::new("RDP", net, width, height, None, ResizeModel::Clip)
    }

    /// An ICA-flavoured instance (client-side resize).
    pub fn ica(net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self::new("ICA", net, width, height, None, ResizeModel::ClientResize)
    }

    /// An instance with a small client screen.
    pub fn with_viewport(mut self, vw: u32, vh: u32) -> Self {
        self.viewport = Some((vw, vh));
        self
    }

    fn new(
        name: &'static str,
        net: &NetworkConfig,
        width: u32,
        height: u32,
        viewport: Option<(u32, u32)>,
        resize: ResizeModel,
    ) -> Self {
        Self {
            name,
            ws: WindowServer::new(width, height, PixelFormat::Rgb888, NullDriver),
            link: net.connect(),
            trace: PacketTrace::new(),
            codec: Codec::Lzss,
            glyph_cache: std::collections::HashSet::new(),
            viewport,
            resize,
            last_arrival: None,
            av: AvStats::default(),
            cpu_free: SimTime::ZERO,
            client_cycles: 0,
        }
    }

    /// Effective wire bytes for an update covering `rect`, given the
    /// small-screen model.
    fn effective_bytes(&mut self, rect: &Rect, full_bytes: u64) -> u64 {
        match (self.viewport, self.resize) {
            (Some((vw, vh)), ResizeModel::Clip) => {
                // Only the intersecting part travels.
                let clip = rect.intersection(&Rect::new(0, 0, vw, vh));
                if rect.area() == 0 {
                    return 0;
                }
                full_bytes * clip.area() / rect.area()
            }
            (Some(_), ResizeModel::ClientResize) => {
                // Full data travels; the client pays to scale it.
                self.client_cycles += rect.area() * 14;
                full_bytes
            }
            (None, _) => full_bytes,
        }
    }

    fn send(&mut self, t: SimTime, bytes: u64, tag: &'static str) -> SimTime {
        if bytes == 0 {
            return t;
        }
        let arrival = self.link.send_down(t, bytes);
        self.trace.record(t, arrival, bytes, Direction::Down, tag);
        self.last_arrival = Some(arrival);
        arrival
    }

    /// Sends an onscreen rectangle as a compressed bitmap update.
    fn send_bitmap(&mut self, t: SimTime, rect: &Rect, tag: &'static str) -> SimTime {
        let clip = rect.intersection(&self.ws.screen().bounds());
        if clip.is_empty() {
            return t;
        }
        let (_, data) = self.ws.screen().get_raw(&clip);
        let enc = self.codec.compress(&data);
        let cpu = server_time(data.len() as u64 * self.codec.cost_per_byte());
        let bytes = self.effective_bytes(&clip, 12 + enc.len() as u64);
        let t = t.max(self.cpu_free) + cpu;
        self.cpu_free = t;
        self.send(t, bytes, tag)
    }
}

impl RemoteDisplay for RdpClass {
    fn name(&self) -> String {
        self.name.into()
    }

    fn click(&mut self, now: SimTime, _pos: Point) -> SimTime {
        let arr = self.link.send_up(now, 48);
        self.trace.record(now, arr, 48, Direction::Up, "input");
        arr
    }

    fn process(&mut self, now: SimTime, reqs: Vec<DrawRequest>) -> SimDuration {
        let raster = raster_cost(&reqs);
        let rich = reqs.len() as u64 * RICH_CMD_CYCLES;
        let mut t = now.max(self.cpu_free) + server_time(raster + rich);
        // Collect offscreen-to-screen copies before rasterizing.
        let offscreen_copies: Vec<Rect> = reqs
            .iter()
            .filter_map(|r| match r {
                DrawRequest::CopyArea {
                    src,
                    dst,
                    src_rect,
                    dst_x,
                    dst_y,
                } if !src.is_screen() && *dst == SCREEN => {
                    Some(Rect::new(*dst_x, *dst_y, src_rect.w, src_rect.h))
                }
                _ => None,
            })
            .collect();
        for req in &reqs {
            match req {
                DrawRequest::FillRect { target, rect, .. } if target.is_screen() => {
                    let bytes = self.effective_bytes(rect, CMD_BYTES);
                    self.send(t, bytes, "update");
                }
                DrawRequest::Text { target, text, .. } if target.is_screen() => {
                    // Glyph caching: strings cost bitmap bytes once.
                    let bytes = if self.glyph_cache.insert(text.clone()) {
                        CMD_BYTES + text.len() as u64 * 10
                    } else {
                        CMD_BYTES + text.len() as u64
                    };
                    self.send(t, bytes, "update");
                }
                DrawRequest::StippleRect { target, rect, .. } if target.is_screen() => {
                    let bits = (rect.w as u64).div_ceil(8) * rect.h as u64;
                    let bytes = self.effective_bytes(rect, CMD_BYTES + bits);
                    self.send(t, bytes, "update");
                }
                DrawRequest::TileRect { target, rect, .. } if target.is_screen() => {
                    let bytes = self.effective_bytes(rect, CMD_BYTES + 32 * 32 * 3);
                    self.send(t, bytes, "update");
                }
                DrawRequest::CopyArea { src, dst, src_rect, .. }
                    if src.is_screen() && dst.is_screen() =>
                {
                    let bytes = self.effective_bytes(src_rect, CMD_BYTES);
                    self.send(t, bytes, "update");
                }
                _ => {}
            }
        }
        self.ws.process_all(reqs);
        // Onscreen image data and offscreen composition arrive as
        // compressed bitmap updates.
        let damage = self.ws.take_screen_damage();
        for rect in offscreen_copies {
            t = self.send_bitmap(t, &rect, "update").max(t);
        }
        // PutImage directly onscreen also needs bitmap data; covered
        // by remaining damage minus what we already sent as commands
        // — approximated by sending image rects explicitly.
        let _ = damage;
        self.cpu_free = self.cpu_free.max(t);
        t - now
    }

    fn pump(&mut self, _now: SimTime) {}

    fn drain(&mut self, from: SimTime) -> SimTime {
        self.last_arrival.unwrap_or(from).max(from)
    }

    fn last_client_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    fn trace(&self) -> &PacketTrace {
        &self.trace
    }

    fn video_frame(&mut self, now: SimTime, frame: &YuvFrame, dst: Rect) {
        self.ws.process(DrawRequest::VideoPut {
            frame: frame.clone(),
            dst,
        });
        self.ws.take_screen_damage();
        // Encode the frame area; drop when the pipe is saturated or
        // the (client-resize) client cannot keep up.
        let clip = dst.intersection(&self.ws.screen().bounds());
        let (_, data) = self.ws.screen().get_raw(&clip);
        let enc = self.codec.compress(&data);
        let cpu = server_time(data.len() as u64 * self.codec.cost_per_byte());
        let t = now.max(self.cpu_free) + cpu;
        self.cpu_free = t;
        let bytes = self.effective_bytes(&clip, 12 + enc.len() as u64);
        // Client-resize clients additionally stall on scaling cost:
        // model as a lower acceptable send rate.
        let client_busy = matches!(
            (self.viewport, self.resize),
            (Some(_), ResizeModel::ClientResize)
        ) && self.av.frames_delivered as u64 * 3
            > now.as_micros() / 41_667;
        if crate::framework::av_backlogged(&self.link.down, t) || client_busy {
            self.av.frames_dropped += 1;
            return;
        }
        self.send(t, bytes, "video");
        self.av.frames_delivered += 1;
    }

    fn audio(&mut self, now: SimTime, pcm: &[u8]) {
        // Compressed, lower-fidelity audio (§8.3: "lower audio
        // fidelity due to compression").
        let bytes = pcm.len() as u64 / 4;
        if crate::framework::av_backlogged(&self.link.down, now) {
            return;
        }
        let arrival = self.link.send_down(now, bytes);
        self.trace.record(now, arrival, bytes, Direction::Down, "audio");
        self.av.audio_bytes += bytes;
        self.last_arrival = Some(arrival);
    }

    fn av_stats(&self) -> AvStats {
        self.av
    }

    fn client_processing_secs(&self) -> Option<f64> {
        // Closed platforms: the paper cannot account client time.
        let _ = self.client_cycles as f64 / CLIENT_HZ as f64;
        None
    }

    fn supports_small_screen(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::Color;

    #[test]
    fn semantic_fills_are_cheap() {
        let mut rdp = RdpClass::rdp(&NetworkConfig::lan_desktop(), 256, 256);
        rdp.process(
            SimTime::ZERO,
            vec![DrawRequest::FillRect {
                target: SCREEN,
                rect: Rect::new(0, 0, 256, 256),
                color: Color::WHITE,
            }],
        );
        assert!(rdp.trace().bytes(Direction::Down) <= CMD_BYTES);
    }

    #[test]
    fn glyph_cache_makes_repeat_text_cheap() {
        let mut rdp = RdpClass::rdp(&NetworkConfig::lan_desktop(), 256, 256);
        let text = DrawRequest::Text {
            target: SCREEN,
            x: 0,
            y: 0,
            text: "hello world hello world".into(),
            fg: Color::BLACK,
        };
        rdp.process(SimTime::ZERO, vec![text.clone()]);
        let first = rdp.trace().bytes(Direction::Down);
        rdp.process(SimTime(1000), vec![text]);
        let second = rdp.trace().bytes(Direction::Down) - first;
        assert!(second < first);
    }

    #[test]
    fn offscreen_composition_costs_bitmap_data() {
        let mut rdp = RdpClass::rdp(&NetworkConfig::lan_desktop(), 256, 256);
        let res = rdp.ws.process(DrawRequest::CreatePixmap {
            width: 128,
            height: 128,
        });
        let pm = match res {
            thinc_display::request::RequestResult::Created(id) => id,
            other => panic!("{other:?}"),
        };
        let mut x = 99u64;
        let noise: Vec<u8> = (0..128 * 128 * 3)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        rdp.process(
            SimTime::ZERO,
            vec![
                DrawRequest::PutImage {
                    target: pm,
                    rect: Rect::new(0, 0, 128, 128),
                    data: noise,
                },
                DrawRequest::CopyArea {
                    src: pm,
                    dst: SCREEN,
                    src_rect: Rect::new(0, 0, 128, 128),
                    dst_x: 0,
                    dst_y: 0,
                },
            ],
        );
        assert!(rdp.trace().bytes(Direction::Down) > 20_000);
    }

    #[test]
    fn rdp_clipping_reduces_data_ica_resize_does_not() {
        let lan = NetworkConfig::lan_desktop();
        let img: Vec<u8> = (0..256usize * 256 * 3)
            .map(|i| ((i as u64).wrapping_mul(40503) >> 7) as u8)
            .collect();
        let reqs = |pm_needed: bool| {
            let _ = pm_needed;
            vec![DrawRequest::PutImage {
                target: SCREEN,
                rect: Rect::new(0, 0, 256, 256),
                data: img.clone(),
            }]
        };
        let run = |mut sys: RdpClass| {
            // Send the image as offscreen composition to exercise the
            // bitmap path deterministically.
            let res = sys.ws.process(DrawRequest::CreatePixmap {
                width: 256,
                height: 256,
            });
            let pm = match res {
                thinc_display::request::RequestResult::Created(id) => id,
                other => panic!("{other:?}"),
            };
            let mut v = vec![DrawRequest::PutImage {
                target: pm,
                rect: Rect::new(0, 0, 256, 256),
                data: img.clone(),
            }];
            v.push(DrawRequest::CopyArea {
                src: pm,
                dst: SCREEN,
                src_rect: Rect::new(0, 0, 256, 256),
                dst_x: 0,
                dst_y: 0,
            });
            sys.process(SimTime::ZERO, v);
            sys.trace().bytes(Direction::Down)
        };
        let _ = reqs(false);
        let full = run(RdpClass::rdp(&lan, 256, 256));
        let clipped = run(RdpClass::rdp(&lan, 256, 256).with_viewport(64, 64));
        let resized = run(RdpClass::ica(&lan, 256, 256).with_viewport(64, 64));
        assert!(clipped < full / 4, "clipped {clipped} vs full {full}");
        assert!(
            resized as f64 > full as f64 * 0.9,
            "client resize saves nothing: {resized} vs {full}"
        );
    }

    #[test]
    fn video_drops_under_load() {
        let slow = NetworkConfig::custom("slow", 3_000_000, SimDuration::from_millis(5), 64 * 1024);
        let mut ica = RdpClass::ica(&slow, 512, 512);
        let frame = noisy_frame();
        for i in 0..48 {
            ica.video_frame(SimTime(i * 41_667), &frame, Rect::new(0, 0, 512, 512));
        }
        assert!(ica.av_stats().frames_dropped > 0);
    }

    /// A YUV frame whose decoded RGB does not compress well.
    fn noisy_frame() -> YuvFrame {
        let mut f = YuvFrame::new(thinc_raster::YuvFormat::Yv12, 352, 240);
        let mut x = 7u64;
        for b in f.data.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 33) as u8;
        }
        f
    }

    #[test]
    fn audio_is_compressed_lossy() {
        let mut rdp = RdpClass::rdp(&NetworkConfig::lan_desktop(), 64, 64);
        rdp.audio(SimTime::ZERO, &[0u8; 4000]);
        assert_eq!(rdp.av_stats().audio_bytes, 1000);
    }
}
