//! An X11-style binary request encoding for the X-class baselines.
//!
//! X forwards *application-level* display commands to the client; the
//! wire cost of that architecture is the encoded request stream. This
//! module encodes the harness's drawing requests in the X11 core
//! protocol's framing — `[opcode u8][detail u8][length u16 (4-byte
//! units)][payload…]`, everything padded to 4 bytes — using the real
//! request layouts (PolyFillRectangle, CopyArea, PutImage, PolyText8,
//! …) so the byte counts, header overheads and padding match what an
//! X server would actually receive.

use thinc_display::request::DrawRequest;

/// X11 request opcodes (core protocol numbers).
mod opcode {
    pub const CREATE_PIXMAP: u8 = 53;
    pub const FREE_PIXMAP: u8 = 54;
    pub const CHANGE_GC: u8 = 56;
    pub const COPY_AREA: u8 = 62;
    pub const POLY_FILL_RECTANGLE: u8 = 70;
    pub const PUT_IMAGE: u8 = 72;
    pub const POLY_TEXT8: u8 = 74;
    /// RENDER extension composite (extension opcodes are dynamic; this
    /// is the conventional major opcode slot we assign it).
    pub const RENDER_COMPOSITE: u8 = 139;
    /// XVideo PutImage (extension).
    pub const XV_PUT_IMAGE: u8 = 141;
}

fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

/// Appends one framed request: header + payload padded to 4 bytes.
fn put_request(out: &mut Vec<u8>, op: u8, detail: u8, payload: &[u8]) {
    let padded = pad4(payload.len());
    let units = (4 + padded) / 4;
    out.push(op);
    out.push(detail);
    out.extend_from_slice(&(units as u16).to_le_bytes());
    out.extend_from_slice(payload);
    out.resize(out.len() + (padded - payload.len()), 0);
}

fn put_u32(v: u32, p: &mut Vec<u8>) {
    p.extend_from_slice(&v.to_le_bytes());
}

fn put_rect16(x: i32, y: i32, w: u32, h: u32, p: &mut Vec<u8>) {
    p.extend_from_slice(&(x as i16).to_le_bytes());
    p.extend_from_slice(&(y as i16).to_le_bytes());
    p.extend_from_slice(&(w as u16).to_le_bytes());
    p.extend_from_slice(&(h as u16).to_le_bytes());
}

/// Encodes one drawing request as its X11 request(s).
pub fn encode_request(req: &DrawRequest) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        DrawRequest::CreatePixmap { width, height } => {
            let mut p = Vec::new();
            put_u32(1, &mut p); // pixmap id
            put_u32(0, &mut p); // drawable
            p.extend_from_slice(&(*width as u16).to_le_bytes());
            p.extend_from_slice(&(*height as u16).to_le_bytes());
            put_request(&mut out, opcode::CREATE_PIXMAP, 24, &p);
        }
        DrawRequest::FreePixmap { id } => {
            let mut p = Vec::new();
            put_u32(id.0, &mut p);
            put_request(&mut out, opcode::FREE_PIXMAP, 0, &p);
        }
        DrawRequest::FillRect { target, rect, color } => {
            // ChangeGC(foreground) + PolyFillRectangle.
            let mut gc = Vec::new();
            put_u32(1, &mut gc); // gc id
            put_u32(0x4, &mut gc); // value mask: foreground
            put_u32(color.to_argb_u32(), &mut gc);
            put_request(&mut out, opcode::CHANGE_GC, 0, &gc);
            let mut p = Vec::new();
            put_u32(target.0, &mut p);
            put_u32(1, &mut p); // gc
            put_rect16(rect.x, rect.y, rect.w, rect.h, &mut p);
            put_request(&mut out, opcode::POLY_FILL_RECTANGLE, 0, &p);
        }
        DrawRequest::TileRect { target, rect, tile } => {
            // ChangeGC(tile, fill-style) + PolyFillRectangle.
            let mut gc = Vec::new();
            put_u32(1, &mut gc);
            put_u32(0x400 | 0x100, &mut gc); // tile + fill-style
            put_u32(tile.0, &mut gc);
            put_u32(1, &mut gc); // FillTiled
            put_request(&mut out, opcode::CHANGE_GC, 0, &gc);
            let mut p = Vec::new();
            put_u32(target.0, &mut p);
            put_u32(1, &mut p);
            put_rect16(rect.x, rect.y, rect.w, rect.h, &mut p);
            put_request(&mut out, opcode::POLY_FILL_RECTANGLE, 0, &p);
        }
        DrawRequest::StippleRect {
            target,
            rect,
            bits,
            fg,
            bg,
        } => {
            // Stipples travel as 1-bit PutImage + GC setup.
            let mut gc = Vec::new();
            put_u32(1, &mut gc);
            put_u32(0xC, &mut gc); // fg + bg
            put_u32(fg.to_argb_u32(), &mut gc);
            put_u32(bg.map(|c| c.to_argb_u32()).unwrap_or(0), &mut gc);
            put_request(&mut out, opcode::CHANGE_GC, 0, &gc);
            let mut p = Vec::new();
            put_u32(target.0, &mut p);
            put_u32(1, &mut p);
            put_rect16(rect.x, rect.y, rect.w, rect.h, &mut p);
            p.extend_from_slice(bits);
            put_request(&mut out, opcode::PUT_IMAGE, 0 /* XYBitmap */, &p);
        }
        DrawRequest::CopyArea {
            src,
            dst,
            src_rect,
            dst_x,
            dst_y,
        } => {
            let mut p = Vec::new();
            put_u32(src.0, &mut p);
            put_u32(dst.0, &mut p);
            put_u32(1, &mut p); // gc
            put_rect16(src_rect.x, src_rect.y, src_rect.w, src_rect.h, &mut p);
            p.extend_from_slice(&(*dst_x as i16).to_le_bytes());
            p.extend_from_slice(&(*dst_y as i16).to_le_bytes());
            put_request(&mut out, opcode::COPY_AREA, 0, &p);
        }
        DrawRequest::PutImage { target, rect, data } => {
            let mut p = Vec::new();
            put_u32(target.0, &mut p);
            put_u32(1, &mut p);
            put_rect16(rect.x, rect.y, rect.w, rect.h, &mut p);
            p.extend_from_slice(data);
            put_request(&mut out, opcode::PUT_IMAGE, 2 /* ZPixmap */, &p);
        }
        DrawRequest::Text { target, x, y, text, fg } => {
            let mut gc = Vec::new();
            put_u32(1, &mut gc);
            put_u32(0x4, &mut gc);
            put_u32(fg.to_argb_u32(), &mut gc);
            put_request(&mut out, opcode::CHANGE_GC, 0, &gc);
            let mut p = Vec::new();
            put_u32(target.0, &mut p);
            put_u32(1, &mut p);
            p.extend_from_slice(&(*x as i16).to_le_bytes());
            p.extend_from_slice(&(*y as i16).to_le_bytes());
            // TEXTITEM8: length byte + delta + string.
            p.push(text.len().min(254) as u8);
            p.push(0);
            p.extend_from_slice(&text.as_bytes()[..text.len().min(254)]);
            put_request(&mut out, opcode::POLY_TEXT8, 0, &p);
        }
        DrawRequest::Composite { target, rect, data, op: _ } => {
            let mut p = Vec::new();
            put_u32(target.0, &mut p);
            put_rect16(rect.x, rect.y, rect.w, rect.h, &mut p);
            p.extend_from_slice(data);
            put_request(&mut out, opcode::RENDER_COMPOSITE, 3 /* Over */, &p);
        }
        DrawRequest::VideoPut { frame, dst } => {
            // Without a *remote* XVideo path the player uploads the
            // decoded frame scaled to its window as ZPixmap RGB; we
            // frame it as XvPutImage with RGB payload size.
            let mut p = Vec::new();
            put_u32(0, &mut p); // port
            put_rect16(dst.x, dst.y, dst.w, dst.h, &mut p);
            let rgb_len = (dst.area() * 3) as usize;
            p.resize(p.len() + rgb_len, 0);
            // Payload content is the (already dithered) frame bytes
            // replicated; for sizing purposes zeros suffice — the
            // video path compresses with its own model, not this
            // encoding (see `xsystem::xclass_video`).
            let _ = frame;
            put_request(&mut out, opcode::XV_PUT_IMAGE, 0, &p);
        }
    }
    out
}

/// Encodes a whole batch as one contiguous request stream.
pub fn encode_batch(reqs: &[DrawRequest]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in reqs {
        out.extend(encode_request(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_display::drawable::{DrawableId, SCREEN};
    use thinc_raster::{Color, Rect};

    #[test]
    fn framing_is_4_byte_aligned() {
        let reqs = [
            DrawRequest::FillRect {
                target: SCREEN,
                rect: Rect::new(1, 2, 3, 4),
                color: Color::WHITE,
            },
            DrawRequest::Text {
                target: SCREEN,
                x: 5,
                y: 6,
                text: "odd".into(),
                fg: Color::BLACK,
            },
        ];
        for r in &reqs {
            let enc = encode_request(r);
            assert_eq!(enc.len() % 4, 0, "{r:?}");
            // Declared length matches actual bytes.
            let mut off = 0;
            while off < enc.len() {
                let units = u16::from_le_bytes([enc[off + 2], enc[off + 3]]) as usize;
                off += units * 4;
            }
            assert_eq!(off, enc.len());
        }
    }

    #[test]
    fn fills_are_tiny_images_are_not() {
        let fill = encode_request(&DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 1000, 1000),
            color: Color::WHITE,
        });
        assert!(fill.len() <= 40, "{}", fill.len());
        let img = encode_request(&DrawRequest::PutImage {
            target: SCREEN,
            rect: Rect::new(0, 0, 100, 100),
            data: vec![7; 30_000],
        });
        assert!(img.len() >= 30_000 + 20);
    }

    #[test]
    fn copy_is_constant_size() {
        let c = encode_request(&DrawRequest::CopyArea {
            src: DrawableId(3),
            dst: SCREEN,
            src_rect: Rect::new(0, 0, 500, 500),
            dst_x: 1,
            dst_y: 2,
        });
        assert_eq!(c.len(), 4 + 24);
    }

    #[test]
    fn batch_is_concatenation() {
        let a = DrawRequest::FreePixmap { id: DrawableId(9) };
        let b = DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 1, 1),
            color: Color::BLACK,
        };
        let batch = encode_batch(&[a.clone(), b.clone()]);
        let separate: Vec<u8> = encode_request(&a)
            .into_iter()
            .chain(encode_request(&b))
            .collect();
        assert_eq!(batch, separate);
    }

    #[test]
    fn text_truncates_at_x11_limit() {
        let long = "x".repeat(1000);
        let enc = encode_request(&DrawRequest::Text {
            target: SCREEN,
            x: 0,
            y: 0,
            text: long,
            fg: Color::BLACK,
        });
        // GC request + text request bounded by the 254-char item.
        assert!(enc.len() < 320);
    }
}
