//! The Sun Ray class: low-level display commands, server push, but
//! *no translation layer*.
//!
//! Sun Ray's command set inspired THINC's (§3), and it pushes updates
//! like THINC does. What it lacks is THINC's translation architecture
//! (§8.3): offscreen drawing is ignored, so when applications compose
//! pages offscreen and copy them onscreen, Sun Ray must reduce the
//! result to pixel data and *sample* it to infer which primitives to
//! use — extra CPU, and RAW wherever inference fails. It also has no
//! transparent video support: video reaches the wire as inferred
//! pixel updates.

use thinc_compress::{adaptive_codec, Codec};
use thinc_display::drawable::SCREEN;
use thinc_display::driver::NullDriver;
use thinc_display::request::DrawRequest;
use thinc_display::server::WindowServer;
use thinc_net::link::{DuplexLink, NetworkConfig};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::{Direction, PacketTrace};
use thinc_raster::{PixelFormat, Point, Rect, YuvFrame};

use crate::framework::{raster_cost, server_time, uniform_color};
use crate::traits::{AvStats, RemoteDisplay};

/// Block size used when sampling pixel data to infer primitives.
const INFER_BLOCK: u32 = 64;
/// Wire size of a low-level fill/copy command.
const CMD_BYTES: u64 = 26;
/// Sampling cost per pixel (cycles) of the inference pass.
const INFER_CYCLES_PER_PX: u64 = 4;

/// A Sun Ray-class system.
pub struct SunRay {
    ws: WindowServer<NullDriver>,
    link: DuplexLink,
    trace: PacketTrace,
    codec: Codec,
    last_arrival: Option<SimTime>,
    av: AvStats,
    cpu_free: SimTime,
}

impl SunRay {
    /// Sun Ray over `net`.
    pub fn new(net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self {
            ws: WindowServer::new(width, height, PixelFormat::Rgb888, NullDriver),
            link: net.connect(),
            trace: PacketTrace::new(),
            // Adaptive compression per link quality (§8.3: "Sun Ray
            // and VNC use adaptive compression schemes"; "more complex
            // and cpu-intensive compression schemes are used" on WANs).
            codec: if net.rtt >= SimDuration::from_millis(10) {
                Codec::Lzss
            } else {
                adaptive_codec(net.bandwidth_bps, 3, width as usize * 3)
            },
            last_arrival: None,
            av: AvStats::default(),
            cpu_free: SimTime::ZERO,
        }
    }

    /// Sends `bytes` of update data at `t` (never blocking: display
    /// updates queue in the pipe).
    fn send(&mut self, t: SimTime, bytes: u64, tag: &'static str) -> SimTime {
        let arrival = self.link.send_down(t, bytes);
        self.trace.record(t, arrival, bytes, Direction::Down, tag);
        self.last_arrival = Some(arrival);
        arrival
    }

    /// Reduces an onscreen rectangle to commands by sampling blocks:
    /// uniform blocks become fills, the rest raw (compressed) pixels.
    /// Returns `(wire_bytes, cpu_cycles)`.
    fn infer(&mut self, rect: &Rect) -> (u64, u64) {
        let clip = rect.intersection(&self.ws.screen().bounds());
        let mut bytes = 0u64;
        let mut cycles = clip.area() * INFER_CYCLES_PER_PX;
        let mut y = clip.y;
        while y < clip.bottom() {
            let bh = INFER_BLOCK.min((clip.bottom() - y) as u32);
            let mut x = clip.x;
            while x < clip.right() {
                let bw = INFER_BLOCK.min((clip.right() - x) as u32);
                let block = Rect::new(x, y, bw, bh);
                if uniform_color(self.ws.screen(), &block).is_some() {
                    bytes += CMD_BYTES;
                } else {
                    let (_, data) = self.ws.screen().get_raw(&block);
                    let enc = self.codec.compress(&data);
                    bytes += 12 + enc.len() as u64;
                    cycles += data.len() as u64 * self.codec.cost_per_byte();
                }
                x += bw as i32;
            }
            y += bh as i32;
        }
        (bytes, cycles)
    }
}

impl RemoteDisplay for SunRay {
    fn name(&self) -> String {
        "Sun Ray".into()
    }

    fn click(&mut self, now: SimTime, _pos: Point) -> SimTime {
        let arr = self.link.send_up(now, 48);
        self.trace.record(now, arr, 48, Direction::Up, "input");
        arr
    }

    fn process(&mut self, now: SimTime, reqs: Vec<DrawRequest>) -> SimDuration {
        let raster = raster_cost(&reqs);
        let mut t = now.max(self.cpu_free) + server_time(raster);
        for req in &reqs {
            match req {
                // Onscreen low-level commands map directly.
                DrawRequest::FillRect { target, .. } if target.is_screen() => {
                    self.send(t, CMD_BYTES, "update");
                }
                DrawRequest::TileRect { target, rect, .. } if target.is_screen() => {
                    let _ = rect;
                    self.send(t, CMD_BYTES + 64 * 64 * 3, "update");
                }
                DrawRequest::StippleRect { target, rect, .. } if target.is_screen() => {
                    let bits = (rect.w as u64).div_ceil(8) * rect.h as u64;
                    self.send(t, CMD_BYTES + bits, "update");
                }
                DrawRequest::Text { target, text, .. } if target.is_screen() => {
                    self.send(t, CMD_BYTES + text.len() as u64 * 8, "update");
                }
                DrawRequest::CopyArea { src, dst, .. }
                    if src.is_screen() && dst.is_screen() =>
                {
                    self.send(t, CMD_BYTES, "update");
                }
                DrawRequest::PutImage { target, rect, data } if target.is_screen() => {
                    let enc = self.codec.compress(data);
                    let cycles = data.len() as u64 * self.codec.cost_per_byte();
                    t += server_time(cycles);
                    let _ = rect;
                    self.send(t, 12 + enc.len() as u64, "update");
                }
                _ => {}
            }
        }
        // Rasterize everything (including offscreen) and handle the
        // copies-from-offscreen by pixel inference.
        let offscreen_copies: Vec<Rect> = reqs
            .iter()
            .filter_map(|r| match r {
                DrawRequest::CopyArea {
                    src,
                    dst,
                    src_rect,
                    dst_x,
                    dst_y,
                } if !src.is_screen() && *dst == SCREEN => {
                    Some(Rect::new(*dst_x, *dst_y, src_rect.w, src_rect.h))
                }
                _ => None,
            })
            .collect();
        self.ws.process_all(reqs);
        for rect in offscreen_copies {
            let (bytes, cycles) = self.infer(&rect);
            t = t.max(self.cpu_free) + server_time(cycles);
            self.cpu_free = t;
            self.send(t, bytes, "update");
        }
        self.cpu_free = self.cpu_free.max(t);
        t - now
    }

    fn pump(&mut self, _now: SimTime) {}

    fn drain(&mut self, from: SimTime) -> SimTime {
        self.last_arrival.unwrap_or(from).max(from)
    }

    fn last_client_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    fn trace(&self) -> &PacketTrace {
        &self.trace
    }

    fn video_frame(&mut self, now: SimTime, frame: &YuvFrame, dst: Rect) {
        // No video path: the player's output is inferred from pixels
        // like any other update, at full per-frame cost.
        self.ws.process(DrawRequest::VideoPut {
            frame: frame.clone(),
            dst,
        });
        let (bytes, cycles) = self.infer(&dst);
        let t = now.max(self.cpu_free) + server_time(cycles);
        self.cpu_free = t;
        if crate::framework::av_backlogged(&self.link.down, t) {
            self.av.frames_dropped += 1;
            return;
        }
        self.send(t, bytes, "video");
        self.av.frames_delivered += 1;
    }

    fn audio(&mut self, now: SimTime, pcm: &[u8]) {
        let bytes = pcm.len() as u64;
        if crate::framework::av_backlogged(&self.link.down, now) {
            return;
        }
        let arrival = self.link.send_down(now, bytes);
        self.trace.record(now, arrival, bytes, Direction::Down, "audio");
        self.av.audio_bytes += bytes;
        self.last_arrival = Some(arrival);
    }

    fn av_stats(&self) -> AvStats {
        self.av
    }

    fn client_processing_secs(&self) -> Option<f64> {
        // The paper could not instrument the Sun Ray hardware client.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::Color;

    #[test]
    fn onscreen_fill_is_one_small_command() {
        let mut sr = SunRay::new(&NetworkConfig::lan_desktop(), 256, 256);
        sr.process(
            SimTime::ZERO,
            vec![DrawRequest::FillRect {
                target: SCREEN,
                rect: Rect::new(0, 0, 256, 256),
                color: Color::WHITE,
            }],
        );
        assert_eq!(sr.trace().bytes(Direction::Down), CMD_BYTES);
    }

    #[test]
    fn offscreen_copy_falls_back_to_inference() {
        let mut sr = SunRay::new(&NetworkConfig::lan_desktop(), 256, 256);
        let res = sr.ws.process(DrawRequest::CreatePixmap {
            width: 128,
            height: 128,
        });
        let pm = match res {
            thinc_display::request::RequestResult::Created(id) => id,
            other => panic!("{other:?}"),
        };
        // Solid offscreen content: inference finds uniform blocks, so
        // the copy costs a few fill commands — but CPU was spent.
        sr.process(
            SimTime::ZERO,
            vec![
                DrawRequest::FillRect {
                    target: pm,
                    rect: Rect::new(0, 0, 128, 128),
                    color: Color::rgb(9, 9, 9),
                },
                DrawRequest::CopyArea {
                    src: pm,
                    dst: SCREEN,
                    src_rect: Rect::new(0, 0, 128, 128),
                    dst_x: 0,
                    dst_y: 0,
                },
            ],
        );
        let bytes = sr.trace().bytes(Direction::Down);
        assert!(bytes <= 4 * CMD_BYTES, "{bytes}");
    }

    #[test]
    fn noisy_offscreen_copy_costs_raw() {
        let mut sr = SunRay::new(&NetworkConfig::lan_desktop(), 256, 256);
        let res = sr.ws.process(DrawRequest::CreatePixmap {
            width: 128,
            height: 128,
        });
        let pm = match res {
            thinc_display::request::RequestResult::Created(id) => id,
            other => panic!("{other:?}"),
        };
        let noise: Vec<u8> = (0..128 * 128 * 3)
            .map(|i| ((i as u64 * 2654435761) >> 16) as u8)
            .collect();
        sr.process(
            SimTime::ZERO,
            vec![
                DrawRequest::PutImage {
                    target: pm,
                    rect: Rect::new(0, 0, 128, 128),
                    data: noise,
                },
                DrawRequest::CopyArea {
                    src: pm,
                    dst: SCREEN,
                    src_rect: Rect::new(0, 0, 128, 128),
                    dst_x: 0,
                    dst_y: 0,
                },
            ],
        );
        assert!(sr.trace().bytes(Direction::Down) > 20_000);
    }

    #[test]
    fn video_frames_can_drop() {
        let slow = NetworkConfig::custom(
            "slow",
            2_000_000,
            SimDuration::from_millis(10),
            64 * 1024,
        );
        let mut sr = SunRay::new(&slow, 512, 512);
        let mut frame = YuvFrame::new(thinc_raster::YuvFormat::Yv12, 352, 240);
        let mut x = 7u64;
        for b in frame.data.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 33) as u8;
        }
        for i in 0..24 {
            sr.video_frame(SimTime(i * 41_667), &frame, Rect::new(0, 0, 512, 512));
        }
        assert!(sr.av_stats().frames_dropped > 0);
    }

    #[test]
    fn audio_supported() {
        let mut sr = SunRay::new(&NetworkConfig::lan_desktop(), 64, 64);
        sr.audio(SimTime::ZERO, &[0u8; 512]);
        assert_eq!(sr.av_stats().audio_bytes, 512);
    }
}
