//! Shared machinery for the baseline system models: CPU cost model,
//! pixel-region encoding, and request-stream size accounting.

use thinc_compress::Codec;
use thinc_display::request::DrawRequest;
use thinc_net::time::SimDuration;
use thinc_raster::{Framebuffer, PixelFormat, Rect, Region};

/// The testbed server: dual 933 MHz Pentium III (we model one busy
/// core plus some overlap, ~1.2 GHz effective).
pub const SERVER_HZ: u64 = 1_200_000_000;
/// The testbed client: 450 MHz Pentium II.
pub const CLIENT_HZ: u64 = 450_000_000;

/// Server cycles to rasterize one pixel.
pub const RASTER_CYCLES_PER_PX: u64 = 6;
/// Server cycles of fixed overhead per drawing request.
pub const REQUEST_CYCLES: u64 = 2_000;
/// Cycles per byte of HTML/content processing by the browser (layout,
/// script, decoding) — charged on whichever machine runs the browser.
pub const BROWSER_CYCLES_PER_BYTE: u64 = 2_000;
/// Bandwidth between the browser and the web server (testbed LAN).
pub const WEB_SERVER_BPS: u64 = 100_000_000;

/// Converts server cycles to virtual time.
pub fn server_time(cycles: u64) -> SimDuration {
    SimDuration::from_micros(cycles * 1_000_000 / SERVER_HZ)
}

/// Server CPU cost of rasterizing a request batch (pixels touched).
pub fn raster_cost(reqs: &[DrawRequest]) -> u64 {
    let mut cycles = 0;
    for r in reqs {
        cycles += REQUEST_CYCLES;
        let px = match r {
            DrawRequest::FillRect { rect, .. }
            | DrawRequest::TileRect { rect, .. }
            | DrawRequest::StippleRect { rect, .. }
            | DrawRequest::PutImage { rect, .. } => rect.area(),
            DrawRequest::CopyArea { src_rect, .. } => src_rect.area(),
            DrawRequest::Text { text, .. } => (text.len() as u64) * 64,
            DrawRequest::VideoPut { dst, .. } => dst.area(),
            // Software Porter-Duff is several times a plain fill.
            DrawRequest::Composite { rect, .. } => rect.area() * 4,
            DrawRequest::CreatePixmap { .. } | DrawRequest::FreePixmap { .. } => 0,
        };
        cycles += px * RASTER_CYCLES_PER_PX;
    }
    cycles
}

/// Encodes the pixels of `region` from `screen` with `codec` at
/// `depth_bytes` per pixel (screen scraping). Returns
/// `(wire_bytes, encode_cycles)`.
pub fn encode_region(
    screen: &Framebuffer,
    region: &Region,
    codec: Codec,
    depth_bytes: usize,
) -> (u64, u64) {
    let mut wire = 0u64;
    let mut cycles = 0u64;
    for r in region.rects() {
        let (clip, data) = screen.get_raw(r);
        if clip.is_empty() {
            continue;
        }
        // Re-quantize when the wire depth differs from the screen's.
        let payload: Vec<u8> = if depth_bytes == screen.format().bytes_per_pixel() {
            data
        } else {
            requantize(&data, screen.format(), depth_bytes)
        };
        let encoded = codec.compress(&payload);
        wire += 12 + encoded.len() as u64; // Rect header + payload.
        cycles += payload.len() as u64 * codec.cost_per_byte();
    }
    (wire, cycles)
}

/// Converts raw pixel bytes to a different depth (e.g. 24-bit → the
/// GoToMyPC 8-bit wire format).
pub fn requantize(data: &[u8], from: PixelFormat, to_bytes: usize) -> Vec<u8> {
    let from_bpp = from.bytes_per_pixel();
    let to_fmt = match to_bytes {
        1 => PixelFormat::Indexed8,
        2 => PixelFormat::Rgb565,
        3 => PixelFormat::Rgb888,
        _ => PixelFormat::Rgba8888,
    };
    let mut out = Vec::with_capacity(data.len() / from_bpp * to_bytes);
    let mut px = vec![0u8; to_bytes];
    for chunk in data.chunks_exact(from_bpp) {
        let c = from.decode(chunk);
        to_fmt.encode(c, &mut px);
        out.extend_from_slice(&px);
    }
    out
}

/// Approximate wire size of a drawing request in an X-class protocol
/// (the high-level command stream X and NX forward to the client).
pub fn x_request_size(req: &DrawRequest) -> u64 {
    const HDR: u64 = 24;
    HDR + match req {
        DrawRequest::CreatePixmap { .. } | DrawRequest::FreePixmap { .. } => 0,
        DrawRequest::FillRect { .. } => 8,
        DrawRequest::TileRect { .. } => 16,
        DrawRequest::StippleRect { bits, .. } => bits.len() as u64,
        DrawRequest::CopyArea { .. } => 16,
        DrawRequest::PutImage { data, .. } => data.len() as u64,
        DrawRequest::Text { text, .. } => 8 + text.len() as u64,
        DrawRequest::Composite { data, .. } => data.len() as u64,
        // Without a remote-video extension the player falls back to
        // uploading decoded RGB frames.
        DrawRequest::VideoPut { frame, dst } => {
            let _ = frame;
            dst.area() * 3
        }
    }
}

/// Maximum transmit backlog a system tolerates before dropping A/V
/// data (roughly the play-out buffer of a 2005 media pipeline).
pub const MAX_AV_BACKLOG: thinc_net::time::SimDuration =
    thinc_net::time::SimDuration(500_000);

/// Whether the downlink is too backlogged at `now` to accept another
/// A/V update (the realistic alternative to dropping anything larger
/// than the socket buffer: systems stream what bandwidth allows and
/// drop the rest).
pub fn av_backlogged(pipe: &thinc_net::tcp::TcpPipe, now: thinc_net::time::SimTime) -> bool {
    pipe.tx_free_at() > now + MAX_AV_BACKLOG
}

/// Uniformity check used by the Sun Ray inference model: whether a
/// screen rectangle is one solid color.
pub fn uniform_color(screen: &Framebuffer, r: &Rect) -> Option<thinc_raster::Color> {
    let clip = r.intersection(&screen.bounds());
    if clip.is_empty() {
        return None;
    }
    let first = screen.get_pixel(clip.x, clip.y)?;
    for y in clip.y..clip.bottom() {
        for x in clip.x..clip.right() {
            if screen.get_pixel(x, y) != Some(first) {
                return None;
            }
        }
    }
    Some(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::Color;

    #[test]
    fn raster_cost_scales_with_pixels() {
        let small = vec![DrawRequest::FillRect {
            target: thinc_display::SCREEN,
            rect: Rect::new(0, 0, 10, 10),
            color: Color::WHITE,
        }];
        let large = vec![DrawRequest::FillRect {
            target: thinc_display::SCREEN,
            rect: Rect::new(0, 0, 1000, 1000),
            color: Color::WHITE,
        }];
        assert!(raster_cost(&large) > raster_cost(&small) * 100);
    }

    #[test]
    fn server_time_conversion() {
        assert_eq!(server_time(SERVER_HZ).as_micros(), 1_000_000);
    }

    #[test]
    fn encode_region_flat_compresses() {
        let mut fb = Framebuffer::new(64, 64, PixelFormat::Rgb888);
        fb.fill_rect(&Rect::new(0, 0, 64, 64), Color::rgb(7, 7, 7));
        let region = Region::from_rect(Rect::new(0, 0, 64, 64));
        let (rle, _) = encode_region(&fb, &region, Codec::Rle, 3);
        let (raw, _) = encode_region(&fb, &region, Codec::None, 3);
        assert!(rle < raw / 10);
        assert_eq!(raw, 12 + 64 * 64 * 3);
    }

    #[test]
    fn requantize_to_8bit_shrinks() {
        let data = vec![0x80u8; 300];
        let out = requantize(&data, PixelFormat::Rgb888, 1);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn x_request_sizes() {
        let fill = DrawRequest::FillRect {
            target: thinc_display::SCREEN,
            rect: Rect::new(0, 0, 500, 500),
            color: Color::WHITE,
        };
        // High-level fills are tiny regardless of area...
        assert!(x_request_size(&fill) < 64);
        // ...but image uploads carry all their pixels.
        let img = DrawRequest::PutImage {
            target: thinc_display::SCREEN,
            rect: Rect::new(0, 0, 100, 100),
            data: vec![0; 30_000],
        };
        assert!(x_request_size(&img) > 30_000);
    }

    #[test]
    fn uniform_color_detection() {
        let mut fb = Framebuffer::new(16, 16, PixelFormat::Rgb888);
        fb.fill_rect(&Rect::new(0, 0, 16, 16), Color::rgb(5, 5, 5));
        assert_eq!(
            uniform_color(&fb, &Rect::new(0, 0, 16, 16)),
            Some(Color::rgb(5, 5, 5))
        );
        fb.set_pixel(8, 8, Color::WHITE);
        assert_eq!(uniform_color(&fb, &Rect::new(0, 0, 16, 16)), None);
        assert!(uniform_color(&fb, &Rect::new(100, 100, 4, 4)).is_none());
    }
}
