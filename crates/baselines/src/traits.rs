//! The uniform harness interface every remote display system
//! implements, so the benchmark can drive THINC and all comparators
//! through identical code paths (the reproduction's equivalent of
//! "run the same benchmark on every platform").

use thinc_display::request::DrawRequest;
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::PacketTrace;
use thinc_raster::{Point, Rect, YuvFrame};

/// A/V delivery counters (drive the slow-motion A/V quality metric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AvStats {
    /// Video frame (equivalents) delivered to the client.
    pub frames_delivered: u32,
    /// Video frames the system dropped (could not keep up).
    pub frames_dropped: u32,
    /// Audio bytes delivered.
    pub audio_bytes: u64,
}

/// A remote display system under benchmark.
pub trait RemoteDisplay {
    /// Display name as used in the paper's figures.
    fn name(&self) -> String;

    /// A user click at `pos` at time `now`. Sends the input packet
    /// upstream and returns its server-side arrival time.
    fn click(&mut self, now: SimTime, pos: Point) -> SimTime;

    /// The application issues drawing requests at `now` (server side
    /// for server-executed GUIs; forwarded for X-class systems).
    /// Returns the server CPU time consumed processing them.
    fn process(&mut self, now: SimTime, reqs: Vec<DrawRequest>) -> SimDuration;

    /// Advances delivery up to `now` (push flushes, pull cycles).
    fn pump(&mut self, now: SimTime);

    /// Runs delivery to completion starting no earlier than `from`;
    /// returns the arrival time of the last update at the client (or
    /// `from` when nothing was pending).
    fn drain(&mut self, from: SimTime) -> SimTime;

    /// Arrival time of the most recent client-bound payload.
    fn last_client_arrival(&self) -> Option<SimTime>;

    /// The packet capture (slow-motion measurement source).
    fn trace(&self) -> &PacketTrace;

    /// The video player displays `frame` at `dst` at time `now`.
    fn video_frame(&mut self, now: SimTime, frame: &YuvFrame, dst: Rect);

    /// The audio path plays PCM data at `now`.
    fn audio(&mut self, now: SimTime, pcm: &[u8]);

    /// A/V delivery counters.
    fn av_stats(&self) -> AvStats;

    /// Client processing seconds so far, when the client is
    /// instrumentable (`None` for closed systems, as in the paper).
    fn client_processing_secs(&self) -> Option<f64>;

    /// Whether this system supports a client viewport smaller than
    /// the session (only ICA, RDP, GoToMyPC, VNC and THINC do, §8.3).
    fn supports_small_screen(&self) -> bool {
        false
    }

    /// Whether audio is supported (GoToMyPC and VNC are video-only).
    fn supports_audio(&self) -> bool {
        true
    }

    /// The browser fetches `bytes` of page content at `now` and
    /// processes the HTML; returns when rendering can start.
    ///
    /// Default: the browser runs on the *server* (thin-client model),
    /// fetching over the testbed LAN and processing on the fast
    /// server CPU. The local PC overrides this: content crosses its
    /// own link and the slower client CPU does the processing.
    fn fetch_content(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let fetch = SimDuration::from_micros(
            bytes * 8 * 1_000_000 / crate::framework::WEB_SERVER_BPS,
        );
        let cpu = crate::framework::server_time(bytes * crate::framework::BROWSER_CYCLES_PER_BYTE);
        now + fetch + cpu
    }
}
