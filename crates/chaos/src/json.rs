//! Minimal hand-rolled JSON for schedule artifacts.
//!
//! The build environment carries no serde; this module implements
//! the small subset the chaos engine needs: objects, arrays,
//! strings, booleans, null and **integers only** — numbers are
//! parsed as `i128` so 64-bit seeds and salts survive a round trip
//! exactly (a float path would silently lose precision above 2^53),
//! and the writer never emits a fractional value.

use crate::event::{ChaosEvent, FaultKind, Schedule, Workload};

/// A parsed JSON value (integer-only numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the only number form supported).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 && *i <= u64::MAX as i128 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) if *i >= i64::MIN as i128 && *i <= i64::MAX as i128 => Some(*i as i64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            msg: msg.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return self.err("fractional numbers are not supported");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<i128>() {
            Ok(i) => Ok(Json::Int(i)),
            Err(_) => self.err("integer out of range"),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .ok()
                                    .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return self.err("bad \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    if self.pos + len > self.bytes.len() {
                        return self.err("truncated utf-8");
                    }
                    match std::str::from_utf8(&self.bytes[self.pos..self.pos + len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid utf-8"),
                    }
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a JSON document (integer-only numbers).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(v)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Json, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(indent + 1, out);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(indent, out);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                pad(indent + 1, out);
                escape_into(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

/// Pretty-prints a JSON value (two-space indent, trailing newline).
pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_value(v, 0, &mut out);
    out.push('\n');
    out
}

fn u64v(n: u64) -> Json {
    Json::Int(n as i128)
}

fn event_to_json(e: &ChaosEvent) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![("type".into(), Json::Str(e.tag().into()))];
    match e {
        ChaosEvent::Attach {
            viewport_w,
            viewport_h,
        } => {
            pairs.push(("viewport_w".into(), u64v(*viewport_w as u64)));
            pairs.push(("viewport_h".into(), u64v(*viewport_h as u64)));
        }
        ChaosEvent::Disconnect { slot }
        | ChaosEvent::Reconnect { slot }
        | ChaosEvent::PoisonFlush { slot }
        | ChaosEvent::SabotagePixel { slot } => {
            pairs.push(("slot".into(), u64v(*slot as u64)));
        }
        ChaosEvent::Resize {
            slot,
            viewport_w,
            viewport_h,
        } => {
            pairs.push(("slot".into(), u64v(*slot as u64)));
            pairs.push(("viewport_w".into(), u64v(*viewport_w as u64)));
            pairs.push(("viewport_h".into(), u64v(*viewport_h as u64)));
        }
        ChaosEvent::Fault {
            slot,
            kind,
            offset_ms,
            len_ms,
            rate_pct,
        } => {
            pairs.push(("slot".into(), u64v(*slot as u64)));
            pairs.push(("kind".into(), Json::Str(kind.name().into())));
            pairs.push(("offset_ms".into(), u64v(*offset_ms as u64)));
            pairs.push(("len_ms".into(), u64v(*len_ms as u64)));
            pairs.push(("rate_pct".into(), u64v(*rate_pct as u64)));
        }
        ChaosEvent::CacheBudget { bytes } => {
            pairs.push(("bytes".into(), u64v(*bytes)));
        }
        ChaosEvent::Draw {
            workload,
            x,
            y,
            w,
            h,
            salt,
        } => {
            pairs.push(("workload".into(), Json::Str(workload.name().into())));
            pairs.push(("x".into(), Json::Int(*x as i128)));
            pairs.push(("y".into(), Json::Int(*y as i128)));
            pairs.push(("w".into(), u64v(*w as u64)));
            pairs.push(("h".into(), u64v(*h as u64)));
            pairs.push(("salt".into(), u64v(*salt)));
        }
        ChaosEvent::Flush { epochs, step_ms } => {
            pairs.push(("epochs".into(), u64v(*epochs as u64)));
            pairs.push(("step_ms".into(), u64v(*step_ms as u64)));
        }
        ChaosEvent::ServerCrash | ChaosEvent::Failover | ChaosEvent::Quiesce => {}
    }
    Json::Obj(pairs)
}

/// A field-level schema failure when decoding a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schedule schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

fn need_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, SchemaError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| SchemaError(format!("{ctx}: missing or non-integer '{key}'")))
}

fn need_i64(obj: &Json, key: &str, ctx: &str) -> Result<i64, SchemaError> {
    obj.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| SchemaError(format!("{ctx}: missing or non-integer '{key}'")))
}

fn event_from_json(obj: &Json, idx: usize) -> Result<ChaosEvent, SchemaError> {
    let ctx = format!("events[{idx}]");
    let tag = obj
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| SchemaError(format!("{ctx}: missing 'type'")))?;
    Ok(match tag {
        "attach" => ChaosEvent::Attach {
            viewport_w: need_u64(obj, "viewport_w", &ctx)? as u32,
            viewport_h: need_u64(obj, "viewport_h", &ctx)? as u32,
        },
        "disconnect" => ChaosEvent::Disconnect {
            slot: need_u64(obj, "slot", &ctx)? as usize,
        },
        "reconnect" => ChaosEvent::Reconnect {
            slot: need_u64(obj, "slot", &ctx)? as usize,
        },
        "resize" => ChaosEvent::Resize {
            slot: need_u64(obj, "slot", &ctx)? as usize,
            viewport_w: need_u64(obj, "viewport_w", &ctx)? as u32,
            viewport_h: need_u64(obj, "viewport_h", &ctx)? as u32,
        },
        "fault" => {
            let kind_name = obj
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| SchemaError(format!("{ctx}: missing 'kind'")))?;
            ChaosEvent::Fault {
                slot: need_u64(obj, "slot", &ctx)? as usize,
                kind: FaultKind::from_name(kind_name)
                    .ok_or_else(|| SchemaError(format!("{ctx}: unknown kind '{kind_name}'")))?,
                offset_ms: need_u64(obj, "offset_ms", &ctx)? as u32,
                len_ms: need_u64(obj, "len_ms", &ctx)? as u32,
                rate_pct: need_u64(obj, "rate_pct", &ctx)?.min(100) as u8,
            }
        }
        "cache_budget" => ChaosEvent::CacheBudget {
            bytes: need_u64(obj, "bytes", &ctx)?,
        },
        "draw" => {
            let wname = obj
                .get("workload")
                .and_then(Json::as_str)
                .ok_or_else(|| SchemaError(format!("{ctx}: missing 'workload'")))?;
            ChaosEvent::Draw {
                workload: Workload::from_name(wname)
                    .ok_or_else(|| SchemaError(format!("{ctx}: unknown workload '{wname}'")))?,
                x: need_i64(obj, "x", &ctx)? as i32,
                y: need_i64(obj, "y", &ctx)? as i32,
                w: need_u64(obj, "w", &ctx)? as u32,
                h: need_u64(obj, "h", &ctx)? as u32,
                salt: need_u64(obj, "salt", &ctx)?,
            }
        }
        "flush" => ChaosEvent::Flush {
            epochs: need_u64(obj, "epochs", &ctx)? as u32,
            step_ms: need_u64(obj, "step_ms", &ctx)? as u32,
        },
        "poison_flush" => ChaosEvent::PoisonFlush {
            slot: need_u64(obj, "slot", &ctx)? as usize,
        },
        "sabotage_pixel" => ChaosEvent::SabotagePixel {
            slot: need_u64(obj, "slot", &ctx)? as usize,
        },
        "server_crash" => ChaosEvent::ServerCrash,
        "failover" => ChaosEvent::Failover,
        "quiesce" => ChaosEvent::Quiesce,
        other => return Err(SchemaError(format!("{ctx}: unknown event type '{other}'"))),
    })
}

/// Serializes a schedule to its replayable JSON artifact form.
pub fn schedule_to_json(s: &Schedule) -> String {
    let mut pairs: Vec<(String, Json)> = vec![
        ("seed".into(), u64v(s.seed)),
        ("width".into(), u64v(s.width as u64)),
        ("height".into(), u64v(s.height as u64)),
        ("workers".into(), u64v(s.workers as u64)),
        ("shards".into(), u64v(s.shards.max(1) as u64)),
        ("cache_budget".into(), u64v(s.cache_budget)),
        ("buffer_bound".into(), u64v(s.buffer_bound)),
    ];
    if let Some(v) = &s.expect_violation {
        pairs.push(("expect_violation".into(), Json::Str(v.clone())));
    }
    pairs.push((
        "events".into(),
        Json::Arr(s.events.iter().map(event_to_json).collect()),
    ));
    to_string(&Json::Obj(pairs))
}

/// Parses a schedule back from its JSON artifact form.
pub fn schedule_from_json(text: &str) -> Result<Schedule, Box<dyn std::error::Error>> {
    let doc = parse(text)?;
    let ctx = "schedule";
    let events_json = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or_else(|| SchemaError(format!("{ctx}: missing 'events' array")))?;
    let mut events = Vec::with_capacity(events_json.len());
    for (i, e) in events_json.iter().enumerate() {
        events.push(event_from_json(e, i)?);
    }
    Ok(Schedule {
        seed: need_u64(&doc, "seed", ctx)?,
        width: need_u64(&doc, "width", ctx)? as u32,
        height: need_u64(&doc, "height", ctx)? as u32,
        workers: need_u64(&doc, "workers", ctx)? as usize,
        // Absent in pre-fan-out artifacts: default to the monolithic
        // flush they were recorded under.
        shards: doc.get("shards").and_then(Json::as_u64).unwrap_or(1) as usize,
        cache_budget: need_u64(&doc, "cache_budget", ctx)?,
        buffer_bound: need_u64(&doc, "buffer_bound", ctx)?,
        events,
        expect_violation: doc
            .get("expect_violation")
            .and_then(Json::as_str)
            .map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e9").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,2] x").is_err());
    }

    #[test]
    fn full_u64_salt_survives_round_trip() {
        // 2^53 + 1 is exactly where an f64-based number path breaks.
        let salt = (1u64 << 53) + 1;
        let s = Schedule {
            events: vec![ChaosEvent::Draw {
                workload: Workload::Noise,
                x: -3,
                y: 7,
                w: 16,
                h: 16,
                salt,
            }],
            ..Schedule::base(u64::MAX)
        };
        let text = schedule_to_json(&s);
        let back = schedule_from_json(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn shards_round_trip_and_default_to_one() {
        let mut s = Schedule::base(5);
        s.shards = 8;
        assert_eq!(schedule_from_json(&schedule_to_json(&s)).unwrap(), s);
        // Pre-fan-out artifacts carry no 'shards' key: monolithic.
        let legacy = "{\"seed\": 5, \"width\": 64, \"height\": 48, \"workers\": 1, \
                      \"cache_budget\": 262144, \"buffer_bound\": 98304, \"events\": []}";
        assert_eq!(schedule_from_json(legacy).unwrap().shards, 1);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let mut s = Schedule::base(9);
        s.expect_violation = Some("convergence".into());
        s.events = vec![
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Disconnect { slot: 0 },
            ChaosEvent::Reconnect { slot: 0 },
            ChaosEvent::Resize {
                slot: 0,
                viewport_w: 32,
                viewport_h: 24,
            },
            ChaosEvent::Fault {
                slot: 0,
                kind: FaultKind::Reorder,
                offset_ms: 5,
                len_ms: 250,
                rate_pct: 40,
            },
            ChaosEvent::CacheBudget { bytes: 65536 },
            ChaosEvent::Draw {
                workload: Workload::Scroll,
                x: 0,
                y: 0,
                w: 64,
                h: 48,
                salt: 1,
            },
            ChaosEvent::Flush {
                epochs: 3,
                step_ms: 40,
            },
            ChaosEvent::PoisonFlush { slot: 1 },
            ChaosEvent::SabotagePixel { slot: 0 },
            ChaosEvent::ServerCrash,
            ChaosEvent::Failover,
            ChaosEvent::Quiesce,
        ];
        let text = schedule_to_json(&s);
        assert_eq!(schedule_from_json(&text).unwrap(), s);
    }
}
