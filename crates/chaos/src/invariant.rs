//! The global invariant catalog and run verdicts.
//!
//! Each invariant has a stable name — the string checked-in failure
//! artifacts reference via `expect_violation` — and is evaluated by
//! the runner at every quiesce point, after the system has been
//! given a fault-free drain window:
//!
//! | name | claim |
//! |------|-------|
//! | [`CONVERGENCE`] | every connected, un-quarantined client's framebuffer is byte-exact against the authoritative screen (through its scale policy for resized viewports) |
//! | [`CACHE_COHERENCE`] | server ledger and client store hold the identical sorted key set for every undamaged client; damaged clients still satisfy hit-count conservation; no cache miss is left unanswered |
//! | [`REFRESH_DEBT`] | refresh debt, overflow debt, queued fallbacks and backlog all drain to zero within the quiesce window |
//! | [`BUFFER_BOUND`] | a client's buffered bytes never exceed its byte bound plus bounded repay slack, at any pump of the run |
//! | [`LIVENESS`] | connected clients are never declared dead at quiesce; clients disconnected longer than the timeout always are |
//! | [`TELEMETRY`] | counters obey conservation: `resyncs_triggered <= seq_gaps`, `retransmits == segments_lost`, client cache hits never exceed refs served |
//! | [`QUARANTINE`] | a poisoned flush quarantines exactly the poisoned clients; the session keeps serving everyone else |
//! | [`FAILOVER`] | every checkpoint image round-trips: restoring it and re-checkpointing against the same screen reproduces the image byte-for-byte, and a restored standby converges every redialing client (checked by [`CONVERGENCE`] at the next quiesce) |
//! | [`RUNNER`] | the harness's own bookkeeping holds: the sharded flush partition covers every link exactly once and every shard returns what it borrowed — breaches degrade to a recorded violation, never a panic |

/// Name of the framebuffer-convergence invariant.
pub const CONVERGENCE: &str = "convergence";
/// Name of the server-ledger/client-store coherence invariant.
pub const CACHE_COHERENCE: &str = "cache-coherence";
/// Name of the debt-drains-to-zero invariant.
pub const REFRESH_DEBT: &str = "refresh-debt";
/// Name of the per-client buffer bound invariant.
pub const BUFFER_BOUND: &str = "buffer-bound";
/// Name of the liveness-verdict consistency invariant.
pub const LIVENESS: &str = "liveness";
/// Name of the telemetry counter-conservation invariant.
pub const TELEMETRY: &str = "telemetry-conservation";
/// Name of the panic-quarantine containment invariant.
pub const QUARANTINE: &str = "quarantine-containment";
/// Name of the checkpoint/failover fidelity invariant.
pub const FAILOVER: &str = "failover-fidelity";
/// Name of the harness-integrity invariant (runner bookkeeping that
/// used to panic now degrades to a violation under this name).
pub const RUNNER: &str = "runner-integrity";

/// Every invariant name, for catalogs and CLI help.
pub const ALL: [&str; 9] = [
    CONVERGENCE,
    CACHE_COHERENCE,
    REFRESH_DEBT,
    BUFFER_BOUND,
    LIVENESS,
    TELEMETRY,
    QUARANTINE,
    FAILOVER,
    RUNNER,
];

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant (one of the names in [`ALL`]).
    pub invariant: String,
    /// Human-readable specifics: slot, counters, expected vs actual.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The outcome of running one schedule to completion.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Every violation observed, in detection order.
    pub violations: Vec<Violation>,
    /// Events executed (always the full schedule; events are
    /// removal-tolerant, never aborting).
    pub events_executed: usize,
    /// Quiesce checkpoints evaluated (including the implicit final
    /// one).
    pub quiesces: usize,
    /// Total clients attached over the run.
    pub slots_attached: usize,
    /// Clients quarantined by flush panic containment.
    pub quarantined: usize,
}

impl RunReport {
    /// Whether every invariant held at every checkpoint.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether some violation of the named invariant was observed.
    pub fn violated(&self, invariant: &str) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.passed() {
            format!(
                "PASS: {} events, {} quiesce checks, {} clients ({} quarantined)",
                self.events_executed, self.quiesces, self.slots_attached, self.quarantined
            )
        } else {
            format!(
                "FAIL: {} violation(s), first: {}",
                self.violations.len(),
                self.violations[0]
            )
        }
    }
}
