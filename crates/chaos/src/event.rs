//! The chaos event vocabulary and the schedule that sequences it.
//!
//! A [`Schedule`] is a fully self-describing experiment: a seed, the
//! session geometry, the worker count, and an ordered list of
//! [`ChaosEvent`]s. Running the same schedule twice produces the
//! same byte streams, the same telemetry and the same verdicts —
//! there is no hidden state, no wall clock and no ambient RNG.
//!
//! Every event is **removal-tolerant**: an event referencing a slot
//! that a shrunken schedule never attached (or that is quarantined)
//! degrades to a no-op instead of an error. That property is what
//! makes delta-debugging sound — *any* subsequence of a valid
//! schedule is itself a valid schedule (see [`crate::shrink`]).

/// The kind of transport fault a [`ChaosEvent::Fault`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Random segment loss (recovered by simulated retransmission).
    Loss,
    /// A total link outage window (sends defer, buffers accumulate).
    Outage,
    /// A bandwidth-collapse window (rate multiplied by `rate_pct`%).
    Collapse,
    /// Byte corruption in flight (caught by per-frame CRC32).
    Corruption,
    /// Segment reordering (held segments released out of order).
    Reorder,
    /// Segment duplication (dropped by sequence-number framing).
    Duplicate,
}

impl FaultKind {
    /// Stable wire name used in the JSON artifact format.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Loss => "loss",
            FaultKind::Outage => "outage",
            FaultKind::Collapse => "collapse",
            FaultKind::Corruption => "corruption",
            FaultKind::Reorder => "reorder",
            FaultKind::Duplicate => "duplicate",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "loss" => FaultKind::Loss,
            "outage" => FaultKind::Outage,
            "collapse" => FaultKind::Collapse,
            "corruption" => FaultKind::Corruption,
            "reorder" => FaultKind::Reorder,
            "duplicate" => FaultKind::Duplicate,
            _ => return None,
        })
    }
}

/// What a [`ChaosEvent::Draw`] paints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A solid fill (SFILL on the wire; color derived from `salt`).
    Solid,
    /// Per-pixel noise (RAW on the wire; bytes derived from `salt`).
    Noise,
    /// One of a small palette of repeating patterns (RAW payloads
    /// that repeat exactly, so the content cache sees hits).
    Tile,
    /// A copy of existing screen content shifted by a fixed delta
    /// (COPY on the wire — the non-idempotent command that makes
    /// duplicate suppression load-bearing).
    Scroll,
}

impl Workload {
    /// Stable wire name used in the JSON artifact format.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Solid => "solid",
            Workload::Noise => "noise",
            Workload::Tile => "tile",
            Workload::Scroll => "scroll",
        }
    }

    /// Parses a wire name back into a workload.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "solid" => Workload::Solid,
            "noise" => Workload::Noise,
            "tile" => Workload::Tile,
            "scroll" => Workload::Scroll,
            _ => return None,
        })
    }
}

/// One step of a chaos schedule.
///
/// `slot` indices are stable for the lifetime of a run: slot `n` is
/// the `n`-th [`Attach`](Self::Attach) executed, and disconnecting or
/// quarantining a slot never renumbers the others.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Attach a new client with the given viewport (clamped to the
    /// session geometry; equal to it for an identity client, smaller
    /// for a server-side-scaled one).
    Attach {
        /// Requested viewport width.
        viewport_w: u32,
        /// Requested viewport height.
        viewport_h: u32,
    },
    /// Abruptly sever a client's connection: in-flight data already
    /// on the wire still arrives, everything after is black-holed
    /// (modeled as an indefinite outage, so the server's buffer
    /// accumulates and its eviction/merge bound is exercised).
    Disconnect {
        /// Target slot.
        slot: usize,
    },
    /// Re-establish a slot's connection: a fresh pipe, a soft client
    /// reconnect (display state survives) and a server-side resync.
    /// Issued against a connected slot it models a fast redial.
    Reconnect {
        /// Target slot.
        slot: usize,
    },
    /// Mid-session viewport change (device switch). The client's
    /// local display and cache store restart at the new geometry.
    Resize {
        /// Target slot.
        slot: usize,
        /// New viewport width.
        viewport_w: u32,
        /// New viewport height.
        viewport_h: u32,
    },
    /// Arm a fault window on a slot's downlink, composing with any
    /// windows already armed on that pipe.
    Fault {
        /// Target slot.
        slot: usize,
        /// What kind of disturbance.
        kind: FaultKind,
        /// Window start, milliseconds after the current virtual time.
        offset_ms: u32,
        /// Window length, milliseconds.
        len_ms: u32,
        /// Kind-specific intensity in percent: loss/corruption/
        /// reorder/duplication probability, or the collapse factor.
        rate_pct: u8,
    },
    /// Change the content-cache budget for clients attached from now
    /// on (already-attached clients keep their negotiated budget —
    /// the ledger/store mirror requires it).
    CacheBudget {
        /// New budget, bytes.
        bytes: u64,
    },
    /// Paint the session screen and broadcast the update.
    Draw {
        /// What to paint.
        workload: Workload,
        /// Destination rectangle origin x.
        x: i32,
        /// Destination rectangle origin y.
        y: i32,
        /// Destination rectangle width.
        w: u32,
        /// Destination rectangle height.
        h: u32,
        /// Deterministic content selector (color, noise seed,
        /// pattern index or scroll delta).
        salt: u64,
    },
    /// Advance virtual time in steps, flushing every client and
    /// routing upstream traffic (pongs, cache misses, refresh
    /// requests) after each step.
    Flush {
        /// Number of steps.
        epochs: u32,
        /// Virtual time per step, milliseconds.
        step_ms: u32,
    },
    /// Test-only: arm the injected panic in a slot's next flush. The
    /// generator never emits this — it exists to prove the
    /// quarantine path end to end.
    PoisonFlush {
        /// Target slot.
        slot: usize,
    },
    /// Test-only: silently flip one pixel in a slot's *local*
    /// framebuffer, violating convergence on purpose. The generator
    /// never emits this — it exists to prove the invariant checker
    /// and the shrinker catch a real divergence.
    SabotagePixel {
        /// Target slot.
        slot: usize,
    },
    /// Crash the server and fail over to a warm standby restored
    /// from a **crash-instant** checkpoint image. Every connected
    /// client redials presenting its resume token
    /// (`MSG_SESSION_RESUME`): matching tokens resume warm (the
    /// standby ships only the checkpoint-vs-live tile delta), stale
    /// or unusable ones fall back to a cold reconnect. Clients the
    /// old incarnation had quarantined died with it and reattach
    /// fresh; severed clients stay severed.
    ServerCrash,
    /// Fail over to a warm standby restored from the checkpoint
    /// taken at the **previous quiesce** (crash-instant when no
    /// quiesce has run yet). The standby's state lags live, so
    /// resume tokens can legitimately be rejected (cache digest
    /// drift) and clients attached since that quiesce reattach from
    /// scratch — the stale-image stress the warm path must absorb
    /// without losing convergence.
    Failover,
    /// Drain the system to a settled state and check every global
    /// invariant (a final quiesce always runs at end of schedule,
    /// whether or not the event list ends with one).
    Quiesce,
}

impl ChaosEvent {
    /// Short human-readable tag for logs and shrink traces.
    pub fn tag(&self) -> &'static str {
        match self {
            ChaosEvent::Attach { .. } => "attach",
            ChaosEvent::Disconnect { .. } => "disconnect",
            ChaosEvent::Reconnect { .. } => "reconnect",
            ChaosEvent::Resize { .. } => "resize",
            ChaosEvent::Fault { .. } => "fault",
            ChaosEvent::CacheBudget { .. } => "cache_budget",
            ChaosEvent::Draw { .. } => "draw",
            ChaosEvent::Flush { .. } => "flush",
            ChaosEvent::PoisonFlush { .. } => "poison_flush",
            ChaosEvent::SabotagePixel { .. } => "sabotage_pixel",
            ChaosEvent::ServerCrash => "server_crash",
            ChaosEvent::Failover => "failover",
            ChaosEvent::Quiesce => "quiesce",
        }
    }
}

/// A complete, self-describing chaos experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Seed every derived PRNG (fault plans, jitter) descends from.
    pub seed: u64,
    /// Session framebuffer width.
    pub width: u32,
    /// Session framebuffer height.
    pub height: u32,
    /// Flush worker-pool size (the run must be bit-identical for
    /// every value; the soak sweeps several).
    pub workers: usize,
    /// Shard count for the flush partition. 1 flushes the session
    /// monolithically; above 1 each pump routes through the sharded
    /// fan-out partition (stable hash of client id, one shared
    /// encode-once plane per pump). Bit-identical for every value —
    /// the same contract as `workers`.
    pub shards: usize,
    /// Content-cache budget installed at session start, bytes.
    pub cache_budget: u64,
    /// Per-client buffer byte bound (eviction/merge kicks in above).
    pub buffer_bound: u64,
    /// The ordered event list.
    pub events: Vec<ChaosEvent>,
    /// For checked-in failure artifacts: the invariant this schedule
    /// is *expected* to violate. Replay exits successfully only when
    /// the expectation matches the outcome.
    pub expect_violation: Option<String>,
}

impl Schedule {
    /// A schedule with the engine's default geometry and budgets and
    /// an empty event list.
    pub fn base(seed: u64) -> Self {
        Schedule {
            seed,
            width: 64,
            height: 48,
            workers: 1,
            shards: 1,
            cache_budget: 256 * 1024,
            buffer_bound: 96 * 1024,
            events: Vec::new(),
            expect_violation: None,
        }
    }

    /// This schedule with a different event list (shrinking helper —
    /// everything else, notably the seed, is preserved so candidate
    /// subsequences replay in the identical environment).
    pub fn with_events(&self, events: Vec<ChaosEvent>) -> Self {
        Schedule {
            events,
            ..self.clone()
        }
    }
}
