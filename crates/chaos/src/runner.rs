//! The schedule executor: one [`Schedule`] in, one [`RunReport`] out.
//!
//! The runner owns the whole closed loop — an authoritative
//! [`SharedSession`], a [`DrawableStore`] screen, and per-slot
//! [`StreamClient`]s each behind their own faultable [`TcpPipe`] —
//! and advances it in *virtual* time only. Nothing here reads a wall
//! clock or an ambient RNG: every random draw descends from the
//! schedule seed, so the same schedule produces the same byte
//! streams, the same telemetry and the same verdicts on every
//! machine and for every flush worker count.
//!
//! At each [`ChaosEvent::Quiesce`] the runner drains the system
//! (fault windows run out, pipes swap to clean plans, refresh debt
//! is repaid) and then evaluates the global invariant catalog in
//! [`crate::invariant`]. Violations accumulate in the report; a run
//! never aborts early, so shrinking sees the same failure shape on
//! every candidate.

use crate::event::{ChaosEvent, FaultKind, Schedule, Workload};
use crate::invariant::{self, RunReport, Violation};
use thinc_client::{ReconnectConfig, ReconnectPolicy, StreamClient, ThincClient};
use thinc_core::degradation::{DegradationConfig, DegradationLevel};
use thinc_core::liveness::LivenessConfig;
use thinc_core::scaling::ScalePolicy;
use thinc_core::session::{ClientId, Credentials, FlushOutput, SharedSession};
use thinc_core::ResumeOutcome;
use thinc_display::drawable::DrawableStore;
use thinc_display::driver::VideoDriver;
use thinc_display::SCREEN;
use thinc_net::fault::{FaultPlan, SplitMix64};
use thinc_net::link::NetworkConfig;
use thinc_net::tcp::TcpPipe;
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::PacketTrace;
use thinc_protocol::commands::{DisplayCommand, RawEncoding};
use thinc_protocol::message::Message;
use thinc_protocol::wire::{self, FrameEncoder};
use thinc_protocol::PROTOCOL_VERSION;
use thinc_raster::{Color, PixelFormat, Rect};

/// Pixel format every chaos session runs in.
const FORMAT: PixelFormat = PixelFormat::Rgb888;
/// Liveness timeout: silence longer than this declares a client dead.
const LIVENESS_TIMEOUT: SimDuration = SimDuration::from_secs(3);
/// Ping cadence, well under the timeout so probes always precede it.
const PING_INTERVAL: SimDuration = SimDuration::from_millis(500);
/// "Indefinite" outage length used to model a severed connection
/// (about 115 virtual days — no schedule runs anywhere near it).
const FOREVER: SimDuration = SimDuration(10_000_000_000_000);
/// Virtual time per settle pump. Kept far under the liveness timeout
/// so pings keep flowing while the quiesce drains.
const SETTLE_STEP: SimDuration = SimDuration::from_millis(100);
/// Virtual time per fault-window run-out pump.
const RUNOUT_STEP: SimDuration = SimDuration::from_millis(250);
/// Settle pumps a quiesce may spend before declaring stuck debt.
const MAX_SETTLE: usize = 400;
/// Hard cap on slots (the generator stays lower; hand-written
/// schedules beyond this see their attaches degrade to no-ops).
/// Sized for fan-out schedules that drive the sharded flush
/// partition with a real population.
const MAX_SLOTS: usize = 64;

/// Installs (once per process) a panic hook that swallows only the
/// deliberately injected flush poison, so chaos runs exercising the
/// quarantine path do not spray scary-but-expected backtraces.
/// Every other panic is forwarded to the previous hook untouched.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()))
                .unwrap_or("");
            if !msg.contains("injected poison") {
                prev(info);
            }
        }));
    });
}

/// A typed harness-integrity failure. The runner's own bookkeeping
/// used to assert (and panic) on these; they now degrade to a
/// recorded [`crate::invariant::RUNNER`] violation with defined
/// fallback behavior, so a harness bug produces a diagnosable report
/// instead of tearing down a soak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosError {
    /// The sharded flush partition failed to cover every link
    /// position exactly once. Detected before any link moves, so the
    /// pump falls back to the monolithic flush path.
    ShardPartition {
        /// Human-readable specifics (position, shard count).
        detail: String,
    },
    /// A shard consumed a link it never returned (or tried to consume
    /// one twice). The affected client skips the epoch — or continues
    /// on a fresh clean pipe — and the run keeps going.
    LinkLost {
        /// Human-readable specifics (position, client).
        detail: String,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::ShardPartition { detail } => {
                write!(f, "shard partition breach: {detail}")
            }
            ChaosError::LinkLost { detail } => write!(f, "flush link lost: {detail}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// Accumulated fault windows for one slot's current pipe epoch.
///
/// [`TcpPipe::set_fault_plan`] replaces the whole fault state, so
/// composing a new window with ones already armed means rebuilding
/// the full plan; this records everything armed since the last clean
/// swap. `Loss` is a flat rate (active until the next quiesce);
/// everything else is windowed.
#[derive(Debug, Default, Clone)]
struct PlanSpec {
    loss: f64,
    outages: Vec<(SimTime, SimDuration)>,
    collapses: Vec<(SimTime, SimDuration, f64)>,
    corruptions: Vec<(SimTime, SimDuration, f64)>,
    reorders: Vec<(SimTime, SimDuration, f64)>,
    dups: Vec<(SimTime, SimDuration, f64)>,
}

impl PlanSpec {
    fn is_clean(&self) -> bool {
        self.loss == 0.0
            && self.outages.is_empty()
            && self.collapses.is_empty()
            && self.corruptions.is_empty()
            && self.reorders.is_empty()
            && self.dups.is_empty()
    }

    /// Latest end among all armed windows (`SimTime(0)` when none).
    fn windows_end(&self) -> SimTime {
        let mut end = SimTime(0);
        for (s, l) in &self.outages {
            end = end.max(SimTime(s.0.saturating_add(l.0)));
        }
        for (s, l, _) in self
            .collapses
            .iter()
            .chain(&self.corruptions)
            .chain(&self.reorders)
            .chain(&self.dups)
        {
            end = end.max(SimTime(s.0.saturating_add(l.0)));
        }
        end
    }

    /// Rebuilds the full plan with a PRNG stream derived from the
    /// schedule seed, the slot and the plan epoch — deterministic,
    /// and distinct across slots and across successive swaps.
    fn build(&self, base_seed: u64, slot: usize, epoch: u64) -> FaultPlan {
        let derived = SplitMix64::new(
            base_seed
                ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ epoch.wrapping_mul(0x2545_F491_4F6C_DD1D),
        )
        .next_u64();
        let mut plan = FaultPlan::seeded(derived);
        if self.loss > 0.0 {
            plan = plan.with_loss(self.loss);
        }
        for (s, l) in &self.outages {
            plan = plan.with_outage(*s, *l);
        }
        for (s, l, f) in &self.collapses {
            plan = plan.with_collapse(*s, *l, *f);
        }
        for (s, l, r) in &self.corruptions {
            plan = plan.with_corruption(*s, *l, *r);
        }
        for (s, l, r) in &self.reorders {
            plan = plan.with_reorder(*s, *l, *r);
        }
        for (s, l, r) in &self.dups {
            plan = plan.with_duplication(*s, *l, *r);
        }
        plan
    }
}

/// One chaos slot: a stable index onto a (possibly re-issued)
/// session client and its client-side stream state.
struct Slot {
    /// Current session client id (re-issued on hard reattach).
    id: ClientId,
    viewport: (u32, u32),
    /// Cache budget negotiated with the server at attach time.
    budget: u64,
    connected: bool,
    disconnected_at: Option<SimTime>,
    stream: StreamClient,
    encoder: FrameEncoder,
    plan: PlanSpec,
    plan_epoch: u64,
    /// Fault stats folded out of replaced plans (a plan swap resets
    /// the pipe's counters).
    accrued_lost: u64,
    accrued_retx: u64,
    /// Whether the ledger/store eviction mirror can still be checked
    /// strictly (cleared by wire damage, cache misses and resizes).
    mirror_intact: bool,
    /// An outage/collapse window (or severed link) was armed since
    /// the last quiesce: a Dead verdict is starvation, not a bug.
    outage_excused: bool,
    /// This slot's flush was deliberately poisoned.
    poisoned: bool,
    /// Pongs routed upstream for the current client incarnation.
    pongs_routed: u64,
    /// Client cache hits already credited against a *previous* server
    /// incarnation. A failover resets the server's per-client
    /// counters, so hit-count conservation is checked per incarnation
    /// — hits above this baseline against refs the standby served.
    cache_hits_base: u64,
}

struct Runner {
    session: SharedSession,
    store: DrawableStore,
    /// `(client, pipe, trace)` in session-attach order — the exact
    /// order [`SharedSession::flush_all`] expects its links in.
    links: Vec<(ClientId, TcpPipe, PacketTrace)>,
    slots: Vec<Slot>,
    now: SimTime,
    seed: u64,
    width: u32,
    height: u32,
    /// Flush partition width: 1 = monolithic `flush_all`, above 1 =
    /// the sharded fan-out path (stable-hash partition, one shared
    /// encode-once plane per pump). Same bytes either way.
    shards: usize,
    /// Cache budget clients attached from now on negotiate.
    budget_for_new: u64,
    attaches: usize,
    violations: Vec<Violation>,
    /// Latch so a persistent buffer overrun reports once, not per pump.
    buffer_bound_flagged: bool,
    quiesces: usize,
    /// The checkpoint image taken at the most recent quiesce — the
    /// state a warm standby holds when [`ChaosEvent::Failover`]
    /// fires. [`ChaosEvent::ServerCrash`] ignores it and snapshots at
    /// the crash instant instead.
    last_checkpoint: Option<Vec<u8>>,
}

/// Runs `schedule` to completion and reports every invariant
/// violation observed. Never panics on schedule content: dangling
/// slot references and out-of-range rectangles degrade to no-ops
/// (the removal-tolerance contract shrinking relies on).
pub fn run(schedule: &Schedule) -> RunReport {
    if schedule
        .events
        .iter()
        .any(|e| matches!(e, ChaosEvent::PoisonFlush { .. }))
    {
        silence_injected_panics();
    }
    let width = schedule.width.clamp(8, 512);
    let height = schedule.height.clamp(8, 512);
    let mut session = SharedSession::new(width, height, FORMAT, "host")
        .with_liveness(LivenessConfig {
            timeout: LIVENESS_TIMEOUT,
            ping_interval: PING_INTERVAL,
        })
        .with_degradation(DegradationConfig::default())
        .with_buffer_bound(schedule.buffer_bound.max(4 * 1024))
        .with_cache(schedule.cache_budget.max(4 * 1024))
        .with_workers(schedule.workers.max(1));
    session.auth_mut().enable_sharing("chaos");
    let mut r = Runner {
        session,
        store: DrawableStore::new(width, height, FORMAT),
        links: Vec::new(),
        slots: Vec::new(),
        now: SimTime(0),
        seed: schedule.seed,
        width,
        height,
        shards: schedule.shards.max(1),
        budget_for_new: schedule.cache_budget.max(4 * 1024),
        attaches: 0,
        violations: Vec::new(),
        buffer_bound_flagged: false,
        quiesces: 0,
        last_checkpoint: None,
    };
    let mut executed = 0usize;
    for ev in &schedule.events {
        r.exec(ev);
        executed += 1;
    }
    // The implicit final checkpoint: every run ends settled and
    // checked, whether or not the event list says so.
    if !matches!(schedule.events.last(), Some(ChaosEvent::Quiesce)) {
        r.quiesce();
    }
    RunReport {
        violations: r.violations,
        events_executed: executed,
        quiesces: r.quiesces,
        slots_attached: r.attaches,
        quarantined: r.session.quarantined_count(),
    }
}

impl Runner {
    fn violation(&mut self, invariant: &str, detail: String) {
        self.violations.push(Violation {
            invariant: invariant.to_string(),
            detail,
        });
    }

    fn exec(&mut self, ev: &ChaosEvent) {
        match *ev {
            ChaosEvent::Attach {
                viewport_w,
                viewport_h,
            } => {
                self.attach(viewport_w, viewport_h);
            }
            ChaosEvent::Disconnect { slot } => self.disconnect(slot),
            ChaosEvent::Reconnect { slot } => self.reconnect(slot),
            ChaosEvent::Resize {
                slot,
                viewport_w,
                viewport_h,
            } => self.resize(slot, viewport_w, viewport_h),
            ChaosEvent::Fault {
                slot,
                kind,
                offset_ms,
                len_ms,
                rate_pct,
            } => self.fault(slot, kind, offset_ms, len_ms, rate_pct),
            ChaosEvent::CacheBudget { bytes } => {
                let bytes = bytes.clamp(4 * 1024, 64 * 1024 * 1024);
                self.budget_for_new = bytes;
                self.session.set_cache_budget(Some(bytes));
            }
            ChaosEvent::Draw {
                workload,
                x,
                y,
                w,
                h,
                salt,
            } => self.draw(workload, x, y, w, h, salt),
            ChaosEvent::Flush { epochs, step_ms } => {
                let step = SimDuration::from_millis(u64::from(step_ms.clamp(1, 2_000)));
                for _ in 0..epochs.clamp(1, 64) {
                    self.pump(step);
                }
            }
            ChaosEvent::PoisonFlush { slot } => {
                if let Some(si) = self.live_slot(slot) {
                    let id = self.slots[si].id;
                    self.session.poison_next_flush(id);
                    self.slots[si].poisoned = true;
                }
            }
            ChaosEvent::SabotagePixel { slot } => {
                if let Some(si) = self.live_slot(slot) {
                    // Public-API equivalent of flipping one local
                    // pixel: paint a 1x1 fill the screen never saw.
                    let first = self.slots[si].stream.client().framebuffer().data()[0];
                    let color = if first > 127 {
                        Color::rgb(0, 0, 0)
                    } else {
                        Color::rgb(255, 255, 255)
                    };
                    self.slots[si].stream.client_mut().apply(&Message::Display(
                        DisplayCommand::Sfill {
                            rect: Rect::new(0, 0, 1, 1),
                            color,
                        },
                    ));
                }
            }
            ChaosEvent::ServerCrash => {
                // Crash-consistent takeover: the image is whatever
                // the server held at the instant it died.
                let image = self.session.checkpoint(self.store.screen());
                self.take_over(image, true, "server_crash");
            }
            ChaosEvent::Failover => {
                // Warm-standby takeover from the last quiesce's
                // image — deliberately stale, so resume tokens can
                // be legitimately rejected. Before the first quiesce
                // it degrades to a crash-instant image.
                let (image, live) = match self.last_checkpoint.clone() {
                    Some(image) => (image, false),
                    None => (self.session.checkpoint(self.store.screen()), true),
                };
                self.take_over(image, live, "failover");
            }
            ChaosEvent::Quiesce => self.quiesce(),
        }
    }

    /// Kills the live session and brings up a standby restored from
    /// `image`, then redials every slot. `image_is_live` says the
    /// image was taken at this very instant (a [`ChaosEvent::ServerCrash`]
    /// snapshot), meaning the restored cache ledgers match the client
    /// stores bit-for-bit including recency; a stale image (previous
    /// quiesce) keeps correctness but voids the strict eviction
    /// mirror.
    fn take_over(&mut self, image: Vec<u8>, image_is_live: bool, label: &str) {
        // The standby restores before the old incarnation is torn
        // down; an image that cannot restore is a fidelity violation
        // and the run degrades by keeping the live server (the
        // checkpoint layer's never-panic contract, observed here).
        let restored = match SharedSession::restore(&image) {
            Ok(s) => s,
            Err(e) => {
                self.violation(
                    invariant::FAILOVER,
                    format!("{label}: checkpoint image failed to restore: {e}"),
                );
                return;
            }
        };
        let old_session_id = self.session.session_id();
        // Everything the dead server had already put on the wire
        // still lands; everything merely buffered dies with it (the
        // image carries the buffered state that survives).
        for si in 0..self.slots.len() {
            if self.slots[si].connected {
                self.deliver_held(si);
            }
        }
        self.session = restored;
        self.session.set_time(self.now);
        // Budget changes since the image are runner policy, not
        // session state: re-install so post-takeover attaches mirror
        // their client stores.
        self.session.set_cache_budget(Some(self.budget_for_new));
        // Image clients no slot owns (detached after a stale image
        // was taken) are ghosts the standby drops — they will never
        // redial, and their buffers would otherwise accumulate
        // against links that do not exist.
        let slot_ids: Vec<ClientId> = self.slots.iter().map(|s| s.id).collect();
        for id in self.session.client_ids() {
            if !slot_ids.contains(&id) {
                self.session.detach(id);
            }
        }
        let roster = self.session.client_ids();
        for si in 0..self.slots.len() {
            // Poison armed on the old incarnation died with it, and a
            // quarantine it executed is dropped with the fresh
            // reattach below: the standby starts uncontaminated.
            self.slots[si].poisoned = false;
            if !roster.contains(&self.slots[si].id) {
                // Unknown to the image (quarantined at crash time, or
                // attached after a stale image was taken): the resume
                // token cannot match, so this client reattaches from
                // scratch with a fresh identity.
                self.hard_reattach(si);
                continue;
            }
            if !self.slots[si].connected {
                // Still severed. The standby's liveness tracker, like
                // every restored tracker, starts counting silence at
                // takeover. Pongs the client queued before the crash
                // answered the dead server's pings — routing them to
                // the standby (whose ping counter starts at zero, on
                // a later soft reconnect) would break conservation —
                // and its cache hits predate the standby the same way.
                while self.slots[si].stream.take_pong().is_some() {}
                self.slots[si].pongs_routed = 0;
                self.slots[si].cache_hits_base =
                    self.slots[si].stream.resilience_metrics().cache_hits();
                if !image_is_live {
                    self.slots[si].mirror_intact = false;
                }
                self.slots[si].disconnected_at = Some(self.now);
                continue;
            }
            self.redial(si, old_session_id, image_is_live);
        }
    }

    /// One surviving client redialing the standby: a fresh transport
    /// connection, the resume token presented when the local wire
    /// state allows it, warm or cold per the standby's verdict.
    fn redial(&mut self, si: usize, session_id: u64, image_is_live: bool) {
        let id = self.slots[si].id;
        // A redial is a new connection: fold the dead link's fault
        // counters, then start clean (fault windows were armed on
        // the old connection and died with it).
        self.fold_stats(si);
        if let Some(link) = self.links.iter_mut().find(|l| l.0 == id) {
            link.1 = NetworkConfig::lan_desktop().connect().down;
            link.2 = PacketTrace::new();
        }
        self.slots[si].plan = PlanSpec::default();
        self.slots[si].plan_epoch += 1;
        // Pongs in hand answered pings the dead server sent; the
        // standby's ping counter starts at zero, so routing them
        // would break conservation against a counter that never saw
        // the pings.
        while self.slots[si].stream.take_pong().is_some() {}
        self.slots[si].pongs_routed = 0;
        self.slots[si].cache_hits_base =
            self.slots[si].stream.resilience_metrics().cache_hits();
        // A stale image's ledger recency lags the live store even
        // when the key sets still digest-match, so post-takeover
        // evictions may pick different victims: only a crash-instant
        // image keeps the strict mirror.
        if !image_is_live {
            self.slots[si].mirror_intact = false;
        }
        if self.slots[si].stream.resume() {
            let token = self.slots[si].stream.resume_token(session_id, id.0);
            let Message::SessionResume {
                session_id,
                last_seq,
                store_digest,
                ..
            } = token
            else {
                return; // resume_token always builds SessionResume
            };
            match self
                .session
                .resume_client(session_id, id, store_digest, self.store.screen())
            {
                ResumeOutcome::Warm { .. } => {
                    // The standby adopts the client's sequence stream
                    // and ships only the checkpoint-vs-live delta the
                    // session just queued.
                    self.slots[si]
                        .encoder
                        .set_next_seq(last_seq.wrapping_add(1));
                }
                ResumeOutcome::Cold { .. } => {
                    // Token rejected: the standby answers with a
                    // fresh hello, which settles the client's pending
                    // resume as a cold restart — store cleared to
                    // mirror the reset ledger, full refresh owed.
                    let (vw, vh) = self.slots[si].viewport;
                    self.slots[si].stream.feed(&wire::encode_message(
                        &Message::ServerHello {
                            version: PROTOCOL_VERSION,
                            width: vw,
                            height: vh,
                            depth: 24,
                        },
                    ));
                    self.slots[si].encoder = FrameEncoder::with_revision(PROTOCOL_VERSION);
                }
            }
        } else {
            // Half a frame was stranded in the reader: the client
            // already fell back to a plain cold reconnect and
            // presents no token. The standby treats the redial as a
            // resync request; ledger and store may now disagree, so
            // the strict mirror is off for this incarnation.
            self.session.resync_client(id, self.store.screen());
            self.slots[si].encoder = FrameEncoder::with_revision(PROTOCOL_VERSION);
            self.slots[si].mirror_intact = false;
        }
        self.session.note_client_activity(id, self.now);
    }

    /// Index of `slot` if it exists, is connected and is not
    /// quarantined — the precondition most slot events degrade on.
    fn live_slot(&self, slot: usize) -> Option<usize> {
        let s = self.slots.get(slot)?;
        (s.connected && !self.session.client_quarantined(s.id)).then_some(slot)
    }

    fn fresh_stream(&self, vw: u32, vh: u32, budget: u64) -> StreamClient {
        let mut stream = StreamClient::new(vw, vh, FORMAT)
            .with_cache_budget(budget)
            .with_reconnect_policy(ReconnectPolicy::new(ReconnectConfig {
                seed: self
                    .seed
                    .wrapping_add((self.attaches as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..ReconnectConfig::default()
            }));
        // Handshake: legacy-framed hello upgrades the reader to the
        // session's wire revision, exactly as a real connect would.
        stream.feed(&wire::encode_message(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: vw,
            height: vh,
            depth: 24,
        }));
        stream
    }

    fn attach(&mut self, viewport_w: u32, viewport_h: u32) -> Option<usize> {
        if self.slots.len() >= MAX_SLOTS {
            return None;
        }
        let vw = viewport_w.clamp(1, self.width);
        let vh = viewport_h.clamp(1, self.height);
        self.session.set_time(self.now);
        let id = self.attach_client(vw, vh)?;
        let budget = self.budget_for_new;
        let stream = self.fresh_stream(vw, vh, budget);
        self.links.push((
            id,
            NetworkConfig::lan_desktop().connect().down,
            PacketTrace::new(),
        ));
        self.slots.push(Slot {
            id,
            viewport: (vw, vh),
            budget,
            connected: true,
            disconnected_at: None,
            stream,
            encoder: FrameEncoder::with_revision(PROTOCOL_VERSION),
            plan: PlanSpec::default(),
            plan_epoch: 0,
            accrued_lost: 0,
            accrued_retx: 0,
            mirror_intact: true,
            outage_excused: false,
            poisoned: false,
            pongs_routed: 0,
            cache_hits_base: 0,
        });
        Some(self.slots.len() - 1)
    }

    /// Issues a session client: the first attach is the owner, every
    /// later one a password peer (sharing is enabled at start).
    fn attach_client(&mut self, vw: u32, vh: u32) -> Option<ClientId> {
        let creds = if self.attaches == 0 {
            Credentials::Owner {
                user: "host".into(),
            }
        } else {
            Credentials::Peer {
                user: format!("c{}", self.attaches),
                password: "chaos".into(),
            }
        };
        let id = self.session.attach(&creds, vw, vh).ok()?;
        self.attaches += 1;
        Some(id)
    }

    /// Severs a slot: everything already disturbed onto the wire
    /// still lands, then the link goes down indefinitely, so the
    /// server keeps producing into a buffer that can only evict.
    fn disconnect(&mut self, slot: usize) {
        let Some(si) = self.live_slot(slot) else {
            return;
        };
        if !self.slots[si].connected {
            return;
        }
        self.deliver_held(si);
        self.slots[si].plan.outages.push((self.now, FOREVER));
        self.rearm_plan(si);
        self.slots[si].connected = false;
        self.slots[si].disconnected_at = Some(self.now);
        self.slots[si].outage_excused = true;
    }

    /// Re-establishes a slot. A live client redials softly (fresh
    /// pipe, wire state dropped, display and cache store survive, the
    /// server resyncs); a dead or detached one is reattached from
    /// scratch with a new session client.
    fn reconnect(&mut self, slot: usize) {
        let Some(s) = self.slots.get(slot) else {
            return;
        };
        let id = s.id;
        if self.session.client_quarantined(id) {
            return; // quarantine is terminal by design
        }
        if self.session.client_dead(id) {
            self.hard_reattach(slot);
            return;
        }
        // Soft redial: replace the pipe with a clean one.
        let si = slot;
        self.deliver_held(si);
        self.fold_stats(si);
        if let Some(link) = self.links.iter_mut().find(|l| l.0 == id) {
            link.1 = NetworkConfig::lan_desktop().connect().down;
            link.2 = PacketTrace::new();
        }
        self.slots[si].plan = PlanSpec::default();
        self.slots[si].plan_epoch += 1;
        self.slots[si].connected = true;
        self.slots[si].disconnected_at = None;
        self.slots[si].stream.reconnect();
        self.session.set_time(self.now);
        self.session.note_client_activity(id, self.now);
        self.session.resync_client(id, self.store.screen());
    }

    /// Detaches a slot's session client and issues a brand-new one at
    /// the same viewport: fresh ledger, fresh store, fresh wire state
    /// — the mirror restarts intact.
    fn hard_reattach(&mut self, slot: usize) {
        let old = self.slots[slot].id;
        self.session.detach(old);
        self.links.retain(|l| l.0 != old);
        self.session.set_time(self.now);
        let (vw, vh) = self.slots[slot].viewport;
        let Some(id) = self.attach_client(vw, vh) else {
            return;
        };
        let budget = self.budget_for_new;
        let stream = self.fresh_stream(vw, vh, budget);
        self.links.push((
            id,
            NetworkConfig::lan_desktop().connect().down,
            PacketTrace::new(),
        ));
        let s = &mut self.slots[slot];
        s.id = id;
        s.budget = budget;
        s.connected = true;
        s.disconnected_at = None;
        s.stream = stream;
        s.encoder = FrameEncoder::with_revision(PROTOCOL_VERSION);
        s.plan = PlanSpec::default();
        s.plan_epoch += 1;
        s.accrued_lost = 0;
        s.accrued_retx = 0;
        s.mirror_intact = true;
        s.outage_excused = false;
        s.pongs_routed = 0;
        s.cache_hits_base = 0;
        self.session.note_client_activity(id, self.now);
    }

    /// Mid-session viewport change: the server rescales and owes a
    /// full refresh; the client restarts its display and store at the
    /// new geometry (so the eviction mirror is no longer strict —
    /// misses recover it the slow, checked way).
    fn resize(&mut self, slot: usize, viewport_w: u32, viewport_h: u32) {
        let Some(si) = self.live_slot(slot) else {
            return;
        };
        let vw = viewport_w.clamp(1, self.width);
        let vh = viewport_h.clamp(1, self.height);
        let id = self.slots[si].id;
        self.session.resize_client(id, vw, vh);
        let budget = self.slots[si].budget;
        let stream = self.fresh_stream(vw, vh, budget);
        let s = &mut self.slots[si];
        s.viewport = (vw, vh);
        s.stream = stream;
        s.mirror_intact = false;
    }

    fn fault(&mut self, slot: usize, kind: FaultKind, offset_ms: u32, len_ms: u32, rate_pct: u8) {
        let Some(si) = self.live_slot(slot) else {
            return;
        };
        let start = self.now + SimDuration::from_millis(u64::from(offset_ms.min(60_000)));
        let len = SimDuration::from_millis(u64::from(len_ms.clamp(1, 60_000)));
        let rate = f64::from(rate_pct.clamp(1, 100)) / 100.0;
        {
            let spec = &mut self.slots[si].plan;
            match kind {
                FaultKind::Loss => spec.loss = rate.min(0.5),
                FaultKind::Outage => spec.outages.push((start, len)),
                FaultKind::Collapse => spec.collapses.push((start, len, rate)),
                FaultKind::Corruption => spec.corruptions.push((start, len, rate)),
                FaultKind::Reorder => spec.reorders.push((start, len, rate)),
                FaultKind::Duplicate => spec.dups.push((start, len, rate)),
            }
        }
        if matches!(kind, FaultKind::Outage | FaultKind::Collapse) {
            // Starved links can silence pings past the timeout; a
            // Dead verdict under these windows is expected physics.
            self.slots[si].outage_excused = true;
        }
        self.deliver_held(si);
        self.rearm_plan(si);
    }

    /// Feeds the client anything a reorder window still holds on its
    /// pipe, so a fault-state swap never silently drops bytes.
    fn deliver_held(&mut self, si: usize) {
        let id = self.slots[si].id;
        let Some(link) = self.links.iter_mut().find(|l| l.0 == id) else {
            return;
        };
        if let Some(tail) = link.1.flush_disturbed() {
            if self.slots[si].connected {
                self.slots[si].stream.feed(&tail);
            }
        }
    }

    /// Folds the pipe's fault counters into the slot before the swap
    /// resets them.
    fn fold_stats(&mut self, si: usize) {
        let id = self.slots[si].id;
        if let Some(link) = self.links.iter().find(|l| l.0 == id) {
            let st = link.1.fault_stats();
            self.slots[si].accrued_lost += st.segments_lost;
            self.slots[si].accrued_retx += st.retransmits;
        }
    }

    /// Installs the slot's accumulated plan on its pipe.
    fn rearm_plan(&mut self, si: usize) {
        self.fold_stats(si);
        self.slots[si].plan_epoch += 1;
        let plan = self
            .slots[si]
            .plan
            .build(self.seed, si, self.slots[si].plan_epoch);
        let id = self.slots[si].id;
        if let Some(link) = self.links.iter_mut().find(|l| l.0 == id) {
            link.1.set_fault_plan(plan);
        }
    }

    fn draw(&mut self, workload: Workload, x: i32, y: i32, w: u32, h: u32, salt: u64) {
        let Some(rect) = clamp_rect(x, y, w, h, self.width, self.height) else {
            return;
        };
        match workload {
            Workload::Solid => {
                let c = Color::rgb(salt as u8, (salt >> 8) as u8, (salt >> 16) as u8);
                self.store.screen_mut().fill_rect(&rect, c);
                self.session.solid_fill(&self.store, SCREEN, rect, c);
            }
            Workload::Noise => {
                let data = pattern_bytes(salt | 1, &rect);
                self.store.screen_mut().put_raw(&rect, &data);
                self.session.put_image(&self.store, SCREEN, rect, &data);
            }
            Workload::Tile => {
                // Content depends only on the palette index, so every
                // repeat is byte-identical and the cache sees hits.
                let data = pattern_bytes(0x7115_0000 | (salt % 4), &rect);
                self.store.screen_mut().put_raw(&rect, &data);
                self.session.put_image(&self.store, SCREEN, rect, &data);
            }
            Workload::Scroll => {
                let (clip, data) = self.store.screen().get_raw(&rect);
                if clip.is_empty() {
                    return;
                }
                let dx = (((salt % 17) as i32) - 8)
                    .clamp(-clip.x, self.width as i32 - clip.x - clip.w as i32);
                let dy = ((((salt >> 8) % 13) as i32) - 6)
                    .clamp(-clip.y, self.height as i32 - clip.y - clip.h as i32);
                let dst = Rect::new(clip.x + dx, clip.y + dy, clip.w, clip.h);
                self.store.screen_mut().put_raw(&dst, &data);
                self.session
                    .copy_area(&self.store, SCREEN, SCREEN, clip, dst.x, dst.y);
            }
        }
    }

    /// The sharded flush path: partition the attached clients by the
    /// same stable hash [`thinc_core::ShardedManager`] uses, flush
    /// each shard as a [`SharedSession::flush_subset`] against one
    /// shared encode-once plane, and merge in client-id order. The
    /// determinism contract says this produces the same bytes as
    /// `flush_all` — which is exactly why chaos schedules run it: any
    /// divergence surfaces as a convergence or mirror violation.
    fn flush_sharded(
        &mut self,
        ids: &[ClientId],
        flat: &mut Vec<(TcpPipe, PacketTrace)>,
    ) -> Result<FlushOutput, ChaosError> {
        use thinc_core::{shard_index, WirePlane};
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards];
        for (pos, id) in ids.iter().enumerate() {
            by_shard[shard_index(*id, self.shards)].push(pos);
        }
        // Validate the partition covers every link position exactly
        // once *before* anything moves: a breach returns with `flat`
        // untouched, so the pump can fall back to the monolithic
        // flush with the full link set still intact.
        let mut seen = vec![false; ids.len()];
        for positions in &by_shard {
            for &p in positions {
                if p >= seen.len() || seen[p] {
                    return Err(ChaosError::ShardPartition {
                        detail: format!(
                            "position {p} of {} links assigned more than once (or out of range) across {} shards",
                            ids.len(),
                            self.shards
                        ),
                    });
                }
                seen[p] = true;
            }
        }
        if let Some(p) = seen.iter().position(|s| !s) {
            return Err(ChaosError::ShardPartition {
                detail: format!(
                    "position {p} of {} links never assigned to any of {} shards",
                    ids.len(),
                    self.shards
                ),
            });
        }
        let mut slots: Vec<Option<(TcpPipe, PacketTrace)>> = flat.drain(..).map(Some).collect();
        let plane = WirePlane::new();
        let mut merged = Vec::new();
        for positions in &mut by_shard {
            if positions.is_empty() {
                continue;
            }
            // flush_subset wants ids ascending, links in step.
            positions.sort_by_key(|&p| ids[p]);
            let mut taken = Vec::with_capacity(positions.len());
            let mut shard_ids = Vec::with_capacity(positions.len());
            let mut shard_links: Vec<(TcpPipe, PacketTrace)> =
                Vec::with_capacity(positions.len());
            for &p in positions.iter() {
                match slots[p].take() {
                    Some(link) => {
                        taken.push(p);
                        shard_ids.push(ids[p]);
                        shard_links.push(link);
                    }
                    None => {
                        // Unreachable after the cover check above;
                        // degrade to a skipped epoch for this client
                        // instead of tearing down the soak.
                        let e = ChaosError::LinkLost {
                            detail: format!(
                                "position {p} (client {}) consumed twice; client skips this epoch",
                                ids[p].0
                            ),
                        };
                        self.violation(invariant::RUNNER, e.to_string());
                    }
                }
            }
            if shard_ids.is_empty() {
                continue;
            }
            let (out, _) =
                self.session
                    .flush_subset(self.now, &shard_ids, &mut shard_links, Some(&plane));
            for (&p, link) in taken.iter().zip(shard_links) {
                slots[p] = Some(link);
            }
            merged.extend(out);
        }
        for (p, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(link) => flat.push(link),
                None => {
                    // Also unreachable in a correct harness: keep the
                    // roster/link pairing aligned with a fresh clean
                    // pipe rather than panicking mid-run.
                    let e = ChaosError::LinkLost {
                        detail: format!(
                            "position {p} (client {}) never returned by its shard; replaced with a clean pipe",
                            ids[p].0
                        ),
                    };
                    self.violation(invariant::RUNNER, e.to_string());
                    flat.push((
                        NetworkConfig::lan_desktop().connect().down,
                        PacketTrace::new(),
                    ));
                }
            }
        }
        merged.sort_by_key(|(id, _)| *id);
        Ok(merged)
    }

    /// One delivery round: advance virtual time, flush every client
    /// over its (possibly faulty) pipe, run the bytes through the
    /// disturbance model into each stream client, and route upstream
    /// traffic (pongs, cache misses, refresh requests) back into the
    /// session. Liveness is polled for every slot so probes queue and
    /// verdicts advance.
    fn pump(&mut self, step: SimDuration) {
        self.now += step;
        self.session.set_time(self.now);
        let ids: Vec<ClientId> = self.links.iter().map(|l| l.0).collect();
        let mut flat: Vec<(TcpPipe, PacketTrace)> =
            self.links.drain(..).map(|l| (l.1, l.2)).collect();
        let out = if self.shards > 1 {
            match self.flush_sharded(&ids, &mut flat) {
                Ok(out) => out,
                Err(e) => {
                    // The partition breached with the links untouched:
                    // record it and fall back to the monolithic path
                    // so the epoch still delivers.
                    self.violation(invariant::RUNNER, e.to_string());
                    self.session.flush_all(self.now, &mut flat)
                }
            }
        } else {
            self.session.flush_all(self.now, &mut flat)
        };
        self.links = ids
            .into_iter()
            .zip(flat)
            .map(|(id, (p, t))| (id, p, t))
            .collect();
        for (id, msgs) in out {
            let Some(si) = self.slots.iter().position(|s| s.id == id) else {
                continue;
            };
            if !self.slots[si].connected {
                continue;
            }
            let slot = &mut self.slots[si];
            let Some(link) = self.links.iter_mut().find(|l| l.0 == id) else {
                continue;
            };
            if msgs.is_empty() {
                // Idle round: release anything a reorder window still
                // holds so a quiet link never strands bytes.
                if let Some(tail) = link.1.flush_disturbed() {
                    slot.stream.feed(&tail);
                }
            } else {
                for (arrival, msg) in msgs {
                    let bytes = slot.encoder.encode(&msg);
                    for seg in link.1.disturb(arrival, bytes) {
                        slot.stream.feed(&seg);
                    }
                }
            }
        }
        for si in 0..self.slots.len() {
            let id = self.slots[si].id;
            let _ = self.session.poll_client_liveness(id, self.now);
            if !self.slots[si].connected {
                continue;
            }
            while let Some(pong) = self.slots[si].stream.take_pong() {
                if let Message::Pong { seq, .. } = pong {
                    self.session.note_client_pong(id, seq, self.now);
                    self.slots[si].pongs_routed += 1;
                }
            }
            while let Some(miss) = self.slots[si].stream.take_cache_miss() {
                if let Message::CacheMiss { hash } = miss {
                    self.slots[si].mirror_intact = false;
                    self.session.client_cache_miss(id, hash);
                    self.session.note_client_activity(id, self.now);
                }
            }
            if self.slots[si].stream.poll_reconnect(self.now).is_some() {
                self.session.resync_client(id, self.store.screen());
                self.session.note_client_activity(id, self.now);
            }
            // Wire damage voids the strict eviction mirror for this
            // client incarnation: lost or skipped frames mean inserts
            // the ledger saw and the store did not.
            let m = self.slots[si].stream.resilience_metrics();
            if m.decode_errors() > 0 || m.crc_failures() > 0 || m.seq_gaps() > 0 {
                self.slots[si].mirror_intact = false;
            }
        }
        self.check_buffer_bounds();
    }

    /// The always-on invariant: buffered bytes stay within the bound
    /// plus one full frame of repay slack, at *every* pump.
    fn check_buffer_bounds(&mut self) {
        if self.buffer_bound_flagged {
            return;
        }
        let slack = u64::from(self.width) * u64::from(self.height) * 3 + 512;
        for si in 0..self.slots.len() {
            let id = self.slots[si].id;
            let Some(bound) = self.session.client_effective_byte_bound(id) else {
                continue;
            };
            let pending = self.session.client_pending_bytes(id);
            if pending > bound + slack {
                self.buffer_bound_flagged = true;
                self.violation(
                    invariant::BUFFER_BOUND,
                    format!(
                        "slot {si}: {pending} buffered bytes exceed bound {bound} (+{slack} slack) at t={}us",
                        self.now.0
                    ),
                );
                return;
            }
        }
    }

    /// Drains the system to a settled state and evaluates the whole
    /// invariant catalog.
    fn quiesce(&mut self) {
        self.quiesces += 1;
        // 1. Run out every armed fault window (disconnected slots'
        // indefinite outages excluded — those never end).
        let mut horizon = SimTime(0);
        for s in &self.slots {
            if s.connected {
                horizon = horizon.max(s.plan.windows_end());
            }
        }
        let target = horizon.max(self.now) + SimDuration::from_millis(50);
        while self.now < target {
            let remaining = SimDuration(target.0 - self.now.0);
            self.pump(remaining.min(RUNOUT_STEP));
        }
        // 2. Swap every connected slot to a clean plan.
        for si in 0..self.slots.len() {
            if self.slots[si].connected && !self.slots[si].plan.is_clean() {
                self.deliver_held(si);
                self.slots[si].plan = PlanSpec::default();
                self.rearm_plan(si);
            }
        }
        // 3. A connected slot starved dead by its own fault windows
        // is revived by a full reattach (the tracker's Dead verdict
        // latches by design). Unexcused death is a liveness bug.
        for si in 0..self.slots.len() {
            let id = self.slots[si].id;
            if self.slots[si].connected
                && !self.session.client_quarantined(id)
                && self.session.client_dead(id)
            {
                if !self.slots[si].outage_excused {
                    self.violation(
                        invariant::LIVENESS,
                        format!("slot {si}: connected client declared dead with no outage armed"),
                    );
                }
                self.hard_reattach(si);
            }
        }
        // 4. Settle: repay refresh debt and pump until every healthy
        // client has nothing owed, nothing queued and nothing stale.
        let mut settled = false;
        for _ in 0..MAX_SETTLE {
            let screen = self.store.screen().clone();
            self.session.repay_refreshes(&screen);
            self.pump(SETTLE_STEP);
            if self.is_settled() {
                settled = true;
                break;
            }
        }
        if !settled {
            let detail = self.debt_detail();
            self.violation(invariant::REFRESH_DEBT, detail);
        }
        // 5. Scaled viewports converge per-resync, not per-command:
        // incremental scaled fills can differ from the one-shot
        // scaled snapshot by edge rounding, so the contract (set by
        // the device-switch path) is byte-exactness *after a resync*.
        // Identity clients skip this and are held to raw incremental
        // exactness — which is why the sabotage hook targets them.
        let mut resynced = false;
        for s in &self.slots {
            if s.connected
                && !self.session.client_quarantined(s.id)
                && s.viewport != (self.width, self.height)
            {
                self.session.resync_client(s.id, self.store.screen());
                resynced = true;
            }
        }
        if resynced {
            for _ in 0..MAX_SETTLE {
                self.pump(SETTLE_STEP);
                if self.is_settled() {
                    break;
                }
            }
        }
        // 6. Evaluate the checkpoint invariants.
        self.check_liveness();
        self.check_convergence();
        self.check_cache_coherence();
        self.check_telemetry();
        self.check_quarantine();
        self.check_failover_fidelity();
        // 7. The drained system starts the next epoch unexcused.
        for s in &mut self.slots {
            s.outage_excused = false;
        }
    }

    fn is_settled(&self) -> bool {
        self.slots.iter().all(|s| {
            !s.connected
                || self.session.client_quarantined(s.id)
                || (self.session.backlog(s.id) == 0
                    && !self.session.client_refresh_owed(s.id)
                    && !self.session.client_has_overflow_debt(s.id)
                    && self.session.client_fallbacks_pending(s.id) == 0
                    && !s.stream.needs_refresh()
                    // Undecoded bytes in the reader are work in
                    // flight — or a wedged frame the stall watchdog
                    // has yet to clear. Either way, keep pumping.
                    && s.stream.pending_bytes() == 0
                    // A degraded client is served subsampled frames;
                    // only a ladder back at Full can converge
                    // byte-exact. Clean settle pumps are healthy
                    // epochs, so promotion is a matter of iterations.
                    && self.session.client_degradation_level(s.id) == DegradationLevel::Full)
        })
    }

    fn debt_detail(&self) -> String {
        let mut parts = Vec::new();
        for (si, s) in self.slots.iter().enumerate() {
            if !s.connected || self.session.client_quarantined(s.id) {
                continue;
            }
            let backlog = self.session.backlog(s.id);
            let owed = self.session.client_refresh_owed(s.id);
            let debt = self.session.client_has_overflow_debt(s.id);
            let fb = self.session.client_fallbacks_pending(s.id);
            let stale = s.stream.needs_refresh();
            let pending = s.stream.pending_bytes();
            let level = self.session.client_degradation_level(s.id);
            if backlog != 0
                || owed
                || debt
                || fb != 0
                || stale
                || pending != 0
                || level != DegradationLevel::Full
            {
                parts.push(format!(
                    "slot {si}: backlog={backlog} owed={owed} overflow={debt} fallbacks={fb} stale={stale} pending={pending} level={level:?}"
                ));
            }
        }
        format!(
            "debt still outstanding after {} settle pumps: {}",
            MAX_SETTLE,
            parts.join("; ")
        )
    }

    fn check_liveness(&mut self) {
        let mut found = Vec::new();
        for (si, s) in self.slots.iter().enumerate() {
            if self.session.client_quarantined(s.id) {
                continue;
            }
            let dead = self.session.client_dead(s.id);
            if s.connected && dead {
                found.push(format!(
                    "slot {si}: connected client still dead after quiesce settle"
                ));
            }
            if !s.connected {
                let long_gone = s
                    .disconnected_at
                    .map(|t| self.now.since(t) > LIVENESS_TIMEOUT)
                    .unwrap_or(false);
                if long_gone && !dead {
                    found.push(format!(
                        "slot {si}: disconnected past the timeout but not declared dead"
                    ));
                }
            }
        }
        for d in found {
            self.violation(invariant::LIVENESS, d);
        }
    }

    fn check_convergence(&mut self) {
        let mut found = Vec::new();
        for (si, s) in self.slots.iter().enumerate() {
            if !s.connected || self.session.client_quarantined(s.id) {
                continue;
            }
            let fb = s.stream.client().framebuffer();
            let (vw, vh) = s.viewport;
            let expected = if (vw, vh) == (self.width, self.height) {
                self.store.screen().data().to_vec()
            } else {
                self.scaled_reference(vw, vh)
            };
            if fb.data() != expected.as_slice() {
                let diff = fb
                    .data()
                    .iter()
                    .zip(&expected)
                    .filter(|(a, b)| a != b)
                    .count();
                let m = s.stream.resilience_metrics();
                found.push(format!(
                    "slot {si}: framebuffer diverges from the screen in {diff} byte(s) ({}x{} viewport) \
                     [stale={} pending={} crc={} gaps={} decode_err={} resyncs={}]",
                    vw,
                    vh,
                    s.stream.needs_refresh(),
                    s.stream.pending_bytes(),
                    m.crc_failures(),
                    m.seq_gaps(),
                    m.decode_errors(),
                    m.stream_resyncs(),
                ));
            }
        }
        for d in found {
            self.violation(invariant::CONVERGENCE, d);
        }
    }

    /// What a scaled client must hold: the authoritative screen
    /// pushed through the slot's scale policy in one shot.
    fn scaled_reference(&self, vw: u32, vh: u32) -> Vec<u8> {
        let screen = self.store.screen();
        let (clip, data) = screen.get_raw(&Rect::new(0, 0, self.width, self.height));
        let snapshot = DisplayCommand::Raw {
            rect: clip,
            encoding: RawEncoding::None,
            data: data.into(),
        };
        let mut reference = ThincClient::new(vw, vh, FORMAT);
        if let Some(cmd) =
            ScalePolicy::new(self.width, self.height, vw, vh).transform(&snapshot, screen)
        {
            reference.apply(&Message::Display(cmd));
        }
        reference.framebuffer().data().to_vec()
    }

    fn check_cache_coherence(&mut self) {
        let mut found = Vec::new();
        for (si, s) in self.slots.iter().enumerate() {
            if !s.connected || self.session.client_quarantined(s.id) {
                continue;
            }
            if s.mirror_intact {
                let ledger = self.session.client_cache_keys(s.id);
                let store = s.stream.cache_keys();
                if ledger != store {
                    found.push(format!(
                        "slot {si}: ledger holds {} key(s), store {} — lockstep eviction broke on an undamaged wire",
                        ledger.len(),
                        store.len()
                    ));
                }
            }
            // Conservation holds even through damage: a client can
            // only resolve references the server actually sent. A
            // failover resets the server's counters, so the check is
            // per server incarnation — hits above the baseline
            // recorded at redial, against refs the standby served.
            let client_hits = s
                .stream
                .resilience_metrics()
                .cache_hits()
                .saturating_sub(s.cache_hits_base);
            let refs_served = self
                .session
                .client_resilience(s.id)
                .map(|m| m.cache_hits())
                .unwrap_or(0);
            if client_hits > refs_served {
                found.push(format!(
                    "slot {si}: client resolved {client_hits} cache refs but the server only sent {refs_served}"
                ));
            }
        }
        for d in found {
            self.violation(invariant::CACHE_COHERENCE, d);
        }
    }

    fn check_telemetry(&mut self) {
        let mut found = Vec::new();
        for (si, s) in self.slots.iter().enumerate() {
            let m = s.stream.resilience_metrics();
            if m.resyncs_triggered() > m.seq_gaps() {
                found.push(format!(
                    "slot {si}: {} gap-triggered resyncs but only {} sequence gaps",
                    m.resyncs_triggered(),
                    m.seq_gaps()
                ));
            }
            if m.stream_resyncs() != m.decode_errors() {
                found.push(format!(
                    "slot {si}: {} stream resyncs vs {} decode errors — each error must resync exactly once",
                    m.stream_resyncs(),
                    m.decode_errors()
                ));
            }
            if let Some(link) = self.links.iter().find(|l| l.0 == s.id) {
                let st = link.1.fault_stats();
                let lost = s.accrued_lost + st.segments_lost;
                let retx = s.accrued_retx + st.retransmits;
                if lost != retx {
                    found.push(format!(
                        "slot {si}: {lost} segments lost vs {retx} retransmits — loss accounting leaked"
                    ));
                }
            }
            let pings = self
                .session
                .client_resilience(s.id)
                .map(|m| m.pings_sent())
                .unwrap_or(0);
            if s.pongs_routed > pings {
                found.push(format!(
                    "slot {si}: routed {} pongs upstream but the server only sent {pings} pings",
                    s.pongs_routed
                ));
            }
        }
        for d in found {
            self.violation(invariant::TELEMETRY, d);
        }
    }

    /// Failover-fidelity at quiesce: the settled system's checkpoint
    /// image restores, and re-checkpointing the restored standby
    /// against the same screen reproduces the image byte-for-byte.
    /// The surviving image becomes the warm standby's state for the
    /// next [`ChaosEvent::Failover`].
    fn check_failover_fidelity(&mut self) {
        let image = self.session.checkpoint(self.store.screen());
        match SharedSession::restore(&image) {
            Ok(restored) => {
                let again = restored.checkpoint(self.store.screen());
                if again != image {
                    self.violation(
                        invariant::FAILOVER,
                        format!(
                            "checkpoint does not round-trip: {}-byte image re-encodes to {} bytes (or differs in content)",
                            image.len(),
                            again.len()
                        ),
                    );
                }
            }
            Err(e) => {
                self.violation(
                    invariant::FAILOVER,
                    format!("settled session checkpoint failed to restore: {e}"),
                );
            }
        }
        self.last_checkpoint = Some(image);
    }

    fn check_quarantine(&mut self) {
        let mut found = Vec::new();
        let mut expected = 0usize;
        for (si, s) in self.slots.iter().enumerate() {
            let q = self.session.client_quarantined(s.id);
            let panics = self
                .session
                .client_resilience(s.id)
                .map(|m| m.panics_quarantined())
                .unwrap_or(0);
            if s.poisoned {
                expected += 1;
                if !q {
                    found.push(format!(
                        "slot {si}: flush was poisoned but the client was never quarantined"
                    ));
                }
                if panics != 1 {
                    found.push(format!(
                        "slot {si}: quarantine recorded {panics} panic(s), expected exactly 1"
                    ));
                }
            } else {
                if q {
                    found.push(format!(
                        "slot {si}: quarantined without a poisoned flush — containment leaked"
                    ));
                }
                if panics != 0 {
                    found.push(format!(
                        "slot {si}: {panics} panic(s) recorded on a healthy client"
                    ));
                }
            }
        }
        let actual = self.session.quarantined_count();
        if actual != expected {
            found.push(format!(
                "session reports {actual} quarantined client(s), schedule poisoned {expected}"
            ));
        }
        for d in found {
            self.violation(invariant::QUARANTINE, d);
        }
    }
}

/// Clips an event rectangle into the screen; `None` when nothing of
/// it can land (events are removal-tolerant, not panicky).
fn clamp_rect(x: i32, y: i32, w: u32, h: u32, sw: u32, sh: u32) -> Option<Rect> {
    if sw == 0 || sh == 0 {
        return None;
    }
    let x = x.clamp(0, sw as i32 - 1);
    let y = y.clamp(0, sh as i32 - 1);
    let w = w.clamp(1, (sw as i32 - x) as u32);
    let h = h.clamp(1, (sh as i32 - y) as u32);
    Some(Rect::new(x, y, w, h))
}

/// Deterministic pixel payload for a rect: `seed` alone selects the
/// bytes, so equal (seed, size) pairs repeat byte-identically.
fn pattern_bytes(seed: u64, rect: &Rect) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ 0x005E_ED0F_BEEF);
    (0..(rect.w as usize * rect.h as usize * 3))
        .map(|_| (rng.next_u64() >> 24) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Schedule;

    #[test]
    fn empty_schedule_passes_its_final_quiesce() {
        let report = run(&Schedule::base(1));
        assert!(report.passed(), "{}", report.summary());
        assert_eq!(report.quiesces, 1);
        assert_eq!(report.slots_attached, 0);
    }

    #[test]
    fn single_client_draw_converges() {
        let s = Schedule::base(2).with_events(vec![
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Draw {
                workload: Workload::Noise,
                x: 4,
                y: 4,
                w: 40,
                h: 30,
                salt: 77,
            },
            ChaosEvent::Flush {
                epochs: 3,
                step_ms: 50,
            },
            ChaosEvent::Quiesce,
        ]);
        let report = run(&s);
        assert!(report.passed(), "{}", report.summary());
        assert_eq!(report.slots_attached, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let s = crate::generate::generate(0xDECAF, 40);
        let a = run(&s);
        let b = run(&s);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.quiesces, b.quiesces);
        assert_eq!(a.slots_attached, b.slots_attached);
    }

    #[test]
    fn server_crash_mid_traffic_converges() {
        let s = Schedule::base(11).with_events(vec![
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Draw {
                workload: Workload::Noise,
                x: 0,
                y: 0,
                w: 48,
                h: 32,
                salt: 5,
            },
            ChaosEvent::Flush {
                epochs: 2,
                step_ms: 40,
            },
            // Crash with more drawn than flushed: the image carries
            // the undelivered buffers and the standby must finish the
            // delivery without re-sending what already landed.
            ChaosEvent::Draw {
                workload: Workload::Tile,
                x: 0,
                y: 0,
                w: 32,
                h: 16,
                salt: 1,
            },
            ChaosEvent::ServerCrash,
            ChaosEvent::Flush {
                epochs: 3,
                step_ms: 40,
            },
            ChaosEvent::Draw {
                workload: Workload::Solid,
                x: 8,
                y: 8,
                w: 20,
                h: 20,
                salt: 0x00FF_8800,
            },
            ChaosEvent::Quiesce,
        ]);
        let report = run(&s);
        assert!(report.passed(), "{}", report.summary());
        assert_eq!(report.slots_attached, 2);
    }

    #[test]
    fn failover_from_stale_quiesce_image_converges() {
        let s = Schedule::base(12).with_events(vec![
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Draw {
                workload: Workload::Tile,
                x: 0,
                y: 0,
                w: 32,
                h: 16,
                salt: 2,
            },
            ChaosEvent::Flush {
                epochs: 2,
                step_ms: 50,
            },
            // Arms last_checkpoint with a settled image...
            ChaosEvent::Quiesce,
            // ...then diverges live state from it before failing over,
            // so the standby must recover the gap via the tile delta
            // (warm) or a digest-mismatch cold fallback.
            ChaosEvent::Draw {
                workload: Workload::Noise,
                x: 10,
                y: 10,
                w: 40,
                h: 24,
                salt: 9,
            },
            ChaosEvent::Flush {
                epochs: 2,
                step_ms: 50,
            },
            ChaosEvent::Failover,
            ChaosEvent::Flush {
                epochs: 3,
                step_ms: 50,
            },
            ChaosEvent::Quiesce,
        ]);
        let report = run(&s);
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn failover_before_any_quiesce_degrades_to_crash_image() {
        let s = Schedule::base(13).with_events(vec![
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Draw {
                workload: Workload::Solid,
                x: 0,
                y: 0,
                w: 64,
                h: 48,
                salt: 0x0012_3456,
            },
            ChaosEvent::Failover,
            ChaosEvent::Flush {
                epochs: 2,
                step_ms: 50,
            },
            ChaosEvent::Quiesce,
        ]);
        let report = run(&s);
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn crash_with_severed_and_scaled_clients_converges() {
        let s = Schedule::base(14).with_events(vec![
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Attach {
                viewport_w: 32,
                viewport_h: 24,
            },
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Draw {
                workload: Workload::Noise,
                x: 0,
                y: 0,
                w: 60,
                h: 40,
                salt: 31,
            },
            ChaosEvent::Flush {
                epochs: 2,
                step_ms: 50,
            },
            // Slot 2 is severed across the crash: it must stay
            // severed on the standby and be declared dead once its
            // silence outlives the timeout.
            ChaosEvent::Disconnect { slot: 2 },
            ChaosEvent::ServerCrash,
            ChaosEvent::Draw {
                workload: Workload::Tile,
                x: 32,
                y: 0,
                w: 32,
                h: 16,
                salt: 3,
            },
            ChaosEvent::Flush {
                epochs: 40,
                step_ms: 100,
            },
            ChaosEvent::Quiesce,
        ]);
        let report = run(&s);
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn back_to_back_takeovers_survive() {
        let s = Schedule::base(15).with_events(vec![
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Draw {
                workload: Workload::Noise,
                x: 0,
                y: 0,
                w: 32,
                h: 32,
                salt: 7,
            },
            ChaosEvent::ServerCrash,
            ChaosEvent::ServerCrash,
            ChaosEvent::Flush {
                epochs: 2,
                step_ms: 50,
            },
            ChaosEvent::Failover,
            ChaosEvent::Quiesce,
        ]);
        let report = run(&s);
        assert!(report.passed(), "{}", report.summary());
    }

    #[test]
    fn crash_runs_are_deterministic_across_shard_counts() {
        let mut s = Schedule::base(16).with_events(vec![
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Attach {
                viewport_w: 64,
                viewport_h: 48,
            },
            ChaosEvent::Attach {
                viewport_w: 32,
                viewport_h: 24,
            },
            ChaosEvent::Draw {
                workload: Workload::Noise,
                x: 2,
                y: 2,
                w: 50,
                h: 40,
                salt: 21,
            },
            ChaosEvent::Flush {
                epochs: 2,
                step_ms: 40,
            },
            ChaosEvent::ServerCrash,
            ChaosEvent::Draw {
                workload: Workload::Tile,
                x: 0,
                y: 24,
                w: 32,
                h: 16,
                salt: 2,
            },
            ChaosEvent::Flush {
                epochs: 2,
                step_ms: 40,
            },
            ChaosEvent::Failover,
            ChaosEvent::Quiesce,
        ]);
        for shards in [1usize, 2, 8] {
            for workers in [1usize, 4] {
                s.shards = shards;
                s.workers = workers;
                let report = run(&s);
                assert!(
                    report.passed(),
                    "shards={shards} workers={workers}: {}",
                    report.summary()
                );
            }
        }
    }
}
