//! Seeded schedule generation.
//!
//! [`generate`] expands a single `u64` seed into a full
//! [`Schedule`]: every choice — event kinds, slots, rectangles,
//! fault windows, budgets — is drawn from one SplitMix64 stream, so
//! the seed alone reproduces the schedule bit-exactly on any
//! machine. Only recoverable chaos is generated; the deliberate
//! violation hooks ([`ChaosEvent::PoisonFlush`],
//! [`ChaosEvent::SabotagePixel`]) are reserved for tests and the
//! CLI, never drawn here — a generated schedule that fails an
//! invariant is a genuine bug.

use crate::event::{ChaosEvent, FaultKind, Schedule, Workload};
use thinc_net::fault::SplitMix64;

/// Upper bound on concurrently attached clients per run.
pub const MAX_SLOTS: usize = 4;

/// The fixed rectangle palette the `Tile` workload draws from:
/// repeated (position, size) pairs produce byte-identical RAW
/// payloads, which is what gives the content cache real work.
const TILE_RECTS: [(i32, i32, u32, u32); 4] = [
    (0, 0, 32, 16),
    (32, 0, 32, 16),
    (0, 24, 32, 16),
    (16, 8, 32, 16),
];

fn pick(rng: &mut SplitMix64, bound: u64) -> u64 {
    rng.next_u64() % bound.max(1)
}

/// Expands `seed` into a schedule of roughly `n_events` events.
///
/// The first event is always an identity-viewport
/// [`ChaosEvent::Attach`] so even heavily shrunk subsequences keep a
/// client to converge; a [`ChaosEvent::Quiesce`] is appended at the
/// end (the runner would add one anyway, but keeping it in the
/// artifact makes replays self-contained).
pub fn generate(seed: u64, n_events: usize) -> Schedule {
    let mut rng = SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
    let mut s = Schedule::base(seed);
    let (w, h) = (s.width, s.height);

    // Generator-side mirror of slot population; the runner tolerates
    // dangling references, this just keeps schedules plausible.
    let mut slots: usize = 0;

    s.events.push(ChaosEvent::Attach {
        viewport_w: w,
        viewport_h: h,
    });
    slots += 1;

    while s.events.len() < n_events.max(2) {
        let roll = pick(&mut rng, 100);
        let ev = match roll {
            // Draws dominate: the invariants only bite when there is
            // display state to corrupt.
            0..=39 => {
                let workload = match pick(&mut rng, 10) {
                    0..=2 => Workload::Solid,
                    3..=5 => Workload::Noise,
                    6..=8 => Workload::Tile,
                    _ => Workload::Scroll,
                };
                let salt = rng.next_u64();
                let (x, y, rw, rh) = match workload {
                    // Tiles come from the fixed palette so payload
                    // bytes repeat and CacheRefs actually fire.
                    Workload::Tile => TILE_RECTS[(salt % 4) as usize],
                    _ => {
                        let rw = 8 + pick(&mut rng, (w / 2) as u64) as u32;
                        let rh = 8 + pick(&mut rng, (h / 2) as u64) as u32;
                        let x = pick(&mut rng, (w.saturating_sub(rw)).max(1) as u64) as i32;
                        let y = pick(&mut rng, (h.saturating_sub(rh)).max(1) as u64) as i32;
                        (x, y, rw, rh)
                    }
                };
                ChaosEvent::Draw {
                    workload,
                    x,
                    y,
                    w: rw,
                    h: rh,
                    salt,
                }
            }
            40..=64 => ChaosEvent::Flush {
                epochs: 1 + pick(&mut rng, 4) as u32,
                step_ms: 20 + pick(&mut rng, 60) as u32,
            },
            65..=74 => {
                let kind = match pick(&mut rng, 6) {
                    0 => FaultKind::Loss,
                    1 => FaultKind::Outage,
                    2 => FaultKind::Collapse,
                    3 => FaultKind::Corruption,
                    4 => FaultKind::Reorder,
                    _ => FaultKind::Duplicate,
                };
                let rate_pct = match kind {
                    FaultKind::Loss => 2 + pick(&mut rng, 8) as u8,
                    FaultKind::Collapse => 5 + pick(&mut rng, 15) as u8,
                    FaultKind::Outage => 100,
                    _ => 10 + pick(&mut rng, 40) as u8,
                };
                ChaosEvent::Fault {
                    slot: pick(&mut rng, slots as u64) as usize,
                    kind,
                    offset_ms: pick(&mut rng, 80) as u32,
                    // Windows stay well under the liveness timeout so
                    // a connected-but-faulted client is never falsely
                    // declared dead.
                    len_ms: 50 + pick(&mut rng, 350) as u32,
                    rate_pct,
                }
            }
            75..=79 => {
                if slots >= MAX_SLOTS {
                    continue;
                }
                slots += 1;
                // Mostly identity viewports; occasionally a half-size
                // one to route the run through the scaling path.
                if pick(&mut rng, 5) == 0 {
                    ChaosEvent::Attach {
                        viewport_w: w / 2,
                        viewport_h: h / 2,
                    }
                } else {
                    ChaosEvent::Attach {
                        viewport_w: w,
                        viewport_h: h,
                    }
                }
            }
            80..=84 => ChaosEvent::Disconnect {
                slot: pick(&mut rng, slots as u64) as usize,
            },
            85..=89 => ChaosEvent::Reconnect {
                slot: pick(&mut rng, slots as u64) as usize,
            },
            90..=92 => {
                let half = pick(&mut rng, 2) == 0;
                ChaosEvent::Resize {
                    slot: pick(&mut rng, slots as u64) as usize,
                    viewport_w: if half { w / 2 } else { w },
                    viewport_h: if half { h / 2 } else { h },
                }
            }
            93..=94 => ChaosEvent::CacheBudget {
                bytes: [64 * 1024u64, 128 * 1024, 256 * 1024][pick(&mut rng, 3) as usize],
            },
            // Crash/failover stays rare: each one is a full
            // checkpoint-restore-redial cycle, and the interesting
            // bugs live in the traffic around it, not in back-to-back
            // takeovers.
            95 => ChaosEvent::ServerCrash,
            96 => ChaosEvent::Failover,
            _ => ChaosEvent::Quiesce,
        };
        s.events.push(ev);
    }
    s.events.push(ChaosEvent::Quiesce);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate(1234, 60);
        let b = generate(1234, 60);
        assert_eq!(a, b);
        let c = generate(1235, 60);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn starts_with_attach_and_ends_with_quiesce() {
        for seed in [0, 7, 42, u64::MAX] {
            let s = generate(seed, 30);
            assert!(matches!(s.events[0], ChaosEvent::Attach { .. }));
            assert_eq!(*s.events.last().unwrap(), ChaosEvent::Quiesce);
            assert!(s.events.len() >= 30);
        }
    }

    #[test]
    fn never_generates_violation_hooks() {
        for seed in 0..20u64 {
            let s = generate(seed, 80);
            assert!(!s.events.iter().any(|e| matches!(
                e,
                ChaosEvent::PoisonFlush { .. } | ChaosEvent::SabotagePixel { .. }
            )));
        }
    }
}
