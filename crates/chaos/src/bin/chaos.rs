//! The `chaos` CLI: generate, run, soak, replay and emit chaos
//! schedules against the THINC virtual display stack.
//!
//! ```text
//! chaos gen    --seed N [--events N]            print a generated schedule as JSON
//! chaos run    --seed N [--events N] [--workers N] [--shards N] [--out FILE]
//!              [--schedule FILE]                run one seed (or a schedule file);
//!                                               on failure shrink and write a
//!                                               minimized repro artifact
//! chaos soak   [--seeds a,b,..] [--workers a,b,..] [--shards a,b,..] [--events N]
//!              [--out-dir DIR]                  run a seed x worker x shard matrix
//! chaos replay FILE                             re-run a schedule artifact; exit 0
//!                                               iff the outcome matches its
//!                                               expect_violation field
//! chaos emit   NAME                             print a checked-in exemplar schedule
//!                                               (quarantine | sabotage | length-stall |
//!                                               cache-rescale | crash-failover)
//! ```
//!
//! Every run is virtual-time, seeded and deterministic: the same
//! invocation prints the same verdicts on any machine.

use thinc_chaos::event::{ChaosEvent, Schedule, Workload};
use thinc_chaos::{generate, invariant, run, schedule_from_json, schedule_to_json, shrink};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("emit") => cmd_emit(&args[1..]),
        _ => {
            eprintln!(
                "usage: chaos <gen|run|soak|replay|emit> [options]\n\
                 invariants: {}",
                invariant::ALL.join(", ")
            );
            2
        }
    };
    std::process::exit(code);
}

/// Pulls `--name value` out of an option list (last wins).
fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    let mut found = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            found = it.next().map(String::as_str);
        }
    }
    found
}

fn opt_u64(args: &[String], name: &str, default: u64) -> u64 {
    opt(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads and parses a schedule artifact, mapping either failure to a
/// one-line diagnostic naming the path and the cause — the shared
/// front door for every subcommand that takes a schedule file, so a
/// missing or corrupt artifact is always a clean nonzero exit, never
/// a panic.
fn load_schedule(path: &str) -> Result<Schedule, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    schedule_from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_gen(args: &[String]) -> i32 {
    let seed = opt_u64(args, "--seed", 1);
    let events = opt_u64(args, "--events", 60) as usize;
    println!("{}", schedule_to_json(&generate(seed, events)));
    0
}

/// Runs one schedule; on failure shrinks the first violated
/// invariant and writes the minimized artifact.
fn run_and_report(schedule: &Schedule, artifact: Option<&std::path::Path>) -> bool {
    let report = run(schedule);
    println!(
        "seed {} workers {} shards {}: {}",
        schedule.seed,
        schedule.workers,
        schedule.shards,
        report.summary()
    );
    if report.passed() {
        return true;
    }
    for v in &report.violations {
        println!("  {v}");
    }
    let failing = report.violations[0].invariant.clone();
    eprintln!("shrinking against [{failing}]...");
    let minimal = shrink(schedule, &failing);
    eprintln!(
        "minimized to {} event(s): {:?}",
        minimal.events.len(),
        minimal.events.iter().map(|e| e.tag()).collect::<Vec<_>>()
    );
    let json = schedule_to_json(&minimal);
    match artifact {
        Some(path) => match std::fs::write(path, &json) {
            Ok(()) => eprintln!("repro artifact written to {}", path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}; artifact follows", path.display());
                println!("{json}");
            }
        },
        None => println!("{json}"),
    }
    false
}

fn cmd_run(args: &[String]) -> i32 {
    let mut schedule = match opt(args, "--schedule") {
        Some(path) => match load_schedule(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
        None => {
            let seed = opt_u64(args, "--seed", 1);
            let events = opt_u64(args, "--events", 60) as usize;
            generate(seed, events)
        }
    };
    schedule.workers = opt_u64(args, "--workers", schedule.workers as u64) as usize;
    schedule.shards = opt_u64(args, "--shards", schedule.shards as u64).max(1) as usize;
    let default_out = format!("chaos-repro-{}.json", schedule.seed);
    let out = opt(args, "--out").unwrap_or(&default_out);
    if run_and_report(&schedule, Some(std::path::Path::new(out))) {
        0
    } else {
        1
    }
}

fn cmd_soak(args: &[String]) -> i32 {
    let parse_list = |s: &str, default: Vec<u64>| -> Vec<u64> {
        let v: Vec<u64> = s.split(',').filter_map(|p| p.trim().parse().ok()).collect();
        if v.is_empty() {
            default
        } else {
            v
        }
    };
    let seeds = parse_list(
        opt(args, "--seeds").unwrap_or(""),
        vec![1, 7, 42, 0xDEADBEEF],
    );
    let workers = parse_list(opt(args, "--workers").unwrap_or(""), vec![1, 4]);
    let shards = parse_list(opt(args, "--shards").unwrap_or(""), vec![1]);
    let events = opt_u64(args, "--events", 60) as usize;
    let out_dir = opt(args, "--out-dir").unwrap_or(".").to_string();
    let _ = std::fs::create_dir_all(&out_dir);
    let mut failures = 0usize;
    let mut total = 0usize;
    for &seed in &seeds {
        for &w in &workers {
            for &sh in &shards {
                total += 1;
                let mut schedule = generate(seed, events);
                schedule.workers = w as usize;
                schedule.shards = (sh as usize).max(1);
                let artifact = std::path::PathBuf::from(&out_dir)
                    .join(format!("chaos-repro-{seed}-w{w}-s{sh}.json"));
                if !run_and_report(&schedule, Some(&artifact)) {
                    failures += 1;
                }
            }
        }
    }
    println!("soak: {}/{} runs passed", total - failures, total);
    if failures == 0 {
        0
    } else {
        1
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: chaos replay <schedule.json>");
        return 2;
    };
    let schedule = match load_schedule(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let report = run(&schedule);
    println!("{path}: {}", report.summary());
    let ok = match schedule.expect_violation.as_deref() {
        None => report.passed(),
        Some(inv) => report.violated(inv),
    };
    if ok {
        println!(
            "outcome matches expectation ({})",
            schedule
                .expect_violation
                .as_deref()
                .unwrap_or("all invariants hold")
        );
        0
    } else {
        for v in &report.violations {
            println!("  {v}");
        }
        eprintln!(
            "outcome does NOT match expectation ({:?})",
            schedule.expect_violation
        );
        1
    }
}

fn cmd_emit(args: &[String]) -> i32 {
    let Some(name) = args.first().map(String::as_str) else {
        eprintln!(
            "usage: chaos emit <quarantine|sabotage|length-stall|cache-rescale|crash-failover>"
        );
        return 2;
    };
    let Some(schedule) = exemplar(name) else {
        eprintln!(
            "unknown exemplar {name:?} (quarantine | sabotage | length-stall | cache-rescale | crash-failover)"
        );
        return 2;
    };
    println!("{}", schedule_to_json(&schedule));
    0
}

/// The checked-in exemplar schedules under `crates/chaos/schedules/`
/// are regenerated from here, so the repo artifacts never drift from
/// the code that explains them.
fn exemplar(name: &str) -> Option<Schedule> {
    let attach = ChaosEvent::Attach {
        viewport_w: 64,
        viewport_h: 48,
    };
    let flush = ChaosEvent::Flush {
        epochs: 3,
        step_ms: 50,
    };
    let draw = |x: i32, y: i32, salt: u64| ChaosEvent::Draw {
        workload: Workload::Noise,
        x,
        y,
        w: 24,
        h: 16,
        salt,
    };
    let tile = |salt: u64| ChaosEvent::Draw {
        workload: Workload::Tile,
        x: ((salt % 4) * 16) as i32,
        y: 8,
        w: 16,
        h: 16,
        salt,
    };
    match name {
        // A poisoned flush quarantines exactly one client while the
        // other keeps converging: expected to PASS, with the
        // containment visible in the report.
        "quarantine" => Some(Schedule::base(0xC0).with_events(vec![
            attach.clone(),
            attach,
            draw(0, 0, 11),
            flush.clone(),
            ChaosEvent::PoisonFlush { slot: 1 },
            flush.clone(),
            draw(20, 12, 12),
            flush,
            ChaosEvent::Quiesce,
        ])),
        // A silent local pixel flip: expected to FAIL convergence —
        // the checked-in proof that the invariant checker catches a
        // real divergence.
        "sabotage" => {
            let mut s = Schedule::base(0x5A).with_events(vec![
                attach,
                draw(8, 8, 21),
                flush,
                ChaosEvent::SabotagePixel { slot: 0 },
                ChaosEvent::Quiesce,
            ]);
            s.expect_violation = Some(invariant::CONVERGENCE.to_string());
            Some(s)
        }
        // Regression guard for the framing-stall watchdog, shrunk by
        // the engine from soak seed 1234: corruption flips a frame's
        // length field without tripping the tag or CRC checks, so the
        // reader waits forever on a phantom frame and silently
        // swallows the final draw. Expected to PASS (before the
        // watchdog the client diverged by exactly the draw rect).
        "length-stall" => {
            let mut s = Schedule::base(1234).with_events(vec![
                attach.clone(),
                attach.clone(),
                attach.clone(),
                ChaosEvent::Disconnect { slot: 2 },
                ChaosEvent::Reconnect { slot: 2 },
                ChaosEvent::Fault {
                    slot: 2,
                    kind: thinc_chaos::FaultKind::Corruption,
                    offset_ms: 1,
                    len_ms: 312,
                    rate_pct: 43,
                },
                ChaosEvent::Fault {
                    slot: 2,
                    kind: thinc_chaos::FaultKind::Collapse,
                    offset_ms: 4,
                    len_ms: 217,
                    rate_pct: 15,
                },
                ChaosEvent::Quiesce,
                ChaosEvent::Fault {
                    slot: 2,
                    kind: thinc_chaos::FaultKind::Corruption,
                    offset_ms: 3,
                    len_ms: 64,
                    rate_pct: 32,
                },
                ChaosEvent::Draw {
                    workload: Workload::Solid,
                    x: 36,
                    y: 12,
                    w: 15,
                    h: 26,
                    salt: 16632385668536460075,
                },
                ChaosEvent::Flush {
                    epochs: 1,
                    step_ms: 28,
                },
            ]);
            s.workers = 3;
            Some(s)
        }
        // Regression guard for the rescale-drops-queued-fallbacks
        // fix: cached tiles, wire corruption provoking cache misses,
        // then a viewport resize racing the queued fallbacks.
        // Expected to PASS (it did not before the fix).
        "cache-rescale" => Some(Schedule::base(0xCA).with_events(vec![
            attach,
            tile(0),
            tile(1),
            flush.clone(),
            tile(0),
            ChaosEvent::Fault {
                slot: 0,
                kind: thinc_chaos::FaultKind::Corruption,
                offset_ms: 0,
                len_ms: 300,
                rate_pct: 30,
            },
            tile(1),
            tile(2),
            flush.clone(),
            ChaosEvent::Resize {
                slot: 0,
                viewport_w: 32,
                viewport_h: 24,
            },
            tile(3),
            flush.clone(),
            tile(0),
            flush,
            ChaosEvent::Quiesce,
        ])),
        // The warm-failover exercise, run on the sharded flush path:
        // a crash-instant takeover with undelivered buffers in the
        // image, then a stale-image failover from the previous
        // quiesce — both must redial every client and converge
        // byte-exact. Expected to PASS.
        "crash-failover" => {
            let mut s = Schedule::base(0xFA11).with_events(vec![
                attach.clone(),
                attach,
                tile(0),
                draw(4, 4, 41),
                flush.clone(),
                ChaosEvent::Quiesce,
                draw(28, 16, 42),
                ChaosEvent::ServerCrash,
                flush.clone(),
                tile(1),
                flush.clone(),
                ChaosEvent::Failover,
                flush,
                ChaosEvent::Quiesce,
            ]);
            s.shards = 2;
            Some(s)
        }
        _ => None,
    }
}
