//! Delta-debugging schedule minimization.
//!
//! A failing schedule from the generator is typically dozens of
//! events long; the bug usually needs three or four of them.
//! [`shrink`] runs classic ddmin over the event list — remove a
//! chunk, re-run, keep the removal if the *same invariant* still
//! fails — followed by a single-event elimination pass. Soundness
//! rests on the removal-tolerance contract of
//! [`ChaosEvent`](crate::event::ChaosEvent): any subsequence of a
//! valid schedule is itself a valid schedule, so every candidate the
//! shrinker proposes is runnable, and every run is deterministic, so
//! the oracle never flakes.

use crate::event::Schedule;
use crate::runner::run;

/// Upper bound on oracle runs a shrink may spend; generous for the
/// schedule sizes the generator emits, and a hard stop for
/// pathological hand-written inputs.
const MAX_ORACLE_RUNS: usize = 2_000;

/// Minimizes `schedule` while it keeps violating `invariant`.
///
/// The caller asserts that a full run of `schedule` violates
/// `invariant` (one of the names in [`crate::invariant::ALL`]); the
/// result is a schedule whose event list is 1-minimal with respect
/// to the oracle — removing any single remaining event makes the
/// violation disappear — with `expect_violation` stamped so the
/// artifact is replayable as a self-checking repro.
pub fn shrink(schedule: &Schedule, invariant: &str) -> Schedule {
    let mut budget = MAX_ORACLE_RUNS;
    let mut fails = |events: &[crate::event::ChaosEvent]| -> bool {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        run(&schedule.with_events(events.to_vec())).violated(invariant)
    };

    let mut events = schedule.events.clone();
    // ddmin: try removing ever-finer chunks.
    let mut n = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate = Vec::with_capacity(events.len() - (end - start));
            candidate.extend_from_slice(&events[..start]);
            candidate.extend_from_slice(&events[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                events = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= events.len() {
                break;
            }
            n = (n * 2).min(events.len());
        }
    }
    // Final polish: one-event elimination until a fixed point.
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < events.len() && events.len() > 1 {
            let mut candidate = events.clone();
            candidate.remove(i);
            if fails(&candidate) {
                events = candidate;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    let mut out = schedule.with_events(events);
    out.expect_violation = Some(invariant.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChaosEvent, Workload};
    use crate::invariant;

    /// A deliberately sabotaged schedule shrinks to a handful of
    /// events that still reproduce the convergence violation.
    #[test]
    fn shrinks_sabotage_to_a_minimal_repro() {
        let mut events = vec![ChaosEvent::Attach {
            viewport_w: 64,
            viewport_h: 48,
        }];
        for i in 0..6 {
            events.push(ChaosEvent::Draw {
                workload: Workload::Solid,
                x: (i * 7) as i32,
                y: (i * 5) as i32,
                w: 20,
                h: 12,
                salt: 0xAB00 + i,
            });
            events.push(ChaosEvent::Flush {
                epochs: 2,
                step_ms: 40,
            });
        }
        events.push(ChaosEvent::SabotagePixel { slot: 0 });
        events.push(ChaosEvent::Quiesce);
        let schedule = crate::event::Schedule::base(9).with_events(events);

        let full = run(&schedule);
        assert!(full.violated(invariant::CONVERGENCE), "{}", full.summary());

        let minimal = shrink(&schedule, invariant::CONVERGENCE);
        assert!(minimal.events.len() <= 10, "{:?}", minimal.events);
        assert!(minimal
            .events
            .iter()
            .any(|e| matches!(e, ChaosEvent::SabotagePixel { .. })));
        assert_eq!(
            minimal.expect_violation.as_deref(),
            Some(invariant::CONVERGENCE)
        );
        // The minimized schedule reproduces deterministically.
        let a = run(&minimal);
        let b = run(&minimal);
        assert!(a.violated(invariant::CONVERGENCE));
        assert_eq!(a.violations, b.violations);
    }
}
