//! Deterministic chaos simulation for the THINC virtual display
//! stack.
//!
//! This crate turns a single `u64` seed into a randomized — but
//! perfectly reproducible — multi-client torture run over a
//! [`SharedSession`](thinc_core::session::SharedSession): clients
//! attach, draw traffic flows, links lose and corrupt and reorder
//! bytes, connections sever and redial, viewports resize, budgets
//! shift, the server itself crashes and fails over to a warm standby
//! restored from a checkpoint image. At every quiesce point the
//! engine drains the system and checks a catalog of **global
//! invariants** (framebuffer convergence, cache-mirror coherence,
//! debt drainage, buffer bounds, liveness consistency, telemetry
//! conservation, panic containment, checkpoint/failover fidelity —
//! see [`invariant`]).
//!
//! When an invariant breaks, the failing [`event::Schedule`] is
//! minimized by delta-debugging ([`shrink`]) into a handful of
//! events and serialized ([`json`]) as a replayable artifact: the
//! `chaos` binary's `replay` subcommand re-executes it bit-exactly
//! anywhere.
//!
//! Everything runs in virtual time with seeded PRNGs only — no wall
//! clock, no ambient randomness — so a schedule is a complete,
//! portable description of an experiment.

#![warn(missing_docs)]

pub mod event;
pub mod generate;
pub mod invariant;
pub mod json;
pub mod runner;
pub mod shrink;

pub use event::{ChaosEvent, FaultKind, Schedule, Workload};
pub use generate::generate;
pub use invariant::{RunReport, Violation};
pub use json::{schedule_from_json, schedule_to_json};
pub use runner::{run, ChaosError};
pub use shrink::shrink;
