//! End-to-end tests for the `chaos` binary's failure-path contract:
//! a missing or corrupt schedule artifact exits nonzero with a
//! one-line diagnostic naming the path and the cause — never a
//! panic, never a zero exit, never a silent fallback run.

use std::path::PathBuf;
use std::process::Command;

fn chaos() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chaos"))
}

/// A per-test temp path that never collides across parallel runs.
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chaos-cli-{tag}-{}.json", std::process::id()))
}

#[test]
fn replay_of_a_missing_file_fails_with_a_one_line_diagnostic() {
    let path = temp_path("missing");
    let out = chaos()
        .arg("replay")
        .arg(&path)
        .output()
        .expect("spawn chaos");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    let diag: Vec<&str> = stderr.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(diag.len(), 1, "expected one diagnostic line, got: {stderr}");
    assert!(
        diag[0].contains("cannot read") && diag[0].contains(path.to_str().unwrap()),
        "diagnostic must name the path and the cause: {}",
        diag[0]
    );
}

#[test]
fn replay_of_a_corrupt_file_fails_with_a_one_line_diagnostic() {
    let path = temp_path("corrupt");
    std::fs::write(&path, "{ \"seed\": 1, \"events\": [ {{{").expect("write corrupt artifact");
    let out = chaos()
        .arg("replay")
        .arg(&path)
        .output()
        .expect("spawn chaos");
    let _ = std::fs::remove_file(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    let diag: Vec<&str> = stderr.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(diag.len(), 1, "expected one diagnostic line, got: {stderr}");
    assert!(
        diag[0].contains("cannot parse") && diag[0].contains(path.to_str().unwrap()),
        "diagnostic must name the path and the cause: {}",
        diag[0]
    );
}

#[test]
fn run_with_a_missing_schedule_file_fails_cleanly() {
    let path = temp_path("run-missing");
    let out = chaos()
        .arg("run")
        .arg("--schedule")
        .arg(&path)
        .output()
        .expect("spawn chaos");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read") && stderr.contains(path.to_str().unwrap()),
        "diagnostic must name the path and the cause: {stderr}"
    );
}

#[test]
fn run_executes_a_schedule_file_and_replay_accepts_the_exemplar() {
    // The checked-in crash-failover exemplar, via both subcommands.
    let schedule = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("schedules")
        .join("crash-failover.json");
    let out = chaos()
        .arg("run")
        .arg("--schedule")
        .arg(&schedule)
        .output()
        .expect("spawn chaos");
    assert!(
        out.status.success(),
        "run --schedule failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = chaos()
        .arg("replay")
        .arg(&schedule)
        .output()
        .expect("spawn chaos");
    assert!(
        out.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
