//! End-to-end acceptance tests for the chaos engine: determinism,
//! invariant catching, shrinking, quarantine containment and the
//! checked-in schedule artifacts.

use thinc_chaos::event::{ChaosEvent, Schedule, Workload};
use thinc_chaos::{generate, invariant, run, schedule_from_json, schedule_to_json, shrink};

fn schedules_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("schedules")
}

fn read_schedule(name: &str) -> Schedule {
    let path = schedules_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    schedule_from_json(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

#[test]
fn generated_seeds_pass_all_invariants() {
    for seed in [1, 7, 42] {
        let schedule = generate(seed, 30);
        let report = run(&schedule);
        assert!(
            report.passed(),
            "seed {seed} violated: {:?}",
            report.violations
        );
        assert!(report.quiesces >= 1, "every run ends with a quiesce check");
    }
}

#[test]
fn runs_are_deterministic_across_reruns_and_worker_counts() {
    let base = generate(0xFEED, 40);
    let first = run(&base);
    let again = run(&base);
    assert_eq!(first.violations, again.violations);
    assert_eq!(first.quiesces, again.quiesces);
    assert_eq!(first.slots_attached, again.slots_attached);
    // The worker-pool size must never change observable behavior:
    // same schedule, different parallelism, same verdicts.
    for workers in [2, 4] {
        let mut parallel = base.clone();
        parallel.workers = workers;
        let report = run(&parallel);
        assert_eq!(
            report.violations, first.violations,
            "workers={workers} changed the verdicts"
        );
        assert_eq!(report.quiesces, first.quiesces);
    }
}

#[test]
fn shard_count_never_changes_verdicts() {
    // The fan-out contract extended to chaos: the sharded flush
    // partition must reach the same verdicts as the monolithic flush
    // on the 64-client schedule, for every shard count.
    let base = read_schedule("fanout-shards.json");
    assert_eq!(base.shards, 8, "artifact drives the sharded path");
    let reference = {
        let mut s = base.clone();
        s.shards = 1;
        run(&s)
    };
    assert!(
        reference.passed(),
        "monolithic reference violated: {:?}",
        reference.violations
    );
    for shards in [2usize, 8] {
        let mut s = base.clone();
        s.shards = shards;
        let report = run(&s);
        assert_eq!(
            report.violations, reference.violations,
            "shards={shards} changed the verdicts"
        );
        assert_eq!(report.quiesces, reference.quiesces);
        assert_eq!(report.slots_attached, reference.slots_attached);
        assert_eq!(report.quarantined, reference.quarantined);
    }
}

#[test]
fn injected_sabotage_is_caught_and_shrinks_small() {
    // A deliberately planted violation buried in healthy traffic: the
    // engine must catch it, and the shrinker must cut the schedule to
    // a handful of events that still reproduce it deterministically.
    let mut events = Vec::new();
    for i in 0..4 {
        events.push(ChaosEvent::Attach {
            viewport_w: 64,
            viewport_h: 48,
        });
        events.push(ChaosEvent::Draw {
            workload: Workload::Noise,
            x: i * 12,
            y: 4,
            w: 16,
            h: 16,
            salt: 1000 + i as u64,
        });
        events.push(ChaosEvent::Flush {
            epochs: 2,
            step_ms: 40,
        });
    }
    events.push(ChaosEvent::SabotagePixel { slot: 0 });
    events.push(ChaosEvent::Quiesce);
    let schedule = Schedule::base(0xBAD).with_events(events);
    let report = run(&schedule);
    assert!(
        report.violated(invariant::CONVERGENCE),
        "the planted divergence must be caught: {:?}",
        report.violations
    );
    let minimal = shrink(&schedule, invariant::CONVERGENCE);
    assert!(
        minimal.events.len() <= 10,
        "shrunk to {} events, want <= 10: {:?}",
        minimal.events.len(),
        minimal.events.iter().map(|e| e.tag()).collect::<Vec<_>>()
    );
    // The minimized schedule still reproduces, and does so on every
    // replay (the artifact contract).
    for _ in 0..2 {
        assert!(run(&minimal).violated(invariant::CONVERGENCE));
    }
}

#[test]
fn poisoned_flush_quarantines_only_that_client() {
    let schedule = read_schedule("quarantine.json");
    let report = run(&schedule);
    assert!(report.passed(), "containment is healthy: {:?}", report.violations);
    assert_eq!(report.quarantined, 1, "exactly the poisoned client");
    assert_eq!(report.slots_attached, 2, "the healthy peer survived");
}

#[test]
fn schedules_round_trip_through_json() {
    for seed in [3, 0xA5A5, u64::MAX] {
        let schedule = generate(seed, 50);
        let parsed = schedule_from_json(&schedule_to_json(&schedule)).expect("round trip parses");
        assert_eq!(parsed, schedule);
    }
}

#[test]
fn checked_in_schedules_replay_to_their_expected_outcomes() {
    let dir = schedules_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 4,
        "expected the four exemplar schedules, found {names:?}"
    );
    for name in names {
        let schedule = read_schedule(&name);
        let report = run(&schedule);
        match schedule.expect_violation.as_deref() {
            None => assert!(
                report.passed(),
                "{name} must pass but violated: {:?}",
                report.violations
            ),
            Some(inv) => assert!(
                report.violated(inv),
                "{name} must violate [{inv}] but reported: {:?}",
                report.violations
            ),
        }
    }
}

#[test]
fn length_stall_regression_stays_fixed() {
    // Shrunk by the engine from soak seed 1234: corruption flips a
    // frame's length field, the reader waits on a phantom frame and
    // silently swallows the final draw. The stall watchdog now
    // recovers it; this run diverged before that fix.
    let schedule = read_schedule("length-stall.json");
    let report = run(&schedule);
    assert!(report.passed(), "stall must recover: {:?}", report.violations);
}
