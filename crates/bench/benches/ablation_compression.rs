//! Ablation: RAW payload compression — codec choice and content
//! dependence (§7, §8.3).
//!
//! THINC compresses only RAW updates, with a PNG-class codec. The
//! paper's page-by-page analysis shows why: desktop-style content
//! (fills, text, gradients) compresses extremely well, photographic
//! content does not — which is where "better compression algorithms
//! such as used in NX ... can provide useful performance benefits".
//! This bench measures throughput and ratio of each codec on both
//! content classes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use thinc_compress::Codec;
use thinc_workloads::content::{graphic_rgb, photo_rgb};

const W: u32 = 256;
const H: u32 = 192;

fn codecs() -> Vec<(&'static str, Codec)> {
    vec![
        ("rle", Codec::Rle),
        ("pixel_rle", Codec::PixelRle { bpp: 3 }),
        ("lzss", Codec::Lzss),
        (
            "pnglike",
            Codec::PngLike {
                bpp: 3,
                stride: W as usize * 3,
            },
        ),
        ("huffman", Codec::Huffman),
        (
            "deflate_like",
            Codec::DeflateLike {
                bpp: 3,
                stride: W as usize * 3,
            },
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let photo = photo_rgb(11, W, H);
    let graphic = graphic_rgb(11, W, H);
    for (content_name, data) in [("photo", &photo), ("graphic", &graphic)] {
        let mut group = c.benchmark_group(format!("raw_compression/{content_name}"));
        group.sample_size(10);
        group.throughput(Throughput::Bytes(data.len() as u64));
        for (name, codec) in codecs() {
            group.bench_function(name, |b| b.iter(|| codec.compress(data)));
        }
        group.finish();
    }
    println!("\n[compression ablation] ratios on {W}x{H} RGB:");
    for (content_name, data) in [("photo  ", &photo), ("graphic", &graphic)] {
        let mut line = format!("  {content_name}:");
        for (name, codec) in codecs() {
            let out = codec.compress(data);
            line.push_str(&format!(
                "  {name} {:.2}x",
                data.len() as f64 / out.len() as f64
            ));
        }
        println!("{line}");
    }
    println!();
}

criterion_group!(benches, bench);
criterion_main!(benches);
