//! Microbenchmarks of the command queue (§4): push with eviction
//! maintenance, scan-line merging, and region extraction — the
//! operations on THINC's hot path for every drawing request.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use thinc_core::queue::CommandQueue;
use thinc_protocol::commands::{DisplayCommand, RawEncoding};
use thinc_raster::{Color, Rect};

fn sfill(x: i32, y: i32, w: u32, h: u32, v: u8) -> DisplayCommand {
    DisplayCommand::Sfill {
        rect: Rect::new(x, y, w, h),
        color: Color::rgb(v, v, v),
    }
}

fn scanline(y: i32) -> DisplayCommand {
    DisplayCommand::Raw {
        rect: Rect::new(0, y, 256, 1),
        encoding: RawEncoding::None,
        data: vec![y as u8; 256 * 3].into(),
    }
}

fn populated_queue() -> CommandQueue {
    let mut q = CommandQueue::new();
    for i in 0..64 {
        q.push(sfill((i % 8) * 32, (i / 8) * 32, 32, 32, i as u8), false);
    }
    q
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("command_queue");
    group.sample_size(30);

    group.bench_function("push_disjoint_64", |b| {
        b.iter(|| {
            let mut q = CommandQueue::new();
            for i in 0..64 {
                q.push(sfill((i % 8) * 32, (i / 8) * 32, 32, 32, i as u8), false);
            }
            q
        })
    });

    group.bench_function("push_overwriting_64", |b| {
        b.iter(|| {
            let mut q = CommandQueue::new();
            for i in 0..64u8 {
                // Every push fully overwrites: constant queue length.
                q.push(sfill(0, 0, 256, 256, i), false);
            }
            assert_eq!(q.len(), 1);
            q
        })
    });

    group.bench_function("merge_200_scanlines", |b| {
        b.iter(|| {
            let mut q = CommandQueue::new();
            for y in 0..200 {
                q.push(scanline(y), false);
            }
            assert_eq!(q.len(), 1);
            q
        })
    });

    group.bench_function("extract_region_from_64", |b| {
        b.iter_batched(
            populated_queue,
            |q| q.extract_region(&Rect::new(16, 16, 200, 200), 5, 7),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
