//! Ablation: server-push vs client-pull update delivery (§5).
//!
//! "A client-driven system has an update delay of at least half the
//! round-trip time in the network." This bench measures the mean
//! virtual-time delivery latency of a stream of updates under both
//! models on the WAN configuration, plus the achievable update rate —
//! the effect that halves VNC's A/V quality in Figure 5.

use criterion::{criterion_group, criterion_main, Criterion};
use thinc_net::link::NetworkConfig;
use thinc_net::time::{SimDuration, SimTime};

const UPDATE_BYTES: u64 = 20_000;
const UPDATES: u64 = 50;
/// Updates are generated every 41.7 ms (24 fps).
const PERIOD: SimDuration = SimDuration(41_667);

/// Mean delivery latency with the server pushing as soon as updates
/// exist.
fn push_mean_latency(net: &NetworkConfig) -> SimDuration {
    let mut link = net.connect();
    let mut total = SimDuration::ZERO;
    for i in 0..UPDATES {
        let gen = SimTime(i * PERIOD.as_micros());
        let arrival = link.send_down(gen, UPDATE_BYTES);
        total += arrival - gen;
    }
    total.div(UPDATES)
}

/// Mean delivery latency when the client must request each update.
fn pull_mean_latency(net: &NetworkConfig) -> SimDuration {
    let mut link = net.connect();
    let mut total = SimDuration::ZERO;
    // The client's outstanding request arrives at the server here:
    let mut request_at = SimTime::ZERO + net.rtt.div(2);
    for i in 0..UPDATES {
        let generated = SimTime(i * PERIOD.as_micros());
        // The server replies to the earliest request made after the
        // content exists.
        let serve_at = generated.max(request_at);
        let arrival = link.send_down(serve_at, UPDATE_BYTES);
        total += arrival - generated;
        // Client requests again after receiving this update.
        request_at = link.send_up(arrival, 24);
    }
    total.div(UPDATES)
}

fn bench(c: &mut Criterion) {
    let wan = NetworkConfig::wan_desktop();
    let mut group = c.benchmark_group("push_pull");
    group.sample_size(20);
    group.bench_function("push_model", |b| b.iter(|| push_mean_latency(&wan)));
    group.bench_function("pull_model", |b| b.iter(|| pull_mean_latency(&wan)));
    group.finish();

    let push = push_mean_latency(&wan);
    let pull = pull_mean_latency(&wan);
    println!(
        "\n[push/pull ablation] mean WAN update latency: push {push}, pull {pull} \
         (pull adds >= half an RTT per update)\n"
    );
    assert!(pull > push + wan.rtt.div(4));
}

criterion_group!(benches, bench);
criterion_main!(benches);
