//! Ablation: server-side vs client-side resize for small screens (§6).
//!
//! Server-side resize (THINC) resamples every update to the viewport
//! before transmission: bandwidth shrinks by roughly the area ratio,
//! and the client does no scaling work. Client-side resize (the
//! ICA/GoToMyPC model) sends full-size data and pays client CPU.
//! This bench times the Fant resampling itself (the server cost the
//! paper calls "minimum overhead") and reports the byte savings.

use criterion::{criterion_group, criterion_main, Criterion};
use thinc_core::scaling::ScalePolicy;
use thinc_protocol::commands::{DisplayCommand, RawEncoding};
use thinc_raster::{Framebuffer, PixelFormat, Rect};

fn sample_raw() -> DisplayCommand {
    // A 512x384 update (quarter of the 1024x768 session).
    let mut x = 7u64;
    let data: Vec<u8> = (0..512usize * 384 * 3)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as u8
        })
        .collect();
    let data = data.into();
    DisplayCommand::Raw {
        rect: Rect::new(0, 0, 512, 384),
        encoding: RawEncoding::None,
        data,
    }
}

fn bench(c: &mut Criterion) {
    let policy = ScalePolicy::new(1024, 768, 320, 240);
    let screen = Framebuffer::new(1024, 768, PixelFormat::Rgb888);
    let cmd = sample_raw();

    let mut group = c.benchmark_group("server_resize");
    group.sample_size(10);
    group.bench_function("fant_resample_512x384_to_160x120", |b| {
        b.iter(|| policy.transform(&cmd, &screen))
    });
    group.finish();

    let scaled = policy.transform(&cmd, &screen).expect("visible");
    println!(
        "\n[resize ablation] update bytes full-size: {}, server-resized: {} \
         ({:.1}x bandwidth reduction; client-side resize sends the full {} bytes \
         and pays client CPU on top)\n",
        cmd.wire_size(),
        scaled.wire_size(),
        cmd.wire_size() as f64 / scaled.wire_size() as f64,
        cmd.wire_size(),
    );
    assert!(scaled.wire_size() * 2 < cmd.wire_size());
}

criterion_group!(benches, bench);
criterion_main!(benches);
