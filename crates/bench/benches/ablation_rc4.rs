//! Ablation: RC4 session encryption overhead (§7).
//!
//! "We have found the cost of RC4 to be rather minimal." The bench
//! measures raw keystream throughput and the relative cost of
//! encrypting a typical display update versus producing it, to show
//! the per-byte cipher cost disappears next to translation and
//! compression.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use thinc_compress::{Codec, Rc4};

fn bench(c: &mut Criterion) {
    let update = vec![0xA7u8; 1 << 20];
    let mut group = c.benchmark_group("rc4");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(update.len() as u64));
    group.bench_function("encrypt_1mib", |b| {
        b.iter(|| {
            let mut cipher = Rc4::new(b"0123456789abcdef");
            let mut buf = update.clone();
            cipher.apply(&mut buf);
            buf
        })
    });
    group.bench_function("memcpy_baseline_1mib", |b| b.iter(|| update.clone()));
    group.finish();

    // Relative cost: encrypting vs compressing the same payload.
    let mut group = c.benchmark_group("rc4_vs_compression");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(update.len() as u64));
    group.bench_function("rc4", |b| {
        b.iter(|| {
            let mut cipher = Rc4::new(b"key!");
            let mut buf = update.clone();
            cipher.apply(&mut buf);
            buf
        })
    });
    group.bench_function("pnglike_compress", |b| {
        b.iter(|| Codec::PngLike { bpp: 3, stride: 3072 }.compress(&update))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
