//! Ablation: offscreen drawing awareness ON vs OFF (§4.1).
//!
//! Runs a browser-style page (offscreen compose + copy onscreen)
//! through the full THINC pipeline with the optimization enabled and
//! disabled, timing the translation work and reporting the wire-byte
//! difference. The paper's claim: tracking costs almost nothing, and
//! ignoring offscreen drawing forces bandwidth-heavy RAW fallbacks.

use criterion::{criterion_group, criterion_main, Criterion};
use thinc_bench::thinc_system::ThincSystem;
use thinc_baselines::RemoteDisplay;
use thinc_core::server::ServerConfig;
use thinc_display::drawable::DrawableId;
use thinc_display::request::DrawRequest;
use thinc_net::link::NetworkConfig;
use thinc_net::time::SimTime;
use thinc_net::trace::Direction;
use thinc_workloads::web::WebWorkload;

fn page_requests(wl: &WebWorkload, index: usize) -> Vec<DrawRequest> {
    let mut reqs = vec![DrawRequest::CreatePixmap {
        width: wl.width,
        height: wl.height,
    }];
    reqs.extend(wl.render_requests(index, DrawableId(1)));
    reqs
}

fn run_page(offscreen: bool) -> u64 {
    let net = NetworkConfig::lan_desktop();
    let config = ServerConfig {
        width: 512,
        height: 384,
        offscreen_awareness: offscreen,
        ..ServerConfig::default()
    };
    let mut sys = ThincSystem::with_config(&net, config, (512, 384));
    let wl = WebWorkload::new(512, 384, 2005);
    sys.process(SimTime::ZERO, page_requests(&wl, 1));
    sys.drain(SimTime::ZERO);
    sys.trace().bytes(Direction::Down)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("offscreen_awareness");
    group.sample_size(10);
    group.bench_function("enabled", |b| b.iter(|| run_page(true)));
    group.bench_function("disabled", |b| b.iter(|| run_page(false)));
    group.finish();

    // Report the wire-byte ablation result alongside the timings.
    let with = run_page(true);
    let without = run_page(false);
    println!(
        "\n[offscreen ablation] page bytes with awareness: {with}, without: {without} \
         ({:.2}x more data when offscreen drawing is ignored)\n",
        without as f64 / with.max(1) as f64
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
