//! Ablation: SRSF multi-queue scheduling vs FIFO delivery (§5).
//!
//! A small interactive update (button feedback) arrives behind a
//! large bulk update. Under FIFO the small update waits for the bulk
//! data to serialize; under SRSF it jumps to the first queue. The
//! measured quantity is the *virtual-time response latency* of the
//! small update on a constrained link — the mean-response-time
//! argument behind the SRPT analogy.

use criterion::{criterion_group, criterion_main, Criterion};
use thinc_core::buffer::ClientBuffer;
use thinc_net::tcp::{TcpParams, TcpPipe};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::PacketTrace;
use thinc_protocol::commands::{DisplayCommand, RawEncoding};
use thinc_protocol::message::Message;
use thinc_raster::{Color, Rect};

fn pipe() -> TcpPipe {
    TcpPipe::new(TcpParams {
        bandwidth_bps: 10_000_000,
        rtt: SimDuration::from_millis(20),
        rwnd_bytes: 256 * 1024,
        ..TcpParams::default()
    })
}

fn bulk(i: i32) -> DisplayCommand {
    DisplayCommand::Raw {
        rect: Rect::new(i * 10, 0, 200, 200),
        encoding: RawEncoding::None,
        data: vec![(i % 251) as u8; 200 * 200 * 3].into(),
    }
}

fn feedback() -> DisplayCommand {
    DisplayCommand::Sfill {
        rect: Rect::new(500, 500, 20, 20),
        color: Color::WHITE,
    }
}

/// Returns the virtual time at which the feedback update reaches the
/// client.
fn feedback_latency(fifo: bool) -> SimDuration {
    let mut buf = if fifo {
        ClientBuffer::new().with_fifo_scheduling()
    } else {
        ClientBuffer::new()
    };
    for i in 0..4 {
        buf.push(bulk(i), false);
    }
    buf.push(feedback(), false);
    let mut p = pipe();
    let mut trace = PacketTrace::new();
    let mut now = SimTime::ZERO;
    for _ in 0..100_000 {
        let batch = buf.flush(now, &mut p, &mut trace);
        for (arrival, msg) in batch {
            if matches!(msg, Message::Display(DisplayCommand::Sfill { .. })) {
                return arrival - SimTime::ZERO;
            }
        }
        if buf.is_empty() {
            break;
        }
        now = p.tx_free_at().max(now + SimDuration::from_millis(1));
    }
    panic!("feedback never delivered");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(20);
    group.bench_function("srsf_feedback_path", |b| b.iter(|| feedback_latency(false)));
    group.bench_function("fifo_feedback_path", |b| b.iter(|| feedback_latency(true)));
    group.finish();

    let srsf = feedback_latency(false);
    let fifo = feedback_latency(true);
    println!(
        "\n[scheduler ablation] interactive-update latency: SRSF {srsf}, FIFO {fifo} \
         ({:.1}x faster response with shortest-remaining-size-first)\n",
        fifo.as_secs_f64() / srsf.as_secs_f64().max(1e-9)
    );
    assert!(srsf < fifo, "SRSF must beat FIFO for small updates");
}

criterion_group!(benches, bench);
criterion_main!(benches);
