//! Ablation: the `COPY` command on a scrolling workload (§3).
//!
//! Scrolling through a document, THINC's screen-to-screen COPY moves
//! the already-delivered pixels on the client for ~30 wire bytes per
//! step; a screen scraper re-sends the damaged area. This bench
//! measures the per-step wire cost of both architectures on the same
//! scroll session.

use criterion::{criterion_group, criterion_main, Criterion};
use thinc_baselines::{RemoteDisplay, Vnc};
use thinc_bench::thinc_system::ThincSystem;
use thinc_net::link::NetworkConfig;
use thinc_net::time::SimTime;
use thinc_workloads::scroll::ScrollWorkload;

const W: u32 = 640;
const H: u32 = 480;

fn run_scroll(sys: &mut dyn RemoteDisplay) -> (u64, u64) {
    let wl = ScrollWorkload::standard(W, H);
    sys.process(SimTime::ZERO, wl.initial_requests());
    sys.drain(SimTime::ZERO);
    let initial = sys.trace().total_bytes();
    for (i, step) in wl.all_steps().into_iter().enumerate() {
        let t = SimTime((1 + i as u64) * 100_000);
        sys.process(t, step);
    }
    let end = SimTime((1 + wl.steps as u64) * 100_000);
    sys.drain(end);
    let scroll_bytes = sys.trace().total_bytes() - initial;
    (initial, scroll_bytes / wl.steps as u64)
}

fn bench(c: &mut Criterion) {
    let lan = NetworkConfig::lan_desktop();
    let mut group = c.benchmark_group("scrolling");
    group.sample_size(10);
    group.bench_function("thinc_session", |b| {
        b.iter(|| run_scroll(&mut ThincSystem::new(&lan, W, H)))
    });
    group.bench_function("vnc_session", |b| {
        b.iter(|| run_scroll(&mut Vnc::new(&lan, W, H)))
    });
    group.finish();

    let (_, thinc_step) = run_scroll(&mut ThincSystem::new(&lan, W, H));
    let (_, vnc_step) = run_scroll(&mut Vnc::new(&lan, W, H));
    println!(
        "\n[scroll ablation] wire bytes per scroll step: THINC {thinc_step}, \
         screen-scrape {vnc_step} ({:.0}x saved by COPY)\n",
        vnc_step as f64 / thinc_step.max(1) as f64
    );
    assert!(thinc_step * 4 < vnc_step, "COPY must dominate scraping");
}

criterion_group!(benches, bench);
criterion_main!(benches);
