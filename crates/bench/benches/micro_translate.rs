//! Microbenchmarks of the translation layer (§4): one-to-one command
//! mapping, the offscreen queue-execution path, and a full
//! browser-style page through the window server with the THINC driver
//! attached — versus the screen-scrape encoding a VNC-class system
//! performs for the same content.

use criterion::{criterion_group, criterion_main, Criterion};
use thinc_baselines::framework::encode_region;
use thinc_compress::Codec;
use thinc_core::server::{ServerConfig, ThincServer};
use thinc_core::translator::Translator;
use thinc_display::drawable::{DrawableId, DrawableStore};
use thinc_display::driver::NullDriver;
use thinc_display::request::DrawRequest;
use thinc_display::server::WindowServer;
use thinc_display::SCREEN;
use thinc_raster::{Color, PixelFormat, Rect, Region};
use thinc_workloads::web::WebWorkload;

const W: u32 = 512;
const H: u32 = 384;

fn page_requests(wl: &WebWorkload) -> Vec<DrawRequest> {
    let mut reqs = vec![DrawRequest::CreatePixmap { width: W, height: H }];
    reqs.extend(wl.render_requests(1, DrawableId(1)));
    reqs
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation");
    group.sample_size(10);

    group.bench_function("onscreen_fill_one_to_one", |b| {
        let store = DrawableStore::new(W, H, PixelFormat::Rgb888);
        let mut t = Translator::new();
        b.iter(|| t.solid_fill(&store, SCREEN, Rect::new(0, 0, 64, 64), Color::WHITE))
    });

    group.bench_function("page_through_thinc_driver", |b| {
        let wl = WebWorkload::new(W, H, 2005);
        b.iter(|| {
            let thinc = ThincServer::new(ServerConfig {
                width: W,
                height: H,
                ..ServerConfig::default()
            });
            let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, thinc);
            ws.process_all(page_requests(&wl));
            ws.driver().display_backlog()
        })
    });

    group.bench_function("page_through_screen_scrape", |b| {
        let wl = WebWorkload::new(W, H, 2005);
        b.iter(|| {
            let mut ws = WindowServer::new(W, H, PixelFormat::Rgb888, NullDriver);
            ws.process_all(page_requests(&wl));
            // VNC-class work: encode the damaged screen as pixels.
            let damage = Region::from_rect(Rect::new(0, 0, W, H));
            encode_region(ws.screen(), &damage, Codec::PixelRle { bpp: 3 }, 3)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
