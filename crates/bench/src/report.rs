//! Plain-text rendering of benchmark results (the figure binaries'
//! output format: one table per paper figure).

/// Renders a table: header row plus data rows, columns padded.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with millisecond resolution.
pub fn secs(v: f64) -> String {
    format!("{v:.3}s")
}

/// Formats a 0–1 quality as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats kilobytes.
pub fn kb(v: f64) -> String {
    format!("{v:.1} KB")
}

/// Formats megabytes.
pub fn mb(v: f64) -> String {
    format!("{v:.1} MB")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = table(
            "Fig X",
            &["System", "Latency"],
            &[
                vec!["THINC".into(), "0.1s".into()],
                vec!["VNC".into(), "10.0s".into()],
            ],
        );
        assert!(out.contains("== Fig X =="));
        assert!(out.contains("THINC"));
        let lines: Vec<&str> = out.lines().filter(|l| l.contains('s')).collect();
        assert!(lines.len() >= 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.2345), "1.234s");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(kb(12.34), "12.3 KB");
        assert_eq!(mb(117.0), "117.0 MB");
    }
}
