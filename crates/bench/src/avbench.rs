//! The audio/video playback benchmark (Figures 5, 6, 7).
//!
//! Plays the §8.2 clip — 352×240 YV12 at 24 fps for 34.75 s,
//! displayed fullscreen — through a system, interleaving the audio
//! track in 100 ms chunks for platforms that support it. Quality is
//! the slow-motion A/V measure: the delivered fraction of the A/V
//! data scaled by the playback slowdown (100% = everything arrived
//! at real-time speed).

use thinc_baselines::RemoteDisplay;
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::av_quality;
use thinc_raster::Rect;
use thinc_workloads::video::{AudioTrack, VideoClip};

/// Result of one A/V benchmark run.
#[derive(Debug, Clone)]
pub struct AvResult {
    /// System name.
    pub system: String,
    /// Slow-motion A/V quality, 0.0–1.0.
    pub quality: f64,
    /// Total data transferred, megabytes.
    pub data_mb: f64,
    /// Effective playback duration, seconds.
    pub duration_s: f64,
    /// Video frames delivered / dropped.
    pub frames: (u32, u32),
    /// Whether the system played audio at all.
    pub audio: bool,
}

/// Audio chunk period.
const AUDIO_CHUNK: SimDuration = SimDuration(100_000);

/// Plays `clip` (plus `audio`, when supported) fullscreen at
/// `dst` through `sys`.
pub fn run_av(
    sys: &mut dyn RemoteDisplay,
    clip: &VideoClip,
    audio: Option<&AudioTrack>,
    dst: Rect,
) -> AvResult {
    let start = SimTime::ZERO + SimDuration::from_millis(10);
    let total_frames = clip.frame_count();
    let use_audio = audio.is_some() && sys.supports_audio();
    let mut next_audio = start;
    let mut audio_sent = 0u64;
    for i in 0..total_frames {
        let t = start + SimDuration::from_micros(clip.pts_us(i));
        // Interleave audio chunks due before this frame.
        if let (true, Some(track)) = (use_audio, audio) {
            while next_audio <= t {
                let off = (next_audio - start).as_micros() / 1000;
                if off >= track.duration_ms {
                    break;
                }
                let pcm = track.pcm(off, AUDIO_CHUNK.as_millis());
                audio_sent += pcm.len() as u64;
                sys.audio(next_audio, &pcm);
                next_audio += AUDIO_CHUNK;
            }
        }
        sys.video_frame(t, &clip.frame(i), dst);
    }
    let ideal = SimDuration::from_millis(clip.duration_ms);
    let end = start + ideal;
    let last = sys.drain(end);
    let stats = sys.av_stats();
    let delivered_frac = if total_frames == 0 {
        0.0
    } else {
        stats.frames_delivered as f64 / total_frames as f64
    };
    let actual = (last - start).max(ideal);
    let quality = av_quality(ideal, actual, delivered_frac);
    let data_mb = sys.trace().total_bytes() as f64 / 1e6;
    let _ = audio_sent;
    AvResult {
        system: sys.name(),
        quality,
        data_mb,
        duration_s: actual.as_secs_f64(),
        frames: (stats.frames_delivered, stats.frames_dropped),
        audio: use_audio && stats.audio_bytes > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinc_system::ThincSystem;
    use thinc_baselines::{SunRay, Vnc};
    use thinc_net::link::NetworkConfig;

    fn short_clip() -> VideoClip {
        VideoClip::short(2_000) // 2 s, 48 frames.
    }

    fn fullscreen() -> Rect {
        Rect::new(0, 0, 512, 384)
    }

    #[test]
    fn thinc_plays_fullscreen_at_full_quality_lan_and_wan() {
        for net in [NetworkConfig::lan_desktop(), NetworkConfig::wan_desktop()] {
            let mut sys = ThincSystem::new(&net, 512, 384);
            let res = run_av(
                &mut sys,
                &short_clip(),
                Some(&AudioTrack::benchmark()),
                fullscreen(),
            );
            assert!(
                res.quality > 0.99,
                "{}: quality {} on {}",
                res.system,
                res.quality,
                net.name
            );
            assert!(res.audio);
        }
    }

    #[test]
    fn vnc_quality_poor_and_halves_in_wan() {
        let lan = run_av(
            &mut Vnc::new(&NetworkConfig::lan_desktop(), 512, 384),
            &short_clip(),
            None,
            fullscreen(),
        );
        let wan = run_av(
            &mut Vnc::new(&NetworkConfig::wan_desktop(), 512, 384),
            &short_clip(),
            None,
            fullscreen(),
        );
        assert!(lan.quality < 0.7, "lan {}", lan.quality);
        assert!(
            wan.quality < lan.quality * 0.75,
            "wan {} vs lan {}",
            wan.quality,
            lan.quality
        );
    }

    #[test]
    fn thinc_vastly_outperforms_sunray_on_video() {
        // Fullscreen playback at the paper's desktop resolution: the
        // inferred-pixel path cannot keep up while THINC's YUV stream
        // is untouched by view size.
        let net = NetworkConfig::lan_desktop();
        let clip = VideoClip::short(1_000);
        let dst = Rect::new(0, 0, 1024, 768);
        let thinc = run_av(&mut ThincSystem::new(&net, 1024, 768), &clip, None, dst);
        let sunray = run_av(&mut SunRay::new(&net, 1024, 768), &clip, None, dst);
        assert!(thinc.quality > sunray.quality * 2.0,
            "thinc {} vs sunray {}", thinc.quality, sunray.quality);
    }

    #[test]
    fn thinc_video_data_independent_of_view_size() {
        let net = NetworkConfig::lan_desktop();
        let clip = short_clip();
        let windowed = run_av(
            &mut ThincSystem::new(&net, 512, 384),
            &clip,
            None,
            Rect::new(0, 0, 352, 240),
        );
        let full = run_av(
            &mut ThincSystem::new(&net, 512, 384),
            &clip,
            None,
            fullscreen(),
        );
        let ratio = full.data_mb / windowed.data_mb;
        assert!((0.95..1.05).contains(&ratio), "{ratio}");
    }

    #[test]
    fn audio_only_playback_is_perfect_on_audio_systems() {
        // §8.3: "Most of the platforms with audio support provided
        // perfect audio playback quality in the absence of video."
        // Audio alone is ~1.4 Mbps — trivial for every network here.
        let track = AudioTrack {
            duration_ms: 2_000,
            ..AudioTrack::benchmark()
        };
        let total = track.total_bytes();
        for net in [NetworkConfig::lan_desktop(), NetworkConfig::wan_desktop()] {
            let mut sys = ThincSystem::new(&net, 256, 192);
            let start = thinc_net::time::SimTime(10_000);
            let mut t = start;
            for _ in 0..20 {
                let pcm = track.pcm((t - start).as_micros() / 1000, 100);
                sys.audio(t, &pcm);
                t = t + thinc_net::time::SimDuration::from_millis(100);
            }
            sys.drain(t);
            let got = sys.av_stats().audio_bytes;
            assert!(
                got >= total * 9 / 10,
                "{}: only {got}/{total} audio bytes delivered",
                net.name
            );
        }
    }

    #[test]
    fn pda_scaling_keeps_quality_cuts_data() {
        let pda = NetworkConfig::pda_802_11g();
        let clip = short_clip();
        let full = run_av(
            &mut ThincSystem::new(&pda, 512, 384),
            &clip,
            None,
            fullscreen(),
        );
        let scaled = run_av(
            &mut ThincSystem::with_viewport(&pda, 512, 384, 160, 120),
            &clip,
            None,
            fullscreen(),
        );
        assert!(scaled.quality > 0.99, "{}", scaled.quality);
        assert!(
            scaled.data_mb * 3.0 < full.data_mb,
            "scaled {} vs full {}",
            scaled.data_mb,
            full.data_mb
        );
    }
}
