//! `perfgate`: the reproducible performance harness and regression
//! gate.
//!
//! Runs two suites and emits machine-readable artifacts at the repo
//! root:
//!
//! - **Micro** (`BENCH_raster.json`): every hot raster/codec kernel
//!   timed against its retained byte-exact naive reference (the same
//!   pairs the equivalence property tests compare), reporting ns/op,
//!   ops/s, MB/s and the speedup ratio.
//! - **Macro** (`BENCH_e2e.json`): the web page-load and A/V playback
//!   workloads through the full THINC pipeline, reporting latency,
//!   bytes, per-command-type wire-size p50/p99 (via thinc-telemetry),
//!   scheduler flush-latency quantiles, and a parallel-flush
//!   determinism check.
//!
//! The gate compares against `crates/bench/perf_baseline.json`:
//! kernel *speedup ratios* (machine-independent) and the
//! virtual-time-deterministic macro metrics must not regress by more
//! than `--threshold` (default 0.15). Absolute ns/op numbers are
//! reported but never gated. On top of the relative baseline, the
//! four rewritten straggler kernels (`bitmap_rect`, `convert`,
//! `yuv_pack`, `scale_fant`) carry absolute ≥3x speedup floors that
//! fail the gate outright.
//!
//! Usage:
//!   perfgate [--quick] [--threshold 0.15] [--write-baseline]

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use thinc_baselines::traits::RemoteDisplay;
use thinc_bench::thinc_system::ThincSystem;
use thinc_bench::{avbench, webbench};
use thinc_compress::{lzss, pnglike, rle, Scratch};
use thinc_core::server::ServerConfig;
use thinc_core::session::Credentials;
use thinc_core::SharedSession;
use thinc_display::drawable::DrawableStore;
use thinc_display::driver::VideoDriver;
use thinc_display::request::DrawRequest;
use thinc_display::SCREEN;
use thinc_net::link::NetworkConfig;
use thinc_net::tcp::{TcpParams, TcpPipe};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::{Direction, PacketTrace};
use thinc_raster::yuv::YuvFormat;
use thinc_raster::{reference, Color, Framebuffer, PixelFormat, Rect, ScaleFilter, YuvFrame};
use thinc_telemetry::CommandKind;
use thinc_workloads::video::{AudioTrack, VideoClip};
use thinc_workloads::web::WebWorkload;

/// Allocation-counting wrapper around the system allocator. The
/// fan-out macro reports allocator calls per flush epoch: the
/// encode-once path reuses per-client compression and encode buffers
/// across `flush_all` rounds, so steady-state flushing should stay
/// near O(equivalence classes), not O(clients × commands).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Options {
    quick: bool,
    threshold: f64,
    write_baseline: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        threshold: 0.15,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--write-baseline" => opts.write_baseline = true,
            "--threshold" => {
                let v = args.next().expect("--threshold needs a value");
                opts.threshold = v.parse().expect("--threshold must be a number");
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: perfgate [--quick] [--threshold F] [--write-baseline]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Deterministic pseudo-random bytes (same generator as the
/// equivalence tests).
fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn noise_fb(w: u32, h: u32, format: PixelFormat, seed: u64) -> Framebuffer {
    let mut fb = Framebuffer::new(w, h, format);
    let bytes = noise(w as usize * h as usize * format.bytes_per_pixel(), seed);
    fb.put_raw(&Rect::new(0, 0, w, h), &bytes);
    fb
}

/// Desktop-like image bytes: flat regions, a window, text speckles —
/// the content class THINC RAW updates actually carry.
fn desktop_bytes(w: usize, h: usize, bpp: usize) -> Vec<u8> {
    let mut img = vec![200u8; w * h * bpp];
    for y in h / 8..h * 3 / 4 {
        for x in w / 8..w * 7 / 8 {
            let off = (y * w + x) * bpp;
            img[off..off + bpp].fill(255);
        }
    }
    for i in (0..img.len()).step_by(97) {
        img[i] = 0;
    }
    img
}

/// Times `f`, returning the best-of-samples nanoseconds per call.
fn time_ns<F: FnMut()>(quick: bool, mut f: F) -> f64 {
    f(); // Warmup.
    let (samples, budget_ns) = if quick { (3, 20_000_000u128) } else { (5, 100_000_000u128) };
    // Slow ops (several ms each) would get only a couple of
    // iterations out of the quick budget, which is too noisy to gate
    // on — always take enough iterations for a stable best-of.
    let min_iters = 10u64;
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            f();
            iters += 1;
            if iters >= min_iters && start.elapsed().as_nanos() >= budget_ns {
                break;
            }
        }
        let per = start.elapsed().as_nanos() as f64 / iters as f64;
        if per < best {
            best = per;
        }
    }
    best
}

struct KernelResult {
    name: &'static str,
    bytes: usize,
    ref_ns: f64,
    opt_ns: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.ref_ns / self.opt_ns
    }
    fn opt_mb_s(&self) -> f64 {
        self.bytes as f64 / self.opt_ns * 1e9 / 1e6
    }
    fn ref_mb_s(&self) -> f64 {
        self.bytes as f64 / self.ref_ns * 1e9 / 1e6
    }
    fn ops_s(&self) -> f64 {
        1e9 / self.opt_ns
    }
}

/// Times one reference/optimized pair over the same input.
fn kernel<R: FnMut(), O: FnMut()>(
    quick: bool,
    name: &'static str,
    bytes: usize,
    r: R,
    o: O,
) -> KernelResult {
    let ref_ns = time_ns(quick, r);
    let opt_ns = time_ns(quick, o);
    let k = KernelResult { name, bytes, ref_ns, opt_ns };
    eprintln!(
        "  {name:<14} ref {ref_ns:>10.0} ns  opt {opt_ns:>10.0} ns  {:>7.2}x  {:>8.1} MB/s",
        k.speedup(),
        k.opt_mb_s()
    );
    k
}

fn micro_suite(quick: bool) -> Vec<KernelResult> {
    eprintln!("== micro kernels (reference vs optimized) ==");
    let (w, h) = (640u32, 480u32);
    let fmt = PixelFormat::Rgb888;
    let area_bytes = (w * h) as usize * 3;
    let rect = Rect::new(0, 0, w, h);
    let mut out = Vec::new();

    // fill_rect: non-uniform color (the doubling-splat path).
    let mut fb_r = noise_fb(w, h, fmt, 1);
    let mut fb_o = fb_r.clone();
    let color = Color::rgb(17, 34, 51);
    out.push(kernel(
        quick,
        "fill_rect",
        area_bytes,
        || reference::fill_rect(black_box(&mut fb_r), &rect, color),
        || black_box(&mut fb_o).fill_rect(&rect, color),
    ));

    // tile_rect: 16x12 tile across the screen, phase-unaligned.
    let tile = noise_fb(16, 12, fmt, 3);
    let trect = Rect::new(-5, -3, w, h);
    let mut fb_r = noise_fb(w, h, fmt, 1);
    let mut fb_o = fb_r.clone();
    out.push(kernel(
        quick,
        "tile_rect",
        area_bytes,
        || reference::tile_rect(black_box(&mut fb_r), &trect, &tile),
        || black_box(&mut fb_o).tile_rect(&trect, &tile),
    ));

    // bitmap_rect: glyph-like bits — mostly background with solid
    // foreground runs and a few ragged edges, as text rendering
    // produces (uniform noise would be the span-decoder's worst case
    // and nothing like real stipples).
    let bits: Vec<u8> = noise((w as usize).div_ceil(8) * h as usize, 5)
        .into_iter()
        .map(|b| match b % 8 {
            0..=3 => 0x00,
            4..=5 => 0xFF,
            6 => 0xF0,
            _ => b,
        })
        .collect();
    let mut fb_r = noise_fb(w, h, fmt, 1);
    let mut fb_o = fb_r.clone();
    out.push(kernel(
        quick,
        "bitmap_rect",
        area_bytes,
        || reference::bitmap_rect(black_box(&mut fb_r), &rect, &bits, Color::BLACK, Some(Color::WHITE)),
        || black_box(&mut fb_o).bitmap_rect(&rect, &bits, Color::BLACK, Some(Color::WHITE)),
    ));

    // copy_rect: the 1-pixel scroll (the hottest COPY in practice).
    let src = Rect::new(0, 1, w, h - 1);
    let mut fb_r = noise_fb(w, h, fmt, 1);
    let mut fb_o = fb_r.clone();
    out.push(kernel(
        quick,
        "copy_rect",
        area_bytes,
        || reference::copy_rect(black_box(&mut fb_r), &src, 0, 0),
        || black_box(&mut fb_o).copy_rect(&src, 0, 0),
    ));

    // convert: palette expansion through the 256-entry LUT path.
    let idx = noise_fb(w, h, PixelFormat::Indexed8, 7);
    out.push(kernel(
        quick,
        "convert",
        (w * h) as usize * 4,
        || drop(black_box(reference::convert(&idx, PixelFormat::Rgba8888))),
        || drop(black_box(idx.convert(PixelFormat::Rgba8888))),
    ));

    // yuv_pack: RGB -> YV12 with 2x2 chroma averaging.
    let rgb = noise_fb(w, h, fmt, 9);
    out.push(kernel(
        quick,
        "yuv_pack",
        area_bytes,
        || drop(black_box(reference::yuv_from_rgb(&rgb, &rect, YuvFormat::Yv12))),
        || drop(black_box(YuvFrame::from_rgb(&rgb, &rect, YuvFormat::Yv12))),
    ));

    // scale_fant: 2x downscale (the PDA viewport case).
    let big = noise_fb(w, h, fmt, 11);
    out.push(kernel(
        quick,
        "scale_fant",
        area_bytes,
        || drop(black_box(reference::scale_fant(&big, w / 2, h / 2))),
        || drop(black_box(thinc_raster::scale_image(&big, w / 2, h / 2, ScaleFilter::Fant))),
    ));

    // Codecs over desktop-like RAW content.
    let img = desktop_bytes(w as usize, h as usize / 4, 3);
    out.push(kernel(
        quick,
        "rle",
        img.len(),
        || drop(black_box(thinc_compress::reference::rle_compress(&img))),
        || drop(black_box(rle::compress(&img))),
    ));
    out.push(kernel(
        quick,
        "pixel_rle",
        img.len(),
        || drop(black_box(thinc_compress::reference::rle_compress_symbols(&img, 3))),
        || drop(black_box(rle::compress_symbols(&img, 3))),
    ));
    out.push(kernel(
        quick,
        "lzss",
        img.len(),
        || drop(black_box(thinc_compress::reference::lzss_compress(&img))),
        || drop(black_box(lzss::compress(&img))),
    ));
    let stride = w as usize * 3;
    let mut scratch = Scratch::new();
    out.push(kernel(
        quick,
        "pnglike",
        img.len(),
        || drop(black_box(thinc_compress::reference::pnglike_compress(&img, 3, stride))),
        || {
            black_box(pnglike::compress_with(&img, 3, stride, &mut scratch).len());
        },
    ));
    out
}

struct CommandStats {
    kind: CommandKind,
    count: u64,
    bytes: u64,
    p50_bytes: u64,
    p99_bytes: u64,
}

struct WebStats {
    pages: usize,
    avg_latency_s: f64,
    avg_page_kb: f64,
    verified: bool,
    wall_ms: f64,
    commands: Vec<CommandStats>,
    flush_p50_us: u64,
    flush_p99_us: u64,
}

struct VideoStats {
    quality: f64,
    data_mb: f64,
    frames_delivered: u32,
    frames_dropped: u32,
    wall_ms: f64,
}

fn web_suite(_quick: bool) -> WebStats {
    // Same page count in both modes: the macro run is virtual-time
    // (milliseconds of wall clock), and quick/full must produce the
    // same deterministic numbers for the baseline gate to apply.
    let pages = 6;
    eprintln!("== macro: web page loads ({pages} pages) ==");
    let lan = NetworkConfig::lan_desktop();
    let mut sys = ThincSystem::new(&lan, 256, 192);
    let wl = WebWorkload::new(256, 192, 2005);
    let wall = Instant::now();
    let res = webbench::run_web(&mut sys, &wl, pages);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let tel = sys.session_telemetry();
    let commands = tel
        .protocol
        .rows()
        .iter()
        .map(|r| {
            let h = tel.protocol.size_histogram(r.kind);
            CommandStats {
                kind: r.kind,
                count: r.count,
                bytes: r.bytes,
                p50_bytes: h.quantile(0.5),
                p99_bytes: h.quantile(0.99),
            }
        })
        .collect();
    let stats = WebStats {
        pages,
        avg_latency_s: res.avg_latency_s,
        avg_page_kb: res.avg_page_kb,
        verified: sys.verified(),
        wall_ms,
        commands,
        flush_p50_us: tel.scheduler.flush_latency_us().quantile(0.5),
        flush_p99_us: tel.scheduler.flush_latency_us().quantile(0.99),
    };
    eprintln!(
        "  latency {:.3}s  page {:.1} KB  verified {}  wall {:.0} ms",
        stats.avg_latency_s, stats.avg_page_kb, stats.verified, stats.wall_ms
    );
    stats
}

fn video_suite(_quick: bool) -> VideoStats {
    // Fixed clip length for the same reason as `web_suite`.
    let ms = 2_000;
    eprintln!("== macro: a/v playback ({ms} ms clip) ==");
    let lan = NetworkConfig::lan_desktop();
    let clip = VideoClip::short(ms);
    let audio = AudioTrack { duration_ms: ms, ..AudioTrack::benchmark() };
    let mut sys = ThincSystem::new(&lan, 352, 240);
    let wall = Instant::now();
    let res = avbench::run_av(&mut sys, &clip, Some(&audio), Rect::new(0, 0, 352, 240));
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "  quality {:.1}%  data {:.2} MB  frames {}/{}  wall {:.0} ms",
        res.quality * 100.0,
        res.data_mb,
        res.frames.0,
        res.frames.0 + res.frames.1,
        wall_ms
    );
    VideoStats {
        quality: res.quality,
        data_mb: res.data_mb,
        frames_delivered: res.frames.0,
        frames_dropped: res.frames.1,
        wall_ms,
    }
}

struct CacheStats {
    rounds: usize,
    cached_kb_per_round: f64,
    uncached_kb_per_round: f64,
    savings_ratio: f64,
    hits: u64,
    byte_exact: bool,
    verified: bool,
}

/// The revision-3 content-cache macro: a window-switch workload that
/// cycles between a few fixed full-viewport window images — the
/// canonical repeated-content pattern — once with the cache enabled
/// and once with it disabled. Both runs must converge byte-exact to
/// the same framebuffer; the gate is on the cached bytes-per-round
/// and the cached/uncached savings ratio, both virtual-time
/// deterministic (see `docs/CACHE.md`).
fn cache_suite() -> CacheStats {
    const CW: u32 = 256;
    const CH: u32 = 192;
    let rounds = 12usize;
    let windows = 3usize;
    eprintln!("== macro: content cache ({rounds} window switches over {windows} windows) ==");
    let window_image = |w: usize| -> Vec<u8> {
        let mut img = desktop_bytes(CW as usize, CH as usize, 3);
        // Distinct per-window content: salt a sparse speckle pattern.
        for i in (w..img.len()).step_by(53 + w * 7) {
            img[i] = (w * 67) as u8;
        }
        img
    };
    let run = |budget: Option<u64>| -> ThincSystem {
        let cfg = ServerConfig {
            width: CW,
            height: CH,
            cache_budget_bytes: budget,
            ..ServerConfig::default()
        };
        let mut sys = ThincSystem::with_config(&NetworkConfig::lan_desktop(), cfg, (CW, CH));
        let mut now = SimTime::ZERO;
        for r in 0..rounds {
            sys.process(
                now,
                vec![DrawRequest::PutImage {
                    target: SCREEN,
                    rect: Rect::new(0, 0, CW, CH),
                    data: window_image(r % windows),
                }],
            );
            now = sys.drain(now) + SimDuration::from_millis(5);
        }
        sys
    };
    let cached = run(Some(thinc_protocol::DEFAULT_CACHE_BUDGET));
    let uncached = run(None);
    let per_round = |sys: &ThincSystem| {
        sys.trace().bytes(Direction::Down) as f64 / rounds as f64 / 1024.0
    };
    let stats = CacheStats {
        rounds,
        cached_kb_per_round: per_round(&cached),
        uncached_kb_per_round: per_round(&uncached),
        savings_ratio: per_round(&uncached) / per_round(&cached),
        hits: cached.client().cache_hits(),
        byte_exact: cached.client().client().framebuffer().data()
            == uncached.client().client().framebuffer().data(),
        verified: cached.verified() && uncached.verified(),
    };
    eprintln!(
        "  cached {:.1} KB/round  uncached {:.1} KB/round  {:.2}x saved  {} hits  \
         byte-exact {}",
        stats.cached_kb_per_round,
        stats.uncached_kb_per_round,
        stats.savings_ratio,
        stats.hits,
        stats.byte_exact,
    );
    stats
}

/// Verifies the shared session's parallel flush is bit-identical
/// across worker counts (see `crates/core/tests/parallel_flush.rs`
/// for the exhaustive version). Returns the worker counts checked.
fn parallel_check() -> (Vec<usize>, bool) {
    eprintln!("== parallel flush determinism ==");
    let run = |workers: usize| {
        let mut s =
            SharedSession::new(96, 64, PixelFormat::Rgb888, "host").with_workers(workers);
        s.auth_mut().enable_sharing("pw");
        s.attach(&Credentials::Owner { user: "host".into() }, 96, 64).unwrap();
        for i in 0..2 {
            s.attach(
                &Credentials::Peer { user: format!("p{i}"), password: "pw".into() },
                48,
                32,
            )
            .unwrap();
        }
        let store = DrawableStore::new(96, 64, PixelFormat::Rgb888);
        s.put_image(&store, SCREEN, Rect::new(0, 0, 96, 48), &noise(96 * 48 * 3, 17));
        s.solid_fill(&store, SCREEN, Rect::new(4, 4, 30, 30), Color::rgb(1, 2, 3));
        let mut links: Vec<(TcpPipe, PacketTrace)> = (0..3)
            .map(|_| {
                (
                    TcpPipe::new(TcpParams {
                        bandwidth_bps: 8_000_000,
                        rtt: SimDuration::from_millis(5),
                        ..TcpParams::default()
                    }),
                    PacketTrace::new(),
                )
            })
            .collect();
        let mut all = Vec::new();
        for round in 0..50u64 {
            all.push(s.flush_all(SimTime(round * 4_000), &mut links));
        }
        all
    };
    let serial = run(1);
    let workers = vec![1usize, 2, 4];
    let ok = workers[1..].iter().all(|&n| run(n) == serial);
    eprintln!("  workers {workers:?}  deterministic {ok}");
    (workers, ok)
}

// ---------------------------------------------------------------
// Fan-out macro: encode-once broadcast through the sharded manager.

const FAN_W: u32 = 160;
const FAN_H: u32 = 120;
const FAN_DRAW_EPOCHS: u64 = 24;
const FAN_SETTLE_EPOCHS: u64 = 80;
const FAN_EPOCH_US: u64 = 80_000;
/// Draw epochs measured for the allocation count (past warm-up, so
/// per-client scratch buffers have reached steady-state capacity).
const FAN_ALLOC_WINDOW: std::ops::Range<u64> = 8..FAN_DRAW_EPOCHS;

/// One band of desktop-like content, salted per epoch so every epoch
/// really transfers fresh pixels.
fn band_bytes(w: usize, rows: usize, salt: u64) -> Vec<u8> {
    let mut img = desktop_bytes(w, rows, 3);
    for i in ((salt as usize * 13) % 31..img.len()).step_by(61) {
        img[i] = (salt.wrapping_mul(41)) as u8;
    }
    img
}

/// One fan-out scenario run. All numbers that gate are virtual-time
/// deterministic; wall time and allocation counts are environmental.
struct FanoutRun {
    /// Per-client FNV digest over (arrival, encoded message) streams.
    digests: Vec<u64>,
    total_bytes: u64,
    sim_s: f64,
    flush_p99_us: u64,
    /// min/max delivered bytes over the clean (fault-free LAN) cohort.
    fairness: f64,
    hit_ratio: f64,
    bytes_amortized: u64,
    shared_sends: u64,
    payload_encodes: u64,
    allocs_per_epoch: f64,
    /// Peak number of simultaneously degraded clients observed.
    degraded_peak: usize,
    /// Clients whose framebuffer converged byte-exact (verify runs).
    converged: usize,
    /// All clients drained, promoted to Full, nothing pending.
    settled: bool,
    wall_ms: f64,
}

/// Drives `clients` viewers of one shared screen through the sharded
/// manager: mixed LAN / WAN / hostile (seeded bandwidth-collapse
/// windows) cohorts, adaptive degradation enabled, every client an
/// identity viewport on the same screen. When `verify` is set, every
/// message is additionally framed, run through the wire disturbance
/// model, and decoded by a real `StreamClient` whose framebuffer must
/// converge byte-exact. The epoch schedule is fixed (no data-dependent
/// early exit), so two runs differing only in (shards, workers) must
/// produce bit-identical streams.
fn fanout_run(clients: usize, shards: usize, workers: usize, verify: bool) -> FanoutRun {
    use thinc_client::StreamClient;
    use thinc_core::degradation::{DegradationConfig, DegradationLevel};
    use thinc_core::ShardedManager;
    use thinc_net::fault::FaultPlan;
    use thinc_protocol::hash::{fnv64_update, FNV64_OFFSET};
    use thinc_protocol::wire::{encode_message_into, FrameEncoder};
    use thinc_protocol::{Message, PROTOCOL_VERSION};

    let link_for = |i: usize| -> (TcpPipe, PacketTrace) {
        let seed = 0xFA0u64 + i as u64;
        let cfg = match i % 8 {
            0..=3 => NetworkConfig::lan_desktop(),
            4 | 5 => NetworkConfig::wan_desktop(),
            // Hostile cohorts: seeded delay-only bandwidth collapses
            // deep enough to force the degradation ladder, windowed
            // so every client recovers and re-promotes before drain.
            6 => NetworkConfig::lan_desktop().with_faults(
                FaultPlan::seeded(seed).with_collapse(
                    SimTime(400_000),
                    SimDuration::from_millis(600),
                    0.002,
                ),
            ),
            _ => NetworkConfig::wan_desktop().with_faults(
                FaultPlan::seeded(seed).with_collapse(
                    SimTime(800_000),
                    SimDuration::from_millis(800),
                    0.001,
                ),
            ),
        };
        (cfg.connect().down, PacketTrace::new())
    };

    let mut session = SharedSession::new(FAN_W, FAN_H, PixelFormat::Rgb888, "host")
        .with_workers(workers)
        .with_degradation(DegradationConfig {
            degrade_after: 1,
            promote_after: 1,
            ..DegradationConfig::default()
        });
    session.auth_mut().enable_sharing("pw");
    let mut m = ShardedManager::new(session, shards);
    m.attach(&Credentials::Owner { user: "host".into() }, FAN_W, FAN_H, link_for(0))
        .expect("owner attach");
    for i in 1..clients {
        m.attach(
            &Credentials::Peer { user: format!("c{i}"), password: "pw".into() },
            FAN_W,
            FAN_H,
            link_for(i),
        )
        .expect("peer attach");
    }
    let ids = m.session().client_ids();
    assert!(
        ids.iter().enumerate().all(|(i, id)| id.0 as usize == i),
        "client ids must be dense for index addressing"
    );

    let mut streams: Vec<StreamClient> = Vec::new();
    let mut encoders: Vec<FrameEncoder> = Vec::new();
    if verify {
        for _ in 0..clients {
            let mut c = StreamClient::new(FAN_W, FAN_H, PixelFormat::Rgb888);
            c.feed(&thinc_protocol::wire::encode_message(&Message::ServerHello {
                version: PROTOCOL_VERSION,
                width: FAN_W,
                height: FAN_H,
                depth: 24,
            }));
            streams.push(c);
            encoders.push(FrameEncoder::with_revision(PROTOCOL_VERSION));
        }
    }

    let mut store = DrawableStore::new(FAN_W, FAN_H, PixelFormat::Rgb888);
    let mut digests = vec![FNV64_OFFSET; clients];
    let mut ebuf = Vec::new();
    let mut measured_allocs = 0u64;
    let mut degraded_peak = 0usize;
    let mut settle_screen: Option<Framebuffer> = None;
    let wall = Instant::now();

    for epoch in 0..FAN_DRAW_EPOCHS + FAN_SETTLE_EPOCHS {
        let now = SimTime(100_000 + epoch * FAN_EPOCH_US);
        if epoch < FAN_DRAW_EPOCHS {
            // Same-screen broadcast workload: a fresh band of desktop
            // content per epoch, with fills and scroll-like copies
            // mixed in. Everything is mirrored into the reference
            // screen the convergence check compares against.
            let y = ((epoch * 28) % (FAN_H as u64 - 30)) as i32;
            let rect = Rect::new(0, y, FAN_W, 30);
            let band = band_bytes(FAN_W as usize, 30, epoch);
            store.screen_mut().put_raw(&rect, &band);
            m.session_mut().put_image(&store, SCREEN, rect, &band);
            if epoch % 3 == 1 {
                let r = Rect::new(8 + (epoch as i32 * 5) % 64, 8, 48, 20);
                let c = Color::rgb(
                    epoch.wrapping_mul(31) as u8,
                    epoch.wrapping_mul(17) as u8,
                    200,
                );
                store.screen_mut().fill_rect(&r, c);
                m.session_mut().solid_fill(&store, SCREEN, r, c);
            }
            if epoch % 4 == 2 {
                let src = Rect::new(0, 0, 64, 40);
                store.screen_mut().copy_rect(&src, 80, 60);
                m.session_mut().copy_area(&store, SCREEN, SCREEN, src, 80, 60);
            }
        } else {
            // Settle phase: no new content; repay degradation debt
            // until every client holds the final screen.
            let screen =
                settle_screen.get_or_insert_with(|| store.screen().clone());
            m.session_mut().repay_refreshes(screen);
        }
        let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
        let out = m.flush_epoch(now);
        if FAN_ALLOC_WINDOW.contains(&epoch) {
            measured_allocs += ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
        }
        for (id, msgs) in out {
            let idx = id.0 as usize;
            if msgs.is_empty() {
                if verify {
                    if let Some((pipe, _)) = m.link_mut(id) {
                        if let Some(tail) = pipe.flush_disturbed() {
                            streams[idx].feed(&tail);
                        }
                    }
                }
                continue;
            }
            for (arrival, msg) in msgs {
                encode_message_into(&msg, &mut ebuf);
                digests[idx] = fnv64_update(digests[idx], &arrival.0.to_le_bytes());
                digests[idx] = fnv64_update(digests[idx], &ebuf);
                if verify {
                    let bytes = encoders[idx].encode(&msg);
                    let (pipe, _) = m.link_mut(id).expect("attached");
                    for seg in pipe.disturb(arrival, bytes) {
                        streams[idx].feed(&seg);
                    }
                }
            }
        }
        if epoch % 6 == 5 {
            let degraded = ids
                .iter()
                .filter(|&&id| {
                    m.session().client_degradation_level(id) != DegradationLevel::Full
                })
                .count();
            degraded_peak = degraded_peak.max(degraded);
        }
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let settled = ids.iter().enumerate().all(|(idx, &id)| {
        m.session().backlog(id) == 0
            && m.session().client_degradation_level(id) == DegradationLevel::Full
            && (!verify
                || (!streams[idx].needs_refresh() && streams[idx].pending_bytes() == 0))
    });
    let converged = if verify {
        streams
            .iter()
            .filter(|s| s.client().framebuffer().data() == store.screen().data())
            .count()
    } else {
        0
    };

    let total_bytes: u64 = ids.iter().map(|&id| m.session().client_sent_bytes(id)).sum();
    let mut latency = thinc_telemetry::Histogram::exponential(100, 2, 15);
    for &id in &ids {
        if let Some(h) = m.session().client_flush_latency(id) {
            latency.merge_from(h);
        }
    }
    let clean_bytes: Vec<u64> = (0..clients)
        .filter(|i| i % 8 <= 3)
        .map(|i| m.session().client_sent_bytes(ids[i]))
        .collect();
    let fairness = *clean_bytes.iter().min().expect("clean cohort nonempty") as f64
        / (*clean_bytes.iter().max().expect("clean cohort nonempty")).max(1) as f64;
    let (mut shared_sends, mut payload_encodes, mut bytes_amortized) = (0u64, 0u64, 0u64);
    for s in 0..m.shard_count() {
        let sm = m.shard_metrics(s);
        shared_sends += sm.shared_sends();
        payload_encodes += sm.payload_encodes();
        bytes_amortized += sm.bytes_amortized();
    }
    let hit_ratio = if shared_sends == 0 {
        0.0
    } else {
        (shared_sends - payload_encodes.min(shared_sends)) as f64 / shared_sends as f64
    };

    FanoutRun {
        digests,
        total_bytes,
        sim_s: ((FAN_DRAW_EPOCHS + FAN_SETTLE_EPOCHS) * FAN_EPOCH_US) as f64 / 1e6,
        flush_p99_us: latency.quantile(0.99),
        fairness,
        hit_ratio,
        bytes_amortized,
        shared_sends,
        payload_encodes,
        allocs_per_epoch: measured_allocs as f64
            / (FAN_ALLOC_WINDOW.end - FAN_ALLOC_WINDOW.start) as f64,
        degraded_peak,
        converged,
        settled,
        wall_ms,
    }
}

struct FanoutStats {
    clients: usize,
    shards: usize,
    workers: usize,
    main: FanoutRun,
    /// (shards, workers, bit-identical) for every matrix config.
    matrix: Vec<(usize, usize, bool)>,
}

impl FanoutStats {
    fn deterministic(&self) -> bool {
        self.matrix.iter().all(|&(_, _, ok)| ok)
    }
    fn sim_mb_s(&self) -> f64 {
        self.main.total_bytes as f64 / self.main.sim_s / 1e6
    }
}

fn fanout_suite(quick: bool) -> FanoutStats {
    let clients = if quick { 256 } else { 1024 };
    let (shards, workers) = (8usize, 4usize);
    eprintln!("== macro: broadcast fan-out ({clients} clients, {shards} shards, {workers} workers) ==");
    let main = fanout_run(clients, shards, workers, true);
    eprintln!(
        "  delivered {:.1} MB in {:.1}s sim ({:.1} MB/s)  wall {:.0} ms",
        main.total_bytes as f64 / 1e6,
        main.sim_s,
        main.total_bytes as f64 / main.sim_s / 1e6,
        main.wall_ms,
    );
    eprintln!(
        "  plane: {} sends over {} encodes  hit {:.3}  amortized {:.1} MB",
        main.shared_sends,
        main.payload_encodes,
        main.hit_ratio,
        main.bytes_amortized as f64 / 1e6,
    );
    eprintln!(
        "  flush p99 {} us  fairness {:.4}  degraded peak {}  allocs/epoch {:.0}  \
         converged {}/{}",
        main.flush_p99_us,
        main.fairness,
        main.degraded_peak,
        main.allocs_per_epoch,
        main.converged,
        clients,
    );
    let mut matrix = Vec::new();
    for (s, w) in [(1usize, 1usize), (1, 4), (2, 1), (2, 4), (8, 1)] {
        let r = fanout_run(clients, s, w, false);
        let ok = r.digests == main.digests;
        eprintln!("  shards={s} workers={w}  bit-identical {ok}");
        matrix.push((s, w, ok));
    }
    matrix.push((shards, workers, true));
    FanoutStats { clients, shards, workers, main, matrix }
}

// ---------------------------------------------------------------
// JSON output (hand-rolled: the workspace is dependency-free).

fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn raster_json(mode: &str, kernels: &[KernelResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"thinc-perfgate-raster-v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"bytes_per_op\": {}, \"ref_ns_per_op\": {}, \
             \"opt_ns_per_op\": {}, \"ref_mb_s\": {}, \"opt_mb_s\": {}, \"ops_s\": {}, \
             \"speedup\": {}}}",
            k.name,
            k.bytes,
            jf(k.ref_ns),
            jf(k.opt_ns),
            jf(k.ref_mb_s()),
            jf(k.opt_mb_s()),
            jf(k.ops_s()),
            jf(k.speedup()),
        );
        s.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn e2e_json(
    mode: &str,
    web: &WebStats,
    video: &VideoStats,
    cache: &CacheStats,
    par: &(Vec<usize>, bool),
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"thinc-perfgate-e2e-v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"web\": {\n");
    let _ = writeln!(s, "    \"pages\": {},", web.pages);
    let _ = writeln!(s, "    \"avg_latency_s\": {},", jf(web.avg_latency_s));
    let _ = writeln!(s, "    \"avg_page_kb\": {},", jf(web.avg_page_kb));
    let _ = writeln!(s, "    \"verified\": {},", web.verified);
    let _ = writeln!(s, "    \"wall_ms\": {},", jf(web.wall_ms));
    let _ = writeln!(s, "    \"flush_latency_p50_us\": {},", web.flush_p50_us);
    let _ = writeln!(s, "    \"flush_latency_p99_us\": {},", web.flush_p99_us);
    s.push_str("    \"commands\": [\n");
    for (i, c) in web.commands.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"kind\": \"{}\", \"count\": {}, \"bytes\": {}, \
             \"p50_bytes\": {}, \"p99_bytes\": {}}}",
            c.kind.name(),
            c.count,
            c.bytes,
            c.p50_bytes,
            c.p99_bytes,
        );
        s.push_str(if i + 1 < web.commands.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"video\": {\n");
    let _ = writeln!(s, "    \"quality\": {},", jf(video.quality));
    let _ = writeln!(s, "    \"data_mb\": {},", jf(video.data_mb));
    let _ = writeln!(s, "    \"frames_delivered\": {},", video.frames_delivered);
    let _ = writeln!(s, "    \"frames_dropped\": {},", video.frames_dropped);
    let _ = writeln!(s, "    \"wall_ms\": {}", jf(video.wall_ms));
    s.push_str("  },\n");
    s.push_str("  \"cache\": {\n");
    let _ = writeln!(s, "    \"rounds\": {},", cache.rounds);
    let _ = writeln!(s, "    \"cached_kb_per_round\": {},", jf(cache.cached_kb_per_round));
    let _ = writeln!(s, "    \"uncached_kb_per_round\": {},", jf(cache.uncached_kb_per_round));
    let _ = writeln!(s, "    \"savings_ratio\": {},", jf(cache.savings_ratio));
    let _ = writeln!(s, "    \"hits\": {},", cache.hits);
    let _ = writeln!(s, "    \"byte_exact\": {},", cache.byte_exact);
    let _ = writeln!(s, "    \"verified\": {}", cache.verified);
    s.push_str("  },\n");
    s.push_str("  \"parallel_flush\": {\n");
    let workers: Vec<String> = par.0.iter().map(|w| w.to_string()).collect();
    let _ = writeln!(s, "    \"workers_checked\": [{}],", workers.join(", "));
    let _ = writeln!(s, "    \"deterministic\": {}", par.1);
    s.push_str("  }\n}\n");
    s
}

fn fanout_json(mode: &str, fan: &FanoutStats) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"thinc-perfgate-fanout-v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"clients\": {},", fan.clients);
    let _ = writeln!(s, "  \"shards\": {},", fan.shards);
    let _ = writeln!(s, "  \"workers\": {},", fan.workers);
    let _ = writeln!(s, "  \"sim_s\": {},", jf(fan.main.sim_s));
    let _ = writeln!(s, "  \"total_bytes\": {},", fan.main.total_bytes);
    let _ = writeln!(s, "  \"sim_mb_s\": {},", jf(fan.sim_mb_s()));
    let _ = writeln!(s, "  \"flush_p99_us\": {},", fan.main.flush_p99_us);
    let _ = writeln!(s, "  \"fairness\": {},", jf(fan.main.fairness));
    let _ = writeln!(s, "  \"shared_sends\": {},", fan.main.shared_sends);
    let _ = writeln!(s, "  \"payload_encodes\": {},", fan.main.payload_encodes);
    let _ = writeln!(s, "  \"hit_ratio\": {},", jf(fan.main.hit_ratio));
    let _ = writeln!(s, "  \"bytes_amortized\": {},", fan.main.bytes_amortized);
    let _ = writeln!(s, "  \"allocs_per_epoch\": {},", jf(fan.main.allocs_per_epoch));
    let _ = writeln!(s, "  \"degraded_peak\": {},", fan.main.degraded_peak);
    let _ = writeln!(s, "  \"converged\": {},", fan.main.converged);
    let _ = writeln!(s, "  \"settled\": {},", fan.main.settled);
    let _ = writeln!(s, "  \"wall_ms\": {},", jf(fan.main.wall_ms));
    s.push_str("  \"determinism_matrix\": [\n");
    for (i, (sh, w, ok)) in fan.matrix.iter().enumerate() {
        let _ = write!(s, "    {{\"shards\": {sh}, \"workers\": {w}, \"bit_identical\": {ok}}}");
        s.push_str(if i + 1 < fan.matrix.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"deterministic\": {}", fan.deterministic());
    s.push_str("}\n");
    s
}

// ---------------------------------------------------------------
// Baseline gating.

/// One gated metric: measured value plus regression direction.
struct GateMetric {
    key: String,
    value: f64,
    higher_is_better: bool,
    /// Wall-clock-derived metrics (kernel speedup ratios) jitter with
    /// scheduler noise, so they gate at twice the threshold. The
    /// virtual-time macro metrics are exactly reproducible and gate
    /// at the threshold as given.
    timing_derived: bool,
}

/// Parses the flat `"key": number` baseline map (our own format;
/// written by `--write-baseline`).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some((key_part, val_part)) = line.split_once(':') else { continue };
        let key: String = key_part.trim().trim_matches(|c| c == '"' || c == '{').to_string();
        if key.is_empty() || key == "}" {
            continue;
        }
        let val = val_part.trim().trim_end_matches(',');
        if let Ok(v) = val.parse::<f64>() {
            out.push((key, v));
        }
    }
    out
}

fn baseline_pairs_json(pairs: &[(String, f64)]) -> String {
    let mut s = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let _ = write!(s, "  \"{k}\": {}", jf(*v));
        s.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    s.push_str("}\n");
    s
}

fn main() {
    let opts = parse_args();
    let mode = if opts.quick { "quick" } else { "full" };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/perf_baseline.json");

    let kernels = micro_suite(opts.quick);
    let web = web_suite(opts.quick);
    let video = video_suite(opts.quick);
    let cache = cache_suite();
    let par = parallel_check();
    let fan = fanout_suite(opts.quick);

    std::fs::write(format!("{root}/BENCH_raster.json"), raster_json(mode, &kernels))
        .expect("write BENCH_raster.json");
    std::fs::write(
        format!("{root}/BENCH_e2e.json"),
        e2e_json(mode, &web, &video, &cache, &par),
    )
    .expect("write BENCH_e2e.json");
    std::fs::write(format!("{root}/BENCH_fanout.json"), fanout_json(mode, &fan))
        .expect("write BENCH_fanout.json");
    eprintln!("wrote BENCH_raster.json, BENCH_e2e.json, BENCH_fanout.json");

    let mut metrics: Vec<GateMetric> = kernels
        .iter()
        .map(|k| GateMetric {
            key: format!("kernel.{}.speedup", k.name),
            value: k.speedup(),
            higher_is_better: true,
            timing_derived: true,
        })
        .collect();
    metrics.push(GateMetric {
        key: "web.avg_latency_s".into(),
        value: web.avg_latency_s,
        higher_is_better: false,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: "web.avg_page_kb".into(),
        value: web.avg_page_kb,
        higher_is_better: false,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: "video.quality".into(),
        value: video.quality,
        higher_is_better: true,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: "cache.cached_kb_per_round".into(),
        value: cache.cached_kb_per_round,
        higher_is_better: false,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: "cache.savings_ratio".into(),
        value: cache.savings_ratio,
        higher_is_better: true,
        timing_derived: false,
    });
    // Fan-out metrics are keyed by scale: quick (256 clients) and
    // full (1024) runs measure genuinely different workloads, so each
    // gates against its own baseline entries (`--write-baseline`
    // merges, keeping the other scale's keys).
    let fp = format!("fanout{}", fan.clients);
    metrics.push(GateMetric {
        key: format!("{fp}.sim_mb_s"),
        value: fan.sim_mb_s(),
        higher_is_better: true,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: format!("{fp}.flush_p99_us"),
        value: fan.main.flush_p99_us as f64,
        higher_is_better: false,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: format!("{fp}.fairness"),
        value: fan.main.fairness,
        higher_is_better: true,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: format!("{fp}.hit_ratio"),
        value: fan.main.hit_ratio,
        higher_is_better: true,
        timing_derived: false,
    });
    // Allocation counts depend on allocator internals and worker
    // scheduling; gate with the timing-derived slack.
    metrics.push(GateMetric {
        key: format!("{fp}.allocs_per_epoch"),
        value: fan.main.allocs_per_epoch,
        higher_is_better: false,
        timing_derived: true,
    });

    // The four rewritten straggler kernels carry absolute speedup
    // floors (the "kernel war" acceptance bar): dropping below 3x
    // against the retained reference is a hard failure regardless of
    // what the baseline file says. The other kernels gate only
    // relatively, via the baseline.
    const KERNEL_FLOORS: [(&str, f64); 4] = [
        ("bitmap_rect", 3.0),
        ("convert", 3.0),
        ("yuv_pack", 3.0),
        ("scale_fant", 3.0),
    ];
    for (name, floor) in KERNEL_FLOORS {
        let k = kernels
            .iter()
            .find(|k| k.name == name)
            .unwrap_or_else(|| panic!("floored kernel {name} missing from suite"));
        if k.speedup() < floor {
            eprintln!(
                "FAIL: kernel {name} speedup {:.2}x is below its {floor:.1}x floor",
                k.speedup()
            );
            std::process::exit(1);
        }
    }

    if !par.1 {
        eprintln!("FAIL: parallel flush output differs across worker counts");
        std::process::exit(1);
    }
    if !web.verified {
        eprintln!("FAIL: client framebuffer diverged from server screen");
        std::process::exit(1);
    }
    if !cache.byte_exact || !cache.verified {
        eprintln!("FAIL: cached session is not byte-exact with the uncached session");
        std::process::exit(1);
    }
    if cache.hits == 0 {
        eprintln!("FAIL: content cache resolved zero refs on a repeated-content workload");
        std::process::exit(1);
    }
    if cache.savings_ratio <= 1.0 {
        eprintln!("FAIL: content cache did not reduce bytes per round");
        std::process::exit(1);
    }
    if !fan.deterministic() {
        eprintln!("FAIL: fan-out streams differ across shard/worker counts");
        std::process::exit(1);
    }
    if !fan.main.settled {
        eprintln!("FAIL: fan-out clients did not settle (backlog, level, or pending bytes)");
        std::process::exit(1);
    }
    if fan.main.converged != fan.clients {
        eprintln!(
            "FAIL: only {}/{} fan-out clients converged byte-exact",
            fan.main.converged, fan.clients
        );
        std::process::exit(1);
    }
    if fan.main.hit_ratio <= 0.5 {
        eprintln!(
            "FAIL: shared-payload hit ratio {:.3} <= 0.5 on a same-screen broadcast",
            fan.main.hit_ratio
        );
        std::process::exit(1);
    }
    if fan.main.degraded_peak == 0 {
        eprintln!("FAIL: hostile cohorts never degraded — the fault plans are not biting");
        std::process::exit(1);
    }

    if opts.write_baseline {
        // Merge over the existing file: this run's keys overwrite,
        // keys only the other mode produces (the other fan-out scale)
        // survive.
        let mut merged = std::fs::read_to_string(baseline_path)
            .map(|t| parse_baseline(&t))
            .unwrap_or_default();
        for m in &metrics {
            match merged.iter_mut().find(|(k, _)| *k == m.key) {
                Some(e) => e.1 = m.value,
                None => merged.push((m.key.clone(), m.value)),
            }
        }
        std::fs::write(baseline_path, baseline_pairs_json(&merged)).expect("write baseline");
        eprintln!("baseline written to {baseline_path}");
        return;
    }

    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("no baseline at {baseline_path}; run with --write-baseline to create one");
        return;
    };
    let baseline = parse_baseline(&text);
    let mut regressions = Vec::new();
    for m in &metrics {
        let Some((_, base)) = baseline.iter().find(|(k, _)| *k == m.key) else {
            eprintln!("  (no baseline for {}; skipping)", m.key);
            continue;
        };
        let thr = if m.timing_derived { opts.threshold * 2.0 } else { opts.threshold };
        let bad = if m.higher_is_better {
            m.value < base * (1.0 - thr)
        } else {
            m.value > base * (1.0 + thr)
        };
        if bad {
            regressions.push(format!(
                "{}: measured {:.4} vs baseline {:.4} (threshold {:.0}%)",
                m.key,
                m.value,
                base,
                thr * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        eprintln!("gate OK: no metric regressed more than {:.0}%", opts.threshold * 100.0);
    } else {
        eprintln!("gate FAILED:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
