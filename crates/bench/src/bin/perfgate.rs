//! `perfgate`: the reproducible performance harness and regression
//! gate.
//!
//! Runs two suites and emits machine-readable artifacts at the repo
//! root:
//!
//! - **Micro** (`BENCH_raster.json`): every hot raster/codec kernel
//!   timed against its retained byte-exact naive reference (the same
//!   pairs the equivalence property tests compare), reporting ns/op,
//!   ops/s, MB/s and the speedup ratio.
//! - **Macro** (`BENCH_e2e.json`): the web page-load and A/V playback
//!   workloads through the full THINC pipeline, reporting latency,
//!   bytes, per-command-type wire-size p50/p99 (via thinc-telemetry),
//!   scheduler flush-latency quantiles, and a parallel-flush
//!   determinism check.
//!
//! The gate compares against `crates/bench/perf_baseline.json`:
//! kernel *speedup ratios* (machine-independent) and the
//! virtual-time-deterministic macro metrics must not regress by more
//! than `--threshold` (default 0.15). Absolute ns/op numbers are
//! reported but never gated.
//!
//! Usage:
//!   perfgate [--quick] [--threshold 0.15] [--write-baseline]

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use thinc_baselines::traits::RemoteDisplay;
use thinc_bench::thinc_system::ThincSystem;
use thinc_bench::{avbench, webbench};
use thinc_compress::{lzss, pnglike, rle, Scratch};
use thinc_core::server::ServerConfig;
use thinc_core::session::Credentials;
use thinc_core::SharedSession;
use thinc_display::drawable::DrawableStore;
use thinc_display::driver::VideoDriver;
use thinc_display::request::DrawRequest;
use thinc_display::SCREEN;
use thinc_net::link::NetworkConfig;
use thinc_net::tcp::{TcpParams, TcpPipe};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::{Direction, PacketTrace};
use thinc_raster::yuv::YuvFormat;
use thinc_raster::{reference, Color, Framebuffer, PixelFormat, Rect, ScaleFilter, YuvFrame};
use thinc_telemetry::CommandKind;
use thinc_workloads::video::{AudioTrack, VideoClip};
use thinc_workloads::web::WebWorkload;

struct Options {
    quick: bool,
    threshold: f64,
    write_baseline: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        threshold: 0.15,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--write-baseline" => opts.write_baseline = true,
            "--threshold" => {
                let v = args.next().expect("--threshold needs a value");
                opts.threshold = v.parse().expect("--threshold must be a number");
            }
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: perfgate [--quick] [--threshold F] [--write-baseline]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Deterministic pseudo-random bytes (same generator as the
/// equivalence tests).
fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

fn noise_fb(w: u32, h: u32, format: PixelFormat, seed: u64) -> Framebuffer {
    let mut fb = Framebuffer::new(w, h, format);
    let bytes = noise(w as usize * h as usize * format.bytes_per_pixel(), seed);
    fb.put_raw(&Rect::new(0, 0, w, h), &bytes);
    fb
}

/// Desktop-like image bytes: flat regions, a window, text speckles —
/// the content class THINC RAW updates actually carry.
fn desktop_bytes(w: usize, h: usize, bpp: usize) -> Vec<u8> {
    let mut img = vec![200u8; w * h * bpp];
    for y in h / 8..h * 3 / 4 {
        for x in w / 8..w * 7 / 8 {
            let off = (y * w + x) * bpp;
            img[off..off + bpp].fill(255);
        }
    }
    for i in (0..img.len()).step_by(97) {
        img[i] = 0;
    }
    img
}

/// Times `f`, returning the best-of-samples nanoseconds per call.
fn time_ns<F: FnMut()>(quick: bool, mut f: F) -> f64 {
    f(); // Warmup.
    let (samples, budget_ns) = if quick { (3, 20_000_000u128) } else { (5, 100_000_000u128) };
    // Slow ops (several ms each) would get only a couple of
    // iterations out of the quick budget, which is too noisy to gate
    // on — always take enough iterations for a stable best-of.
    let min_iters = 10u64;
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            f();
            iters += 1;
            if iters >= min_iters && start.elapsed().as_nanos() >= budget_ns {
                break;
            }
        }
        let per = start.elapsed().as_nanos() as f64 / iters as f64;
        if per < best {
            best = per;
        }
    }
    best
}

struct KernelResult {
    name: &'static str,
    bytes: usize,
    ref_ns: f64,
    opt_ns: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.ref_ns / self.opt_ns
    }
    fn opt_mb_s(&self) -> f64 {
        self.bytes as f64 / self.opt_ns * 1e9 / 1e6
    }
    fn ref_mb_s(&self) -> f64 {
        self.bytes as f64 / self.ref_ns * 1e9 / 1e6
    }
    fn ops_s(&self) -> f64 {
        1e9 / self.opt_ns
    }
}

/// Times one reference/optimized pair over the same input.
fn kernel<R: FnMut(), O: FnMut()>(
    quick: bool,
    name: &'static str,
    bytes: usize,
    r: R,
    o: O,
) -> KernelResult {
    let ref_ns = time_ns(quick, r);
    let opt_ns = time_ns(quick, o);
    let k = KernelResult { name, bytes, ref_ns, opt_ns };
    eprintln!(
        "  {name:<14} ref {ref_ns:>10.0} ns  opt {opt_ns:>10.0} ns  {:>7.2}x  {:>8.1} MB/s",
        k.speedup(),
        k.opt_mb_s()
    );
    k
}

fn micro_suite(quick: bool) -> Vec<KernelResult> {
    eprintln!("== micro kernels (reference vs optimized) ==");
    let (w, h) = (640u32, 480u32);
    let fmt = PixelFormat::Rgb888;
    let area_bytes = (w * h) as usize * 3;
    let rect = Rect::new(0, 0, w, h);
    let mut out = Vec::new();

    // fill_rect: non-uniform color (the doubling-splat path).
    let mut fb_r = noise_fb(w, h, fmt, 1);
    let mut fb_o = fb_r.clone();
    let color = Color::rgb(17, 34, 51);
    out.push(kernel(
        quick,
        "fill_rect",
        area_bytes,
        || reference::fill_rect(black_box(&mut fb_r), &rect, color),
        || black_box(&mut fb_o).fill_rect(&rect, color),
    ));

    // tile_rect: 16x12 tile across the screen, phase-unaligned.
    let tile = noise_fb(16, 12, fmt, 3);
    let trect = Rect::new(-5, -3, w, h);
    let mut fb_r = noise_fb(w, h, fmt, 1);
    let mut fb_o = fb_r.clone();
    out.push(kernel(
        quick,
        "tile_rect",
        area_bytes,
        || reference::tile_rect(black_box(&mut fb_r), &trect, &tile),
        || black_box(&mut fb_o).tile_rect(&trect, &tile),
    ));

    // bitmap_rect: glyph-like bits — mostly background with solid
    // foreground runs and a few ragged edges, as text rendering
    // produces (uniform noise would be the span-decoder's worst case
    // and nothing like real stipples).
    let bits: Vec<u8> = noise((w as usize).div_ceil(8) * h as usize, 5)
        .into_iter()
        .map(|b| match b % 8 {
            0..=3 => 0x00,
            4..=5 => 0xFF,
            6 => 0xF0,
            _ => b,
        })
        .collect();
    let mut fb_r = noise_fb(w, h, fmt, 1);
    let mut fb_o = fb_r.clone();
    out.push(kernel(
        quick,
        "bitmap_rect",
        area_bytes,
        || reference::bitmap_rect(black_box(&mut fb_r), &rect, &bits, Color::BLACK, Some(Color::WHITE)),
        || black_box(&mut fb_o).bitmap_rect(&rect, &bits, Color::BLACK, Some(Color::WHITE)),
    ));

    // copy_rect: the 1-pixel scroll (the hottest COPY in practice).
    let src = Rect::new(0, 1, w, h - 1);
    let mut fb_r = noise_fb(w, h, fmt, 1);
    let mut fb_o = fb_r.clone();
    out.push(kernel(
        quick,
        "copy_rect",
        area_bytes,
        || reference::copy_rect(black_box(&mut fb_r), &src, 0, 0),
        || black_box(&mut fb_o).copy_rect(&src, 0, 0),
    ));

    // convert: palette expansion through the 256-entry LUT path.
    let idx = noise_fb(w, h, PixelFormat::Indexed8, 7);
    out.push(kernel(
        quick,
        "convert",
        (w * h) as usize * 4,
        || drop(black_box(reference::convert(&idx, PixelFormat::Rgba8888))),
        || drop(black_box(idx.convert(PixelFormat::Rgba8888))),
    ));

    // yuv_pack: RGB -> YV12 with 2x2 chroma averaging.
    let rgb = noise_fb(w, h, fmt, 9);
    out.push(kernel(
        quick,
        "yuv_pack",
        area_bytes,
        || drop(black_box(reference::yuv_from_rgb(&rgb, &rect, YuvFormat::Yv12))),
        || drop(black_box(YuvFrame::from_rgb(&rgb, &rect, YuvFormat::Yv12))),
    ));

    // scale_fant: 2x downscale (the PDA viewport case).
    let big = noise_fb(w, h, fmt, 11);
    out.push(kernel(
        quick,
        "scale_fant",
        area_bytes,
        || drop(black_box(reference::scale_fant(&big, w / 2, h / 2))),
        || drop(black_box(thinc_raster::scale_image(&big, w / 2, h / 2, ScaleFilter::Fant))),
    ));

    // Codecs over desktop-like RAW content.
    let img = desktop_bytes(w as usize, h as usize / 4, 3);
    out.push(kernel(
        quick,
        "rle",
        img.len(),
        || drop(black_box(thinc_compress::reference::rle_compress(&img))),
        || drop(black_box(rle::compress(&img))),
    ));
    out.push(kernel(
        quick,
        "pixel_rle",
        img.len(),
        || drop(black_box(thinc_compress::reference::rle_compress_symbols(&img, 3))),
        || drop(black_box(rle::compress_symbols(&img, 3))),
    ));
    out.push(kernel(
        quick,
        "lzss",
        img.len(),
        || drop(black_box(thinc_compress::reference::lzss_compress(&img))),
        || drop(black_box(lzss::compress(&img))),
    ));
    let stride = w as usize * 3;
    let mut scratch = Scratch::new();
    out.push(kernel(
        quick,
        "pnglike",
        img.len(),
        || drop(black_box(thinc_compress::reference::pnglike_compress(&img, 3, stride))),
        || {
            black_box(pnglike::compress_with(&img, 3, stride, &mut scratch).len());
        },
    ));
    out
}

struct CommandStats {
    kind: CommandKind,
    count: u64,
    bytes: u64,
    p50_bytes: u64,
    p99_bytes: u64,
}

struct WebStats {
    pages: usize,
    avg_latency_s: f64,
    avg_page_kb: f64,
    verified: bool,
    wall_ms: f64,
    commands: Vec<CommandStats>,
    flush_p50_us: u64,
    flush_p99_us: u64,
}

struct VideoStats {
    quality: f64,
    data_mb: f64,
    frames_delivered: u32,
    frames_dropped: u32,
    wall_ms: f64,
}

fn web_suite(_quick: bool) -> WebStats {
    // Same page count in both modes: the macro run is virtual-time
    // (milliseconds of wall clock), and quick/full must produce the
    // same deterministic numbers for the baseline gate to apply.
    let pages = 6;
    eprintln!("== macro: web page loads ({pages} pages) ==");
    let lan = NetworkConfig::lan_desktop();
    let mut sys = ThincSystem::new(&lan, 256, 192);
    let wl = WebWorkload::new(256, 192, 2005);
    let wall = Instant::now();
    let res = webbench::run_web(&mut sys, &wl, pages);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let tel = sys.session_telemetry();
    let commands = tel
        .protocol
        .rows()
        .iter()
        .map(|r| {
            let h = tel.protocol.size_histogram(r.kind);
            CommandStats {
                kind: r.kind,
                count: r.count,
                bytes: r.bytes,
                p50_bytes: h.quantile(0.5),
                p99_bytes: h.quantile(0.99),
            }
        })
        .collect();
    let stats = WebStats {
        pages,
        avg_latency_s: res.avg_latency_s,
        avg_page_kb: res.avg_page_kb,
        verified: sys.verified(),
        wall_ms,
        commands,
        flush_p50_us: tel.scheduler.flush_latency_us().quantile(0.5),
        flush_p99_us: tel.scheduler.flush_latency_us().quantile(0.99),
    };
    eprintln!(
        "  latency {:.3}s  page {:.1} KB  verified {}  wall {:.0} ms",
        stats.avg_latency_s, stats.avg_page_kb, stats.verified, stats.wall_ms
    );
    stats
}

fn video_suite(_quick: bool) -> VideoStats {
    // Fixed clip length for the same reason as `web_suite`.
    let ms = 2_000;
    eprintln!("== macro: a/v playback ({ms} ms clip) ==");
    let lan = NetworkConfig::lan_desktop();
    let clip = VideoClip::short(ms);
    let audio = AudioTrack { duration_ms: ms, ..AudioTrack::benchmark() };
    let mut sys = ThincSystem::new(&lan, 352, 240);
    let wall = Instant::now();
    let res = avbench::run_av(&mut sys, &clip, Some(&audio), Rect::new(0, 0, 352, 240));
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "  quality {:.1}%  data {:.2} MB  frames {}/{}  wall {:.0} ms",
        res.quality * 100.0,
        res.data_mb,
        res.frames.0,
        res.frames.0 + res.frames.1,
        wall_ms
    );
    VideoStats {
        quality: res.quality,
        data_mb: res.data_mb,
        frames_delivered: res.frames.0,
        frames_dropped: res.frames.1,
        wall_ms,
    }
}

struct CacheStats {
    rounds: usize,
    cached_kb_per_round: f64,
    uncached_kb_per_round: f64,
    savings_ratio: f64,
    hits: u64,
    byte_exact: bool,
    verified: bool,
}

/// The revision-3 content-cache macro: a window-switch workload that
/// cycles between a few fixed full-viewport window images — the
/// canonical repeated-content pattern — once with the cache enabled
/// and once with it disabled. Both runs must converge byte-exact to
/// the same framebuffer; the gate is on the cached bytes-per-round
/// and the cached/uncached savings ratio, both virtual-time
/// deterministic (see `docs/CACHE.md`).
fn cache_suite() -> CacheStats {
    const CW: u32 = 256;
    const CH: u32 = 192;
    let rounds = 12usize;
    let windows = 3usize;
    eprintln!("== macro: content cache ({rounds} window switches over {windows} windows) ==");
    let window_image = |w: usize| -> Vec<u8> {
        let mut img = desktop_bytes(CW as usize, CH as usize, 3);
        // Distinct per-window content: salt a sparse speckle pattern.
        for i in (w..img.len()).step_by(53 + w * 7) {
            img[i] = (w * 67) as u8;
        }
        img
    };
    let run = |budget: Option<u64>| -> ThincSystem {
        let cfg = ServerConfig {
            width: CW,
            height: CH,
            cache_budget_bytes: budget,
            ..ServerConfig::default()
        };
        let mut sys = ThincSystem::with_config(&NetworkConfig::lan_desktop(), cfg, (CW, CH));
        let mut now = SimTime::ZERO;
        for r in 0..rounds {
            sys.process(
                now,
                vec![DrawRequest::PutImage {
                    target: SCREEN,
                    rect: Rect::new(0, 0, CW, CH),
                    data: window_image(r % windows),
                }],
            );
            now = sys.drain(now) + SimDuration::from_millis(5);
        }
        sys
    };
    let cached = run(Some(thinc_protocol::DEFAULT_CACHE_BUDGET));
    let uncached = run(None);
    let per_round = |sys: &ThincSystem| {
        sys.trace().bytes(Direction::Down) as f64 / rounds as f64 / 1024.0
    };
    let stats = CacheStats {
        rounds,
        cached_kb_per_round: per_round(&cached),
        uncached_kb_per_round: per_round(&uncached),
        savings_ratio: per_round(&uncached) / per_round(&cached),
        hits: cached.client().cache_hits(),
        byte_exact: cached.client().client().framebuffer().data()
            == uncached.client().client().framebuffer().data(),
        verified: cached.verified() && uncached.verified(),
    };
    eprintln!(
        "  cached {:.1} KB/round  uncached {:.1} KB/round  {:.2}x saved  {} hits  \
         byte-exact {}",
        stats.cached_kb_per_round,
        stats.uncached_kb_per_round,
        stats.savings_ratio,
        stats.hits,
        stats.byte_exact,
    );
    stats
}

/// Verifies the shared session's parallel flush is bit-identical
/// across worker counts (see `crates/core/tests/parallel_flush.rs`
/// for the exhaustive version). Returns the worker counts checked.
fn parallel_check() -> (Vec<usize>, bool) {
    eprintln!("== parallel flush determinism ==");
    let run = |workers: usize| {
        let mut s =
            SharedSession::new(96, 64, PixelFormat::Rgb888, "host").with_workers(workers);
        s.auth_mut().enable_sharing("pw");
        s.attach(&Credentials::Owner { user: "host".into() }, 96, 64).unwrap();
        for i in 0..2 {
            s.attach(
                &Credentials::Peer { user: format!("p{i}"), password: "pw".into() },
                48,
                32,
            )
            .unwrap();
        }
        let store = DrawableStore::new(96, 64, PixelFormat::Rgb888);
        s.put_image(&store, SCREEN, Rect::new(0, 0, 96, 48), &noise(96 * 48 * 3, 17));
        s.solid_fill(&store, SCREEN, Rect::new(4, 4, 30, 30), Color::rgb(1, 2, 3));
        let mut links: Vec<(TcpPipe, PacketTrace)> = (0..3)
            .map(|_| {
                (
                    TcpPipe::new(TcpParams {
                        bandwidth_bps: 8_000_000,
                        rtt: SimDuration::from_millis(5),
                        ..TcpParams::default()
                    }),
                    PacketTrace::new(),
                )
            })
            .collect();
        let mut all = Vec::new();
        for round in 0..50u64 {
            all.push(s.flush_all(SimTime(round * 4_000), &mut links));
        }
        all
    };
    let serial = run(1);
    let workers = vec![1usize, 2, 4];
    let ok = workers[1..].iter().all(|&n| run(n) == serial);
    eprintln!("  workers {workers:?}  deterministic {ok}");
    (workers, ok)
}

// ---------------------------------------------------------------
// JSON output (hand-rolled: the workspace is dependency-free).

fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn raster_json(mode: &str, kernels: &[KernelResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"thinc-perfgate-raster-v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"bytes_per_op\": {}, \"ref_ns_per_op\": {}, \
             \"opt_ns_per_op\": {}, \"ref_mb_s\": {}, \"opt_mb_s\": {}, \"ops_s\": {}, \
             \"speedup\": {}}}",
            k.name,
            k.bytes,
            jf(k.ref_ns),
            jf(k.opt_ns),
            jf(k.ref_mb_s()),
            jf(k.opt_mb_s()),
            jf(k.ops_s()),
            jf(k.speedup()),
        );
        s.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn e2e_json(
    mode: &str,
    web: &WebStats,
    video: &VideoStats,
    cache: &CacheStats,
    par: &(Vec<usize>, bool),
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"thinc-perfgate-e2e-v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"web\": {\n");
    let _ = writeln!(s, "    \"pages\": {},", web.pages);
    let _ = writeln!(s, "    \"avg_latency_s\": {},", jf(web.avg_latency_s));
    let _ = writeln!(s, "    \"avg_page_kb\": {},", jf(web.avg_page_kb));
    let _ = writeln!(s, "    \"verified\": {},", web.verified);
    let _ = writeln!(s, "    \"wall_ms\": {},", jf(web.wall_ms));
    let _ = writeln!(s, "    \"flush_latency_p50_us\": {},", web.flush_p50_us);
    let _ = writeln!(s, "    \"flush_latency_p99_us\": {},", web.flush_p99_us);
    s.push_str("    \"commands\": [\n");
    for (i, c) in web.commands.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"kind\": \"{}\", \"count\": {}, \"bytes\": {}, \
             \"p50_bytes\": {}, \"p99_bytes\": {}}}",
            c.kind.name(),
            c.count,
            c.bytes,
            c.p50_bytes,
            c.p99_bytes,
        );
        s.push_str(if i + 1 < web.commands.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"video\": {\n");
    let _ = writeln!(s, "    \"quality\": {},", jf(video.quality));
    let _ = writeln!(s, "    \"data_mb\": {},", jf(video.data_mb));
    let _ = writeln!(s, "    \"frames_delivered\": {},", video.frames_delivered);
    let _ = writeln!(s, "    \"frames_dropped\": {},", video.frames_dropped);
    let _ = writeln!(s, "    \"wall_ms\": {}", jf(video.wall_ms));
    s.push_str("  },\n");
    s.push_str("  \"cache\": {\n");
    let _ = writeln!(s, "    \"rounds\": {},", cache.rounds);
    let _ = writeln!(s, "    \"cached_kb_per_round\": {},", jf(cache.cached_kb_per_round));
    let _ = writeln!(s, "    \"uncached_kb_per_round\": {},", jf(cache.uncached_kb_per_round));
    let _ = writeln!(s, "    \"savings_ratio\": {},", jf(cache.savings_ratio));
    let _ = writeln!(s, "    \"hits\": {},", cache.hits);
    let _ = writeln!(s, "    \"byte_exact\": {},", cache.byte_exact);
    let _ = writeln!(s, "    \"verified\": {}", cache.verified);
    s.push_str("  },\n");
    s.push_str("  \"parallel_flush\": {\n");
    let workers: Vec<String> = par.0.iter().map(|w| w.to_string()).collect();
    let _ = writeln!(s, "    \"workers_checked\": [{}],", workers.join(", "));
    let _ = writeln!(s, "    \"deterministic\": {}", par.1);
    s.push_str("  }\n}\n");
    s
}

// ---------------------------------------------------------------
// Baseline gating.

/// One gated metric: measured value plus regression direction.
struct GateMetric {
    key: String,
    value: f64,
    higher_is_better: bool,
    /// Wall-clock-derived metrics (kernel speedup ratios) jitter with
    /// scheduler noise, so they gate at twice the threshold. The
    /// virtual-time macro metrics are exactly reproducible and gate
    /// at the threshold as given.
    timing_derived: bool,
}

/// Parses the flat `"key": number` baseline map (our own format;
/// written by `--write-baseline`).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some((key_part, val_part)) = line.split_once(':') else { continue };
        let key: String = key_part.trim().trim_matches(|c| c == '"' || c == '{').to_string();
        if key.is_empty() || key == "}" {
            continue;
        }
        let val = val_part.trim().trim_end_matches(',');
        if let Ok(v) = val.parse::<f64>() {
            out.push((key, v));
        }
    }
    out
}

fn baseline_json(metrics: &[GateMetric]) -> String {
    let mut s = String::from("{\n");
    for (i, m) in metrics.iter().enumerate() {
        let _ = write!(s, "  \"{}\": {}", m.key, jf(m.value));
        s.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
    }
    s.push_str("}\n");
    s
}

fn main() {
    let opts = parse_args();
    let mode = if opts.quick { "quick" } else { "full" };
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/perf_baseline.json");

    let kernels = micro_suite(opts.quick);
    let web = web_suite(opts.quick);
    let video = video_suite(opts.quick);
    let cache = cache_suite();
    let par = parallel_check();

    std::fs::write(format!("{root}/BENCH_raster.json"), raster_json(mode, &kernels))
        .expect("write BENCH_raster.json");
    std::fs::write(
        format!("{root}/BENCH_e2e.json"),
        e2e_json(mode, &web, &video, &cache, &par),
    )
    .expect("write BENCH_e2e.json");
    eprintln!("wrote BENCH_raster.json, BENCH_e2e.json");

    let mut metrics: Vec<GateMetric> = kernels
        .iter()
        .map(|k| GateMetric {
            key: format!("kernel.{}.speedup", k.name),
            value: k.speedup(),
            higher_is_better: true,
            timing_derived: true,
        })
        .collect();
    metrics.push(GateMetric {
        key: "web.avg_latency_s".into(),
        value: web.avg_latency_s,
        higher_is_better: false,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: "web.avg_page_kb".into(),
        value: web.avg_page_kb,
        higher_is_better: false,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: "video.quality".into(),
        value: video.quality,
        higher_is_better: true,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: "cache.cached_kb_per_round".into(),
        value: cache.cached_kb_per_round,
        higher_is_better: false,
        timing_derived: false,
    });
    metrics.push(GateMetric {
        key: "cache.savings_ratio".into(),
        value: cache.savings_ratio,
        higher_is_better: true,
        timing_derived: false,
    });

    if !par.1 {
        eprintln!("FAIL: parallel flush output differs across worker counts");
        std::process::exit(1);
    }
    if !web.verified {
        eprintln!("FAIL: client framebuffer diverged from server screen");
        std::process::exit(1);
    }
    if !cache.byte_exact || !cache.verified {
        eprintln!("FAIL: cached session is not byte-exact with the uncached session");
        std::process::exit(1);
    }
    if cache.hits == 0 {
        eprintln!("FAIL: content cache resolved zero refs on a repeated-content workload");
        std::process::exit(1);
    }
    if cache.savings_ratio <= 1.0 {
        eprintln!("FAIL: content cache did not reduce bytes per round");
        std::process::exit(1);
    }

    if opts.write_baseline {
        std::fs::write(baseline_path, baseline_json(&metrics)).expect("write baseline");
        eprintln!("baseline written to {baseline_path}");
        return;
    }

    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("no baseline at {baseline_path}; run with --write-baseline to create one");
        return;
    };
    let baseline = parse_baseline(&text);
    let mut regressions = Vec::new();
    for m in &metrics {
        let Some((_, base)) = baseline.iter().find(|(k, _)| *k == m.key) else {
            eprintln!("  (no baseline for {}; skipping)", m.key);
            continue;
        };
        let thr = if m.timing_derived { opts.threshold * 2.0 } else { opts.threshold };
        let bad = if m.higher_is_better {
            m.value < base * (1.0 - thr)
        } else {
            m.value > base * (1.0 + thr)
        };
        if bad {
            regressions.push(format!(
                "{}: measured {:.4} vs baseline {:.4} (threshold {:.0}%)",
                m.key,
                m.value,
                base,
                thr * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        eprintln!("gate OK: no metric regressed more than {:.0}%", opts.threshold * 100.0);
    } else {
        eprintln!("gate FAILED:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
