//! Regenerates the tables and figures of the THINC paper (§8).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p thinc-bench --bin figures -- --all
//! cargo run --release -p thinc-bench --bin figures -- --fig 2 [--pages N] [--clip-ms M]
//! ```
//!
//! Absolute numbers come from a simulation, not the authors' 2005
//! testbed; the *shape* of each figure (who wins, by what factor,
//! where the crossovers are) is the reproduction target. See
//! `EXPERIMENTS.md`.

use thinc_baselines::{GoToMyPc, LocalPc, Nx, RdpClass, RemoteDisplay, SunRay, Vnc, XSystem};
use thinc_bench::avbench::{run_av, AvResult};
use thinc_bench::report::{kb, mb, pct, secs, table};
use thinc_bench::sites::remote_sites;
use thinc_bench::thinc_system::ThincSystem;
use thinc_bench::webbench::{run_web, WebResult};
use thinc_net::link::NetworkConfig;
use thinc_raster::Rect;
use thinc_workloads::video::{AudioTrack, VideoClip};
use thinc_workloads::web::WebWorkload;

const W: u32 = 1024;
const H: u32 = 768;
const PDA_W: u32 = 320;
const PDA_H: u32 = 240;

struct Options {
    pages: usize,
    clip_ms: u64,
}

fn desktop_systems(net: &NetworkConfig) -> Vec<Box<dyn RemoteDisplay>> {
    vec![
        Box::new(LocalPc::new(W, H)),
        Box::new(ThincSystem::new(net, W, H)),
        Box::new(SunRay::new(net, W, H)),
        Box::new(Vnc::new(net, W, H)),
        Box::new(XSystem::new(net, W, H)),
        Box::new(Nx::new(net, W, H)),
        Box::new(RdpClass::rdp(net, W, H)),
        Box::new(RdpClass::ica(net, W, H)),
        Box::new(GoToMyPc::new(net, W, H)),
    ]
}

fn pda_web_systems(net: &NetworkConfig) -> Vec<Box<dyn RemoteDisplay>> {
    vec![
        Box::new(ThincSystem::with_viewport(net, W, H, PDA_W, PDA_H)),
        Box::new(Vnc::with_viewport(net, W, H, Some((PDA_W, PDA_H)))),
        Box::new(RdpClass::rdp(net, W, H).with_viewport(PDA_W, PDA_H)),
        Box::new(RdpClass::ica(net, W, H).with_viewport(PDA_W, PDA_H)),
        // GoToMyPC's smallest supported client display is 640x480.
        Box::new(GoToMyPc::with_viewport(net, W, H, Some((640, 480)))),
    ]
}

/// Figure 5/6 report 802.11g PDA results only for ICA, RDP, GoToMyPC
/// and THINC (VNC's clipping is meaningless for video, §8.3).
fn pda_av_systems(net: &NetworkConfig) -> Vec<Box<dyn RemoteDisplay>> {
    vec![
        Box::new(ThincSystem::with_viewport(net, W, H, PDA_W, PDA_H)),
        Box::new(RdpClass::rdp(net, W, H).with_viewport(PDA_W, PDA_H)),
        Box::new(RdpClass::ica(net, W, H).with_viewport(PDA_W, PDA_H)),
        Box::new(GoToMyPc::with_viewport(net, W, H, Some((640, 480)))),
    ]
}

fn web_config(
    label: &str,
    systems: Vec<Box<dyn RemoteDisplay>>,
    opts: &Options,
) -> Vec<(String, WebResult)> {
    let wl = WebWorkload::standard();
    systems
        .into_iter()
        .map(|mut sys| {
            eprintln!("  [{label}] web: {}", sys.name());
            let res = run_web(sys.as_mut(), &wl, opts.pages);
            (format!("{} ({label})", res.system), res)
        })
        .collect()
}

fn av_config(
    label: &str,
    systems: Vec<Box<dyn RemoteDisplay>>,
    opts: &Options,
) -> Vec<(String, AvResult)> {
    let clip = VideoClip::short(opts.clip_ms);
    let audio = AudioTrack {
        duration_ms: opts.clip_ms,
        ..AudioTrack::benchmark()
    };
    let dst = Rect::new(0, 0, W, H);
    systems
        .into_iter()
        .map(|mut sys| {
            eprintln!("  [{label}] a/v: {}", sys.name());
            let res = run_av(sys.as_mut(), &clip, Some(&audio), dst);
            (format!("{} ({label})", res.system), res)
        })
        .collect()
}

fn fig2_and_3(opts: &Options) -> (String, String) {
    let mut all: Vec<(String, WebResult)> = Vec::new();
    all.extend(web_config("LAN", desktop_systems(&NetworkConfig::lan_desktop()), opts));
    all.extend(web_config("WAN", desktop_systems(&NetworkConfig::wan_desktop()), opts));
    all.extend(web_config("PDA", pda_web_systems(&NetworkConfig::pda_802_11g()), opts));
    let lat_rows: Vec<Vec<String>> = all
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                secs(r.avg_latency_s),
                r.avg_latency_with_client_s
                    .map(secs)
                    .unwrap_or_else(|| "n/a".into()),
            ]
        })
        .collect();
    let fig2 = table(
        "Figure 2: Web Benchmark — Average Page Latency",
        &["System (config)", "Latency", "w/ client processing"],
        &lat_rows,
    );
    let data_rows: Vec<Vec<String>> = all
        .iter()
        .map(|(name, r)| vec![name.clone(), kb(r.avg_page_kb)])
        .collect();
    let fig3 = table(
        "Figure 3: Web Benchmark — Average Page Data Transferred",
        &["System (config)", "Data/page"],
        &data_rows,
    );
    (fig2, fig3)
}

fn fig4(opts: &Options) -> String {
    let wl = WebWorkload::standard();
    let mut rows = Vec::new();
    // LAN testbed reference first.
    let mut lan = ThincSystem::new(&NetworkConfig::lan_desktop(), W, H);
    eprintln!("  [sites] web: LAN reference");
    let lan_res = run_web(&mut lan, &wl, opts.pages);
    rows.push(vec![
        "LAN".into(),
        "(testbed)".into(),
        "0.2 ms".into(),
        secs(lan_res.avg_latency_s),
    ]);
    for site in remote_sites() {
        eprintln!("  [sites] web: {}", site.name);
        let mut sys = ThincSystem::new(&site.network(), W, H);
        let res = run_web(&mut sys, &wl, opts.pages);
        rows.push(vec![
            site.name.into(),
            site.location.into(),
            format!("{:.0} ms", site.rtt().as_secs_f64() * 1000.0),
            secs(res.avg_latency_s),
        ]);
    }
    table(
        "Figure 4: Web Benchmark — THINC Average Page Latency Using Remote Sites",
        &["Site", "Location", "RTT", "Latency"],
        &rows,
    )
}

fn fig5_and_6(opts: &Options) -> (String, String) {
    let mut all: Vec<(String, AvResult)> = Vec::new();
    all.extend(av_config("LAN", desktop_systems(&NetworkConfig::lan_desktop()), opts));
    all.extend(av_config("WAN", desktop_systems(&NetworkConfig::wan_desktop()), opts));
    all.extend(av_config("PDA", pda_av_systems(&NetworkConfig::pda_802_11g()), opts));
    let q_rows: Vec<Vec<String>> = all
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                pct(r.quality),
                format!("{}/{}", r.frames.0, r.frames.0 + r.frames.1),
                if r.audio { "yes".into() } else { "video-only".into() },
            ]
        })
        .collect();
    let fig5 = table(
        "Figure 5: A/V Benchmark — A/V Quality",
        &["System (config)", "Quality", "Frames", "Audio"],
        &q_rows,
    );
    let d_rows: Vec<Vec<String>> = all
        .iter()
        .map(|(name, r)| vec![name.clone(), mb(r.data_mb)])
        .collect();
    let fig6 = table(
        "Figure 6: A/V Benchmark — Total Data Transferred",
        &["System (config)", "Data"],
        &d_rows,
    );
    (fig5, fig6)
}

fn fig7(opts: &Options) -> String {
    let clip = VideoClip::short(opts.clip_ms);
    let audio = AudioTrack {
        duration_ms: opts.clip_ms,
        ..AudioTrack::benchmark()
    };
    let dst = Rect::new(0, 0, W, H);
    let mut rows = Vec::new();
    for site in remote_sites() {
        eprintln!("  [sites] a/v: {}", site.name);
        let mut sys = ThincSystem::new(&site.network(), W, H);
        let res = run_av(&mut sys, &clip, Some(&audio), dst);
        rows.push(vec![
            site.name.into(),
            site.location.into(),
            pct(res.quality),
            format!("{:.0}%", site.relative_bandwidth() * 100.0),
        ]);
    }
    table(
        "Figure 7: A/V Benchmark — THINC A/V Quality Using Remote Sites",
        &["Site", "Location", "A/V Quality", "Rel. bandwidth"],
        &rows,
    )
}

fn table2() -> String {
    let rows: Vec<Vec<String>> = remote_sites()
        .into_iter()
        .map(|s| {
            vec![
                s.name.into(),
                if s.planetlab { "yes" } else { "no" }.into(),
                s.location.into(),
                format!("{} miles", s.miles),
                format!("{:.0} ms", s.rtt().as_secs_f64() * 1000.0),
                format!("{} KB", s.rwnd_bytes() / 1024),
            ]
        })
        .collect();
    table(
        "Table 2: Remote Sites for WAN Experiments (modeled parameters)",
        &["Name", "PlanetLab", "Location", "Distance", "RTT", "TCP window"],
        &rows,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<String> = Vec::new();
    let mut opts = Options {
        pages: 54,
        clip_ms: 34_750,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => figs.extend(["2", "3", "4", "5", "6", "7", "t2"].map(String::from)),
            "--fig" => {
                i += 1;
                figs.push(args.get(i).cloned().unwrap_or_default());
            }
            "--pages" => {
                i += 1;
                opts.pages = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(54);
            }
            "--clip-ms" => {
                i += 1;
                opts.clip_ms = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(34_750);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: figures --all | --fig <2|3|4|5|6|7|t2> [--pages N] [--clip-ms M]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figs.is_empty() {
        figs.extend(["2", "3", "4", "5", "6", "7", "t2"].map(String::from));
    }
    figs.dedup();
    let wants = |f: &str| figs.iter().any(|g| g == f);
    if wants("t2") {
        println!("{}", table2());
    }
    if wants("2") || wants("3") {
        let (f2, f3) = fig2_and_3(&opts);
        if wants("2") {
            println!("{f2}");
        }
        if wants("3") {
            println!("{f3}");
        }
    }
    if wants("4") {
        println!("{}", fig4(&opts));
    }
    if wants("5") || wants("6") {
        let (f5, f6) = fig5_and_6(&opts);
        if wants("5") {
            println!("{f5}");
        }
        if wants("6") {
            println!("{f6}");
        }
    }
    if wants("7") {
        println!("{}", fig7(&opts));
    }
}
