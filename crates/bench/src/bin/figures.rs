//! Regenerates the tables and figures of the THINC paper (§8).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p thinc-bench --bin figures -- --all
//! cargo run --release -p thinc-bench --bin figures -- --fig 2 [--pages N] [--clip-ms M]
//! cargo run --release -p thinc-bench --bin figures -- --fig telemetry --jsonl trace.jsonl
//! ```
//!
//! Absolute numbers come from a simulation, not the authors' 2005
//! testbed; the *shape* of each figure (who wins, by what factor,
//! where the crossovers are) is the reproduction target. See
//! `EXPERIMENTS.md`.

use thinc_baselines::{GoToMyPc, LocalPc, Nx, RdpClass, RemoteDisplay, SunRay, Vnc, XSystem};
use thinc_bench::avbench::{run_av, AvResult};
use thinc_bench::report::{kb, mb, pct, secs, table};
use thinc_bench::sites::remote_sites;
use thinc_bench::thinc_system::ThincSystem;
use thinc_bench::webbench::{run_web, WebResult};
use thinc_core::session::Credentials;
use thinc_core::{ShardedManager, SharedSession};
use thinc_display::drawable::DrawableStore;
use thinc_display::driver::VideoDriver;
use thinc_display::SCREEN;
use thinc_net::link::NetworkConfig;
use thinc_net::tcp::{TcpParams, TcpPipe};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::PacketTrace;
use thinc_raster::{Color, PixelFormat, Rect};
use thinc_workloads::video::{AudioTrack, VideoClip};
use thinc_workloads::web::WebWorkload;

const W: u32 = 1024;
const H: u32 = 768;
const PDA_W: u32 = 320;
const PDA_H: u32 = 240;

struct Options {
    pages: usize,
    clip_ms: u64,
}

fn desktop_systems(net: &NetworkConfig) -> Vec<Box<dyn RemoteDisplay>> {
    vec![
        Box::new(LocalPc::new(W, H)),
        Box::new(ThincSystem::new(net, W, H)),
        Box::new(SunRay::new(net, W, H)),
        Box::new(Vnc::new(net, W, H)),
        Box::new(XSystem::new(net, W, H)),
        Box::new(Nx::new(net, W, H)),
        Box::new(RdpClass::rdp(net, W, H)),
        Box::new(RdpClass::ica(net, W, H)),
        Box::new(GoToMyPc::new(net, W, H)),
    ]
}

fn pda_web_systems(net: &NetworkConfig) -> Vec<Box<dyn RemoteDisplay>> {
    vec![
        Box::new(ThincSystem::with_viewport(net, W, H, PDA_W, PDA_H)),
        Box::new(Vnc::with_viewport(net, W, H, Some((PDA_W, PDA_H)))),
        Box::new(RdpClass::rdp(net, W, H).with_viewport(PDA_W, PDA_H)),
        Box::new(RdpClass::ica(net, W, H).with_viewport(PDA_W, PDA_H)),
        // GoToMyPC's smallest supported client display is 640x480.
        Box::new(GoToMyPc::with_viewport(net, W, H, Some((640, 480)))),
    ]
}

/// Figure 5/6 report 802.11g PDA results only for ICA, RDP, GoToMyPC
/// and THINC (VNC's clipping is meaningless for video, §8.3).
fn pda_av_systems(net: &NetworkConfig) -> Vec<Box<dyn RemoteDisplay>> {
    vec![
        Box::new(ThincSystem::with_viewport(net, W, H, PDA_W, PDA_H)),
        Box::new(RdpClass::rdp(net, W, H).with_viewport(PDA_W, PDA_H)),
        Box::new(RdpClass::ica(net, W, H).with_viewport(PDA_W, PDA_H)),
        Box::new(GoToMyPc::with_viewport(net, W, H, Some((640, 480)))),
    ]
}

fn web_config(
    label: &str,
    systems: Vec<Box<dyn RemoteDisplay>>,
    opts: &Options,
) -> Vec<(String, WebResult)> {
    let wl = WebWorkload::standard();
    systems
        .into_iter()
        .map(|mut sys| {
            eprintln!("  [{label}] web: {}", sys.name());
            let res = run_web(sys.as_mut(), &wl, opts.pages);
            (format!("{} ({label})", res.system), res)
        })
        .collect()
}

fn av_config(
    label: &str,
    systems: Vec<Box<dyn RemoteDisplay>>,
    opts: &Options,
) -> Vec<(String, AvResult)> {
    let clip = VideoClip::short(opts.clip_ms);
    let audio = AudioTrack {
        duration_ms: opts.clip_ms,
        ..AudioTrack::benchmark()
    };
    let dst = Rect::new(0, 0, W, H);
    systems
        .into_iter()
        .map(|mut sys| {
            eprintln!("  [{label}] a/v: {}", sys.name());
            let res = run_av(sys.as_mut(), &clip, Some(&audio), dst);
            (format!("{} ({label})", res.system), res)
        })
        .collect()
}

fn fig2_and_3(opts: &Options) -> (String, String) {
    let mut all: Vec<(String, WebResult)> = Vec::new();
    all.extend(web_config("LAN", desktop_systems(&NetworkConfig::lan_desktop()), opts));
    all.extend(web_config("WAN", desktop_systems(&NetworkConfig::wan_desktop()), opts));
    all.extend(web_config("PDA", pda_web_systems(&NetworkConfig::pda_802_11g()), opts));
    let lat_rows: Vec<Vec<String>> = all
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                secs(r.avg_latency_s),
                r.avg_latency_with_client_s
                    .map(secs)
                    .unwrap_or_else(|| "n/a".into()),
            ]
        })
        .collect();
    let fig2 = table(
        "Figure 2: Web Benchmark — Average Page Latency",
        &["System (config)", "Latency", "w/ client processing"],
        &lat_rows,
    );
    let data_rows: Vec<Vec<String>> = all
        .iter()
        .map(|(name, r)| vec![name.clone(), kb(r.avg_page_kb)])
        .collect();
    let fig3 = table(
        "Figure 3: Web Benchmark — Average Page Data Transferred",
        &["System (config)", "Data/page"],
        &data_rows,
    );
    (fig2, fig3)
}

fn fig4(opts: &Options) -> String {
    let wl = WebWorkload::standard();
    let mut rows = Vec::new();
    // LAN testbed reference first.
    let mut lan = ThincSystem::new(&NetworkConfig::lan_desktop(), W, H);
    eprintln!("  [sites] web: LAN reference");
    let lan_res = run_web(&mut lan, &wl, opts.pages);
    rows.push(vec![
        "LAN".into(),
        "(testbed)".into(),
        "0.2 ms".into(),
        secs(lan_res.avg_latency_s),
    ]);
    for site in remote_sites() {
        eprintln!("  [sites] web: {}", site.name);
        let mut sys = ThincSystem::new(&site.network(), W, H);
        let res = run_web(&mut sys, &wl, opts.pages);
        rows.push(vec![
            site.name.into(),
            site.location.into(),
            format!("{:.0} ms", site.rtt().as_secs_f64() * 1000.0),
            secs(res.avg_latency_s),
        ]);
    }
    table(
        "Figure 4: Web Benchmark — THINC Average Page Latency Using Remote Sites",
        &["Site", "Location", "RTT", "Latency"],
        &rows,
    )
}

fn fig5_and_6(opts: &Options) -> (String, String) {
    let mut all: Vec<(String, AvResult)> = Vec::new();
    all.extend(av_config("LAN", desktop_systems(&NetworkConfig::lan_desktop()), opts));
    all.extend(av_config("WAN", desktop_systems(&NetworkConfig::wan_desktop()), opts));
    all.extend(av_config("PDA", pda_av_systems(&NetworkConfig::pda_802_11g()), opts));
    let q_rows: Vec<Vec<String>> = all
        .iter()
        .map(|(name, r)| {
            vec![
                name.clone(),
                pct(r.quality),
                format!("{}/{}", r.frames.0, r.frames.0 + r.frames.1),
                if r.audio { "yes".into() } else { "video-only".into() },
            ]
        })
        .collect();
    let fig5 = table(
        "Figure 5: A/V Benchmark — A/V Quality",
        &["System (config)", "Quality", "Frames", "Audio"],
        &q_rows,
    );
    let d_rows: Vec<Vec<String>> = all
        .iter()
        .map(|(name, r)| vec![name.clone(), mb(r.data_mb)])
        .collect();
    let fig6 = table(
        "Figure 6: A/V Benchmark — Total Data Transferred",
        &["System (config)", "Data"],
        &d_rows,
    );
    (fig5, fig6)
}

fn fig7(opts: &Options) -> String {
    let clip = VideoClip::short(opts.clip_ms);
    let audio = AudioTrack {
        duration_ms: opts.clip_ms,
        ..AudioTrack::benchmark()
    };
    let dst = Rect::new(0, 0, W, H);
    let mut rows = Vec::new();
    for site in remote_sites() {
        eprintln!("  [sites] a/v: {}", site.name);
        let mut sys = ThincSystem::new(&site.network(), W, H);
        let res = run_av(&mut sys, &clip, Some(&audio), dst);
        rows.push(vec![
            site.name.into(),
            site.location.into(),
            pct(res.quality),
            format!("{:.0}%", site.relative_bandwidth() * 100.0),
        ]);
    }
    table(
        "Figure 7: A/V Benchmark — THINC A/V Quality Using Remote Sites",
        &["Site", "Location", "A/V Quality", "Rel. bandwidth"],
        &rows,
    )
}

/// Formats one session's per-command breakdown, sourced entirely
/// from the `thinc-telemetry` snapshot.
fn breakdown_table(title: &str, t: &thinc_telemetry::SessionTelemetry) -> String {
    let snap = t.snapshot();
    let mut rows: Vec<Vec<String>> = snap
        .commands
        .iter()
        .map(|r| {
            vec![
                r.kind.name().to_string(),
                r.count.to_string(),
                kb(r.bytes as f64 / 1024.0),
                pct(r.share),
            ]
        })
        .collect();
    rows.push(vec![
        "total".into(),
        snap.total_messages.to_string(),
        kb(snap.total_bytes as f64 / 1024.0),
        pct(1.0),
    ]);
    let mut out = table(title, &["Command", "Count", "Wire bytes", "Share"], &rows);
    out.push_str(&format!(
        "  scheduler: {} merged, {} evicted, {} split, flush p50 {} us / p99 {} us\n",
        snap.scheduler.merges,
        snap.scheduler.evictions,
        snap.scheduler.splits,
        snap.scheduler.flush_latency_p50_us,
        snap.scheduler.flush_latency_p99_us,
    ));
    out.push_str(&format!(
        "  translator: {} raw fallbacks ({} bytes), {} offscreen-queued, {} queues executed\n",
        snap.translator.raw_fallbacks,
        snap.translator.raw_fallback_bytes,
        snap.translator.offscreen_queued,
        snap.translator.queue_executions,
    ));
    out.push_str(&format!(
        "  net: peak cwnd {} bytes, peak utilization {}, {} bytes sent\n",
        snap.net.cwnd_bytes_max,
        pct(snap.net.utilization_max),
        snap.net.bytes_sent,
    ));
    out.push_str(&format!(
        "  client: {} decode errors, {} frame samples, frame p99 {} us\n",
        snap.client.decode_errors, snap.client.frames, snap.client.frame_latency_p99_us,
    ));
    let r = &snap.resilience;
    out.push_str(&format!(
        "  resilience: {} segments lost / {} retransmits, {} corrupt events ({} bytes), \
         {} outage defers\n",
        r.segments_lost, r.retransmits, r.corrupt_events, r.corrupted_bytes, r.outage_defers,
    ));
    out.push_str(&format!(
        "  integrity: {} crc_fail, {} seq_gap, {} seq_dup, {} resyncs_triggered; \
         {} segments reordered, {} duplicated\n",
        r.crc_failures,
        r.seq_gaps,
        r.seq_dups,
        r.resyncs_triggered,
        r.segments_reordered,
        r.segments_duplicated,
    ));
    out.push_str(&format!(
        "  cache: {} hits, {} misses, {} evictions, {} bytes saved\n",
        r.cache_hits, r.cache_misses, r.cache_evictions, r.cache_bytes_saved,
    ));
    out.push_str(&format!(
        "  degradation: {} overflow evictions, {} stale video dropped; \
         {} pings, {} timeouts, {} reconnects, {} resyncs\n",
        r.overflow_evictions,
        r.stale_video_dropped,
        r.pings_sent,
        r.liveness_timeouts,
        r.reconnects,
        r.resyncs,
    ));
    out.push_str(&format!(
        "  failover: {} warm resumes, {} cold fallbacks\n",
        r.resumes, r.cold_fallbacks,
    ));
    out
}

/// A byte-level hostile-WAN mini-session. The message-level sessions
/// above never serialize frames, so their integrity counters are
/// structurally zero; this one pushes every frame through the
/// revision-2 wire encoding and a `StreamClient` while seeded
/// corruption, reorder and duplication windows disturb the downlink —
/// exercising the full recovery ladder (CRC failure → resync →
/// refresh request) and reporting nonzero per-cause counters.
fn integrity_telemetry() -> thinc_telemetry::SessionTelemetry {
    use thinc_client::{ReconnectConfig, ReconnectPolicy, StreamClient};
    use thinc_core::server::{ServerConfig, ThincServer};
    use thinc_display::request::DrawRequest;
    use thinc_display::server::WindowServer;
    use thinc_display::SCREEN;
    use thinc_net::fault::FaultPlan;
    use thinc_net::link::DuplexLink;
    use thinc_net::time::{SimDuration, SimTime};
    use thinc_net::trace::PacketTrace;
    use thinc_protocol::message::Message;
    use thinc_raster::PixelFormat;

    const SW: u32 = 128;
    const SH: u32 = 96;
    let seed = 0xC0FFEE_u64.wrapping_add(7);

    fn noise(rect: Rect, salt: u64) -> DrawRequest {
        let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data: Vec<u8> = (0..(rect.w as usize * rect.h as usize * 3))
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        DrawRequest::PutImage {
            target: SCREEN,
            rect,
            data,
        }
    }

    fn pump(
        ws: &mut WindowServer<ThincServer>,
        link: &mut DuplexLink,
        trace: &mut PacketTrace,
        client: &mut StreamClient,
        now: SimTime,
    ) {
        let batch = ws.driver_mut().flush(now, &mut link.down, trace);
        if batch.is_empty() {
            if let Some(tail) = link.down.flush_disturbed() {
                client.feed(&tail);
            }
        }
        for (arrival, msg) in batch {
            let bytes = ws.driver_mut().encode_frame(&msg);
            for seg in link.down.disturb(arrival, bytes) {
                client.feed(&seg);
            }
        }
        while let Some(pong) = client.take_pong() {
            ws.driver_mut().handle_message(&pong);
        }
        while let Some(miss) = client.take_cache_miss() {
            ws.driver_mut().handle_message(&miss);
        }
        if let Some(req) = client.poll_reconnect(now) {
            ws.driver_mut().handle_message(&req);
        }
        if ws.driver_mut().take_resync_request() {
            let screen = ws.screen().clone();
            ws.driver_mut().set_time(now);
            ws.driver_mut().resync(&screen);
        }
    }

    // Same disturbance shape as the end-to-end resilience suite:
    // corruption first, then reorder + duplication on a clean
    // stretch, so each counter gets its own attributable cause.
    let net = NetworkConfig::wan_desktop().with_faults(
        FaultPlan::seeded(seed)
            .with_corruption(SimTime(40_000), SimDuration::from_millis(60), 0.02)
            .with_reorder(SimTime(150_000), SimDuration::from_millis(1_850), 0.3)
            .with_duplication(SimTime(150_000), SimDuration::from_millis(1_850), 0.3),
    );
    let mut link = net.connect();
    let mut trace = PacketTrace::new();
    let mut ws = WindowServer::new(
        SW,
        SH,
        PixelFormat::Rgb888,
        ThincServer::new(ServerConfig {
            width: SW,
            height: SH,
            ..ServerConfig::default()
        }),
    );
    let mut client = StreamClient::new(SW, SH, PixelFormat::Rgb888).with_reconnect_policy(
        ReconnectPolicy::new(ReconnectConfig {
            seed,
            ..ReconnectConfig::default()
        }),
    );

    // Handshake upgrades both sides to checksummed sequenced framing.
    let hello = ws.driver().hello();
    let hello_bytes = ws.driver_mut().encode_frame(&hello);
    client.feed(&hello_bytes);
    ws.driver_mut().handle_message(&Message::ClientHello {
        version: thinc_protocol::PROTOCOL_VERSION,
        viewport_width: SW,
        viewport_height: SH,
    });

    // A fixed rotation of tiles: each slot repeats its exact content
    // every round, so the revision-3 cache sees repeated payloads and
    // substitutes refs. Full payloads corrupted inside the fault
    // window leave the server's ledger ahead of the client's store —
    // later refs for those slots surface as cache misses, exercising
    // the miss → byte-exact fallback leg of the recovery ladder.
    let mut now = SimTime::ZERO;
    for i in 0..70u64 {
        let slot = i % 6;
        let x = (slot as i32 * 15) % (SW as i32 - 32);
        let y = (slot as i32 * 11) % (SH as i32 - 32);
        ws.driver_mut().set_time(now);
        ws.process(noise(Rect::new(x, y, 32, 32), seed ^ slot));
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now += SimDuration::from_millis(25);
    }
    // Drain the backlog, then let the policy-driven refresh ladder
    // converge past the disturbance windows.
    now = now.max(SimTime(2_050_000) + SimDuration::from_millis(50));
    for _ in 0..500 {
        if !client.needs_refresh() && ws.driver().display_backlog() == 0 {
            break;
        }
        pump(&mut ws, &mut link, &mut trace, &mut client, now);
        now = link.down.tx_free_at().max(now + SimDuration::from_millis(50));
    }

    let driver = ws.driver();
    let mut t = thinc_telemetry::SessionTelemetry::new(thinc_core::scheduler::NUM_QUEUES);
    t.protocol = driver.protocol_metrics();
    t.scheduler = driver.scheduler_metrics().clone();
    t.translator = driver.translator_metrics().clone();
    t.resilience = driver.resilience_metrics();
    t.resilience.merge(client.resilience_metrics());
    for stats in [link.down.fault_stats(), link.up.fault_stats()] {
        t.resilience.add_transport_faults(
            stats.segments_lost,
            stats.retransmits,
            stats.corrupt_events,
            stats.corrupted_bytes,
            stats.outage_defers,
            stats.segments_reordered,
            stats.segments_duplicated,
        );
    }
    t
}

/// A checkpoint/failover mini-session: two converged viewers survive
/// a server crash. One redials with a matching resume token (warm —
/// only the checkpoint-vs-live delta ships), the other presents a
/// stale store digest (cold fallback — full retransmit). The merged
/// telemetry reports one nonzero `resumes` and one nonzero
/// `cold_fallbacks`, so the failover counters are greppable in the
/// CI telemetry smoke step.
fn failover_telemetry() -> thinc_telemetry::SessionTelemetry {
    use thinc_client::StreamClient;
    use thinc_core::checkpoint::ResumeOutcome;
    use thinc_core::session::{Credentials, SharedSession};
    use thinc_display::drawable::DrawableStore;
    use thinc_display::driver::VideoDriver;
    use thinc_display::SCREEN;
    use thinc_net::time::SimTime;
    use thinc_net::trace::PacketTrace;
    use thinc_protocol::message::Message;
    use thinc_protocol::wire::{self, FrameEncoder};
    use thinc_protocol::PROTOCOL_VERSION;
    use thinc_raster::PixelFormat;

    const SW: u32 = 96;
    const SH: u32 = 64;
    let seed = 0xFA11_u64;

    let mut session = SharedSession::new(SW, SH, PixelFormat::Rgb888, "host").with_cache(32 * 1024);
    session.auth_mut().enable_sharing("pw");
    let warm_id = session
        .attach(&Credentials::Owner { user: "host".into() }, SW, SH)
        .expect("owner attaches");
    let cold_id = session
        .attach(
            &Credentials::Peer { user: "viewer".into(), password: "pw".into() },
            SW,
            SH,
        )
        .expect("peer attaches");
    let ids = [warm_id, cold_id];
    let mut store = DrawableStore::new(SW, SH, PixelFormat::Rgb888);
    let mut streams: Vec<StreamClient> = (0..2)
        .map(|_| {
            let mut c =
                StreamClient::new(SW, SH, PixelFormat::Rgb888).with_cache_budget(32 * 1024);
            c.feed(&wire::encode_message(&Message::ServerHello {
                version: PROTOCOL_VERSION,
                width: SW,
                height: SH,
                depth: 24,
            }));
            c
        })
        .collect();
    let mut encoders = vec![
        FrameEncoder::with_revision(PROTOCOL_VERSION),
        FrameEncoder::with_revision(PROTOCOL_VERSION),
    ];
    let mut links = vec![
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
    ];
    let pump = |session: &mut SharedSession,
                streams: &mut Vec<StreamClient>,
                encoders: &mut Vec<FrameEncoder>,
                links: &mut Vec<_>,
                now: SimTime| {
        for (j, (_, msgs)) in session.flush_all(now, links).into_iter().enumerate() {
            for (_, msg) in msgs {
                streams[j].feed(&encoders[j].encode(&msg));
            }
        }
        for (j, &id) in ids.iter().enumerate() {
            while let Some(Message::CacheMiss { hash }) = streams[j].take_cache_miss() {
                session.client_cache_miss(id, hash);
            }
        }
    };
    // Converge both viewers, take the crash image, keep drawing while
    // the standby spins up.
    let mut x = seed | 1;
    let band: Vec<u8> = (0..(SW as usize) * 16 * 3)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as u8
        })
        .collect();
    store.screen_mut().put_raw(&Rect::new(0, 16, SW, 16), &band);
    session.put_image(&store, SCREEN, Rect::new(0, 16, SW, 16), &band);
    for r in 0..50u64 {
        pump(&mut session, &mut streams, &mut encoders, &mut links, SimTime(10_000 + r * 5_000));
        if ids.iter().all(|&id| session.backlog(id) == 0) {
            break;
        }
    }
    let image = session.checkpoint(store.screen());
    drop(session);
    store.screen_mut().put_raw(&Rect::new(0, 40, SW, 16), &band);
    let mut standby = SharedSession::restore(&image).expect("crash image restores");
    standby.set_time(SimTime(1_000_000));
    standby.put_image(&store, SCREEN, Rect::new(0, 40, SW, 16), &band);
    let sid = standby.session_id();
    // Warm redial with the matching token; stale redial falls cold.
    for (j, &id) in ids.iter().enumerate() {
        assert!(streams[j].resume(), "drained reader allows resume");
        let Message::SessionResume { last_seq, store_digest, .. } =
            streams[j].resume_token(sid, id.0)
        else {
            unreachable!()
        };
        let digest = if j == 0 { store_digest } else { store_digest ^ 0xDEAD };
        match standby.resume_client(sid, id, digest, store.screen()) {
            ResumeOutcome::Warm { .. } => encoders[j].set_next_seq(last_seq.wrapping_add(1)),
            ResumeOutcome::Cold { .. } => {
                streams[j].feed(&wire::encode_message(&Message::ServerHello {
                    version: PROTOCOL_VERSION,
                    width: SW,
                    height: SH,
                    depth: 24,
                }));
                encoders[j] = FrameEncoder::with_revision(PROTOCOL_VERSION);
            }
        }
    }
    let mut links = vec![
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
        (NetworkConfig::lan_desktop().connect().down, PacketTrace::new()),
    ];
    for r in 0..100u64 {
        pump(&mut standby, &mut streams, &mut encoders, &mut links, SimTime(1_100_000 + r * 5_000));
        if ids.iter().all(|&id| standby.backlog(id) == 0)
            && streams.iter().all(|s| s.pending_bytes() == 0)
        {
            break;
        }
    }
    for (j, _) in ids.iter().enumerate() {
        assert_eq!(
            streams[j].client().framebuffer().data(),
            store.screen().data(),
            "viewer {j} converges after failover"
        );
    }
    let mut t = thinc_telemetry::SessionTelemetry::new(thinc_core::scheduler::NUM_QUEUES);
    for &id in &ids {
        t.resilience.merge(&standby.client_resilience(id).expect("attached"));
    }
    for s in &streams {
        t.resilience.merge(s.resilience_metrics());
    }
    t
}

/// Per-command protocol breakdown for a web and a video session,
/// from the end-to-end telemetry layer (`docs/TELEMETRY.md`).
fn telemetry_report(opts: &Options, jsonl: Option<&str>) -> String {
    let mut out = String::new();

    eprintln!("  [telemetry] web session");
    let wl = WebWorkload::standard();
    let mut web = ThincSystem::new(&NetworkConfig::wan_desktop(), W, H);
    run_web(&mut web, &wl, opts.pages);
    let web_t = web.session_telemetry();
    out.push_str(&breakdown_table(
        "Telemetry: Web Session — Protocol Breakdown (WAN)",
        &web_t,
    ));

    eprintln!("  [telemetry] video session");
    let clip = VideoClip::short(opts.clip_ms);
    let audio = AudioTrack {
        duration_ms: opts.clip_ms,
        ..AudioTrack::benchmark()
    };
    let mut av = ThincSystem::new(&NetworkConfig::lan_desktop(), W, H);
    run_av(&mut av, &clip, Some(&audio), Rect::new(0, 0, W, H));
    let av_t = av.session_telemetry();
    out.push_str(&breakdown_table(
        "Telemetry: Video Session — Protocol Breakdown (LAN)",
        &av_t,
    ));

    eprintln!("  [telemetry] web session over a lossy WAN");
    let mut lossy = ThincSystem::new(&NetworkConfig::lossy_wan(), W, H);
    run_web(&mut lossy, &wl, opts.pages);
    let lossy_t = lossy.session_telemetry();
    out.push_str(&breakdown_table(
        "Telemetry: Web Session — Protocol Breakdown (lossy WAN, 1% injected loss)",
        &lossy_t,
    ));

    eprintln!("  [telemetry] byte-level wire-integrity session over a hostile WAN");
    let integrity_t = integrity_telemetry();
    out.push_str(&breakdown_table(
        "Telemetry: Wire-Integrity Session — Recovery Breakdown (hostile WAN, \
         corruption + reorder + duplication)",
        &integrity_t,
    ));

    eprintln!("  [telemetry] checkpoint failover session (warm resume + cold fallback)");
    let failover_t = failover_telemetry();
    out.push_str(&breakdown_table(
        "Telemetry: Failover Session — Resume Breakdown (server crash, \
         one warm resume + one cold fallback)",
        &failover_t,
    ));

    if let Some(path) = jsonl {
        let data = web_t.export_jsonl();
        match std::fs::write(path, &data) {
            Ok(()) => eprintln!(
                "  [telemetry] wrote {} timeline events to {path}",
                web_t.timeline.len()
            ),
            Err(e) => eprintln!("  [telemetry] failed to write {path}: {e}"),
        }
    }
    out
}

fn table2() -> String {
    let rows: Vec<Vec<String>> = remote_sites()
        .into_iter()
        .map(|s| {
            vec![
                s.name.into(),
                if s.planetlab { "yes" } else { "no" }.into(),
                s.location.into(),
                format!("{} miles", s.miles),
                format!("{:.0} ms", s.rtt().as_secs_f64() * 1000.0),
                format!("{} KB", s.rwnd_bytes() / 1024),
            ]
        })
        .collect();
    table(
        "Table 2: Remote Sites for WAN Experiments (modeled parameters)",
        &["Name", "PlanetLab", "Location", "Distance", "RTT", "TCP window"],
        &rows,
    )
}

/// Broadcast fan-out telemetry: 96 viewers of one desktop through
/// the sharded session manager, reported per shard. Small enough to
/// run with the other figures (the 1k-client version is the perfgate
/// fan-out macro); the interesting column is the hit ratio — the
/// fraction of plane-served sends whose wire form some other client
/// had already paid for.
fn fanout_report() -> String {
    const FW: u32 = 320;
    const FH: u32 = 240;
    const CLIENTS: usize = 96;
    const SHARDS: usize = 8;
    const WORKERS: usize = 4;
    let link = |lan: bool| {
        (
            TcpPipe::new(TcpParams {
                bandwidth_bps: if lan { 20_000_000 } else { 3_000_000 },
                rtt: SimDuration::from_millis(if lan { 2 } else { 40 }),
                sndbuf_bytes: 32 * 1024,
                ..TcpParams::default()
            }),
            PacketTrace::new(),
        )
    };
    let mut session =
        SharedSession::new(FW, FH, PixelFormat::Rgb888, "host").with_workers(WORKERS);
    session.auth_mut().enable_sharing("pw");
    let mut m = ShardedManager::new(session, SHARDS);
    m.attach(&Credentials::Owner { user: "host".into() }, FW, FH, link(true))
        .expect("owner attach");
    for i in 1..CLIENTS {
        // Three of four viewers are same-screen (one encode-once
        // equivalence class); the rest view scaled-down, adding
        // per-policy classes. A third sit on WAN-ish links.
        let (vw, vh) = if i % 4 == 3 { (FW / 2, FH / 2) } else { (FW, FH) };
        m.attach(
            &Credentials::Peer { user: format!("viewer{i}"), password: "pw".into() },
            vw,
            vh,
            link(i % 3 != 2),
        )
        .expect("peer attach");
    }
    let store = DrawableStore::new(FW, FH, PixelFormat::Rgb888);
    let mut now = SimTime(1_000);
    for epoch in 0u64..16 {
        // A moving video-ish band plus periodic UI fills: the
        // broadcast workload the plane is built for.
        let y = ((epoch * 30) % (FH as u64 - 60)) as i32;
        let band: Vec<u8> = (0..(FW as usize) * 48 * 3)
            .map(|i| (i as u64 ^ (epoch.wrapping_mul(131))) as u8)
            .collect();
        m.session_mut()
            .put_image(&store, SCREEN, Rect::new(0, y, FW, 48), &band);
        if epoch % 3 == 0 {
            m.session_mut().solid_fill(
                &store,
                SCREEN,
                Rect::new(8, 8, 96, 24),
                Color::rgb(epoch as u8, 64, 128),
            );
        }
        m.flush_epoch(now);
        now = SimTime(now.0 + 8_000);
    }
    // Drain so the numbers cover completed deliveries.
    for _ in 0..200 {
        if m.session()
            .client_ids()
            .iter()
            .all(|id| m.session().backlog(*id) == 0)
        {
            break;
        }
        m.flush_epoch(now);
        now = SimTime(now.0 + 8_000);
    }

    let mut rows = Vec::new();
    let mut total = thinc_telemetry::Histogram::exponential(8, 2, 24);
    let (mut sends, mut encodes, mut amortized) = (0u64, 0u64, 0u64);
    for s in 0..m.shard_count() {
        let sm = m.shard_metrics(s);
        sends += sm.shared_sends();
        encodes += sm.payload_encodes();
        amortized += sm.bytes_amortized();
        total.merge_from(sm.flush_wall_us());
        rows.push(vec![
            format!("{s}"),
            format!("{}", sm.clients()),
            format!("{}", sm.epochs()),
            format!("{}", sm.shared_sends()),
            format!("{}", sm.payload_encodes()),
            pct(sm.hit_ratio()),
            kb(sm.bytes_amortized() as f64 / 1024.0),
        ]);
    }
    let mut out = table(
        &format!(
            "Fan-out: per-shard encode-once telemetry \
             ({CLIENTS} clients, {SHARDS} shards, {WORKERS} workers)"
        ),
        &["Shard", "Clients", "Epochs", "Plane sends", "Encodes", "Hit ratio", "Amortized"],
        &rows,
    );
    let hit = if sends == 0 {
        0.0
    } else {
        (sends - encodes.min(sends)) as f64 / sends as f64
    };
    // Fairness over the same-screen LAN cohort: identical demand, so
    // identical delivery is the target.
    let cohort: Vec<u64> = m
        .session()
        .client_ids()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i > 0 && i % 4 != 3 && i % 3 != 2)
        .map(|(_, id)| m.session().client_sent_bytes(id))
        .collect();
    let fairness = match (cohort.iter().min(), cohort.iter().max()) {
        (Some(&lo), Some(&hi)) if hi > 0 => lo as f64 / hi as f64,
        _ => 1.0,
    };
    out.push_str(&format!(
        "\naggregate: hit ratio {}, {} encode output amortized, \
         fairness {:.4} (min/max bytes, same-screen LAN cohort)\n\
         shard flush wall: p50 {} us, p99 {} us (report-only; \
         latency gates use virtual time)\n",
        pct(hit),
        mb(amortized as f64 / (1024.0 * 1024.0)),
        fairness,
        total.quantile(0.50),
        total.quantile(0.99),
    ));
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<String> = Vec::new();
    let mut opts = Options {
        pages: 54,
        clip_ms: 34_750,
    };
    let mut jsonl: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => figs.extend(
                ["2", "3", "4", "5", "6", "7", "t2", "fanout", "telemetry"].map(String::from),
            ),
            "--fig" => {
                i += 1;
                figs.push(args.get(i).cloned().unwrap_or_default());
            }
            "--pages" => {
                i += 1;
                opts.pages = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(54);
            }
            "--clip-ms" => {
                i += 1;
                opts.clip_ms = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(34_750);
            }
            "--jsonl" => {
                i += 1;
                jsonl = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: figures --all | --fig <2|3|4|5|6|7|t2|fanout|telemetry> \
                     [--pages N] [--clip-ms M] [--jsonl PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figs.is_empty() {
        figs.extend(
            ["2", "3", "4", "5", "6", "7", "t2", "fanout", "telemetry"].map(String::from),
        );
    }
    figs.dedup();
    let wants = |f: &str| figs.iter().any(|g| g == f);
    if wants("t2") {
        println!("{}", table2());
    }
    if wants("2") || wants("3") {
        let (f2, f3) = fig2_and_3(&opts);
        if wants("2") {
            println!("{f2}");
        }
        if wants("3") {
            println!("{f3}");
        }
    }
    if wants("4") {
        println!("{}", fig4(&opts));
    }
    if wants("5") || wants("6") {
        let (f5, f6) = fig5_and_6(&opts);
        if wants("5") {
            println!("{f5}");
        }
        if wants("6") {
            println!("{f6}");
        }
    }
    if wants("7") {
        println!("{}", fig7(&opts));
    }
    if wants("fanout") {
        println!("{}", fanout_report());
    }
    if wants("telemetry") {
        println!("{}", telemetry_report(&opts, jsonl.as_deref()));
    }
}
