//! The web page-load benchmark (Figures 2, 3, 4).
//!
//! For each page the harness reproduces the §8.2 procedure: the
//! mechanical click fires, the input packet crosses the network, the
//! server-side browser fetches and processes the content, the page is
//! composed offscreen and copied onscreen, and the display updates
//! drain to the client. Page latency is measured from the click to
//! the last update arrival (slow-motion benchmarking), optionally
//! plus client processing time on instrumentable platforms.

use thinc_baselines::RemoteDisplay;
use thinc_display::drawable::DrawableId;
use thinc_display::request::DrawRequest;
use thinc_net::time::{SimDuration, SimTime};
use thinc_workloads::web::{PageKind, WebWorkload};

/// Per-page measurement.
#[derive(Debug, Clone, Copy)]
pub struct PageMeasurement {
    /// Content class of the page.
    pub kind: PageKind,
    /// Click-to-last-update latency, seconds.
    pub latency_s: f64,
    /// Protocol bytes transferred for the page (both directions).
    pub bytes: u64,
}

/// Result of a full web benchmark run on one system.
#[derive(Debug, Clone)]
pub struct WebResult {
    /// System name.
    pub system: String,
    /// Per-page measurements.
    pub pages: Vec<PageMeasurement>,
    /// Average latency (network measure), seconds.
    pub avg_latency_s: f64,
    /// Average latency including client processing, when measurable.
    pub avg_latency_with_client_s: Option<f64>,
    /// Average data per page, kilobytes.
    pub avg_page_kb: f64,
}

/// Inter-page think time (long enough to disambiguate pages in the
/// capture, as in §8.2).
const THINK_TIME: SimDuration = SimDuration(1_000_000);

/// Runs the first `page_limit` pages of `workload` on `sys`.
pub fn run_web(
    sys: &mut dyn RemoteDisplay,
    workload: &WebWorkload,
    page_limit: usize,
) -> WebResult {
    let pages = workload.pages();
    let n = page_limit.min(pages.len());
    let mut now = SimTime::ZERO + SimDuration::from_millis(100);
    let mut out = Vec::with_capacity(n);
    let mut client_secs_before = sys.client_processing_secs().unwrap_or(0.0);
    let mut client_total = 0.0f64;
    let mut measurable = sys.client_processing_secs().is_some();
    for (i, page) in pages.iter().take(n).enumerate() {
        let bytes_before = sys.trace().total_bytes();
        let t0 = now;
        let at_server = sys.click(now, page.link_position);
        let render_start = sys.fetch_content(at_server, page.content_bytes);
        // The page buffer is the (i+1)-th pixmap ever created: ids are
        // assigned sequentially by every window server in the harness.
        let pm = DrawableId((i + 1) as u32);
        let mut reqs = vec![DrawRequest::CreatePixmap {
            width: workload.width,
            height: workload.height,
        }];
        reqs.extend(workload.render_requests(page.index, pm));
        reqs.push(DrawRequest::FreePixmap { id: pm });
        let cpu = sys.process(render_start, reqs);
        let last = sys.drain(render_start + cpu);
        let latency = (last - t0).as_secs_f64();
        let bytes = sys.trace().total_bytes() - bytes_before;
        out.push(PageMeasurement {
            kind: page.kind,
            latency_s: latency,
            bytes,
        });
        if let Some(cs) = sys.client_processing_secs() {
            client_total += cs - client_secs_before;
            client_secs_before = cs;
        } else {
            measurable = false;
        }
        now = last + THINK_TIME;
    }
    let avg_latency_s = out.iter().map(|p| p.latency_s).sum::<f64>() / n.max(1) as f64;
    let avg_page_kb = out.iter().map(|p| p.bytes).sum::<u64>() as f64 / 1024.0 / n.max(1) as f64;
    WebResult {
        system: sys.name(),
        pages: out,
        avg_latency_s,
        avg_latency_with_client_s: measurable
            .then(|| avg_latency_s + client_total / n.max(1) as f64),
        avg_page_kb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thinc_system::ThincSystem;
    use thinc_baselines::{LocalPc, SunRay, Vnc, XSystem};
    use thinc_net::link::NetworkConfig;

    const PAGES: usize = 6;

    fn small_workload() -> WebWorkload {
        WebWorkload::new(256, 192, 2005)
    }

    #[test]
    fn thinc_beats_vnc_on_lan_pages() {
        let lan = NetworkConfig::lan_desktop();
        let wl = small_workload();
        let mut thinc = ThincSystem::new(&lan, 256, 192);
        let thinc_res = run_web(&mut thinc, &wl, PAGES);
        let mut vnc = Vnc::new(&lan, 256, 192);
        let vnc_res = run_web(&mut vnc, &wl, PAGES);
        assert!(
            thinc_res.avg_latency_s < vnc_res.avg_latency_s,
            "thinc {} vs vnc {}",
            thinc_res.avg_latency_s,
            vnc_res.avg_latency_s
        );
        // THINC sends noticeably less data than VNC (§8.3: "almost
        // half the data").
        assert!(thinc_res.avg_page_kb < vnc_res.avg_page_kb);
    }

    #[test]
    fn thinc_flat_lan_to_wan_x_degrades() {
        let wl = small_workload();
        let lan = NetworkConfig::lan_desktop();
        let wan = NetworkConfig::wan_desktop();
        let thinc_lan = run_web(&mut ThincSystem::new(&lan, 256, 192), &wl, PAGES);
        let thinc_wan = run_web(&mut ThincSystem::new(&wan, 256, 192), &wl, PAGES);
        let x_lan = run_web(&mut XSystem::new(&lan, 256, 192), &wl, PAGES);
        let x_wan = run_web(&mut XSystem::new(&wan, 256, 192), &wl, PAGES);
        let thinc_slowdown = thinc_wan.avg_latency_s / thinc_lan.avg_latency_s;
        let x_slowdown = x_wan.avg_latency_s / x_lan.avg_latency_s;
        assert!(
            x_slowdown > thinc_slowdown * 1.5,
            "x {x_slowdown:.2}x vs thinc {thinc_slowdown:.2}x"
        );
        // THINC stays fastest in the WAN.
        assert!(thinc_wan.avg_latency_s < x_wan.avg_latency_s);
    }

    #[test]
    fn thinc_faster_than_local_pc() {
        let lan = NetworkConfig::lan_desktop();
        let wl = small_workload();
        let thinc = run_web(&mut ThincSystem::new(&lan, 256, 192), &wl, PAGES);
        let local = run_web(&mut LocalPc::new(256, 192), &wl, PAGES);
        // Including client processing on both sides, the faster
        // server CPU wins (§8.3).
        let t = thinc.avg_latency_with_client_s.unwrap();
        let l = local.avg_latency_with_client_s.unwrap();
        assert!(t < l, "thinc {t} vs local {l}");
    }

    #[test]
    fn local_pc_most_bandwidth_efficient_at_desktop_resolution() {
        // At the paper's 1024x768 the local PC transfers the least
        // data (only the page content itself crosses the network).
        // Sample enough pages to include every content class: on
        // text/mixed pages alone the comparison is knife-edge (THINC's
        // semantic translation can undercut the raw content size), and
        // the paper's claim is about the full benchmark mix.
        let lan = NetworkConfig::lan_desktop();
        let wl = WebWorkload::standard();
        let thinc = run_web(&mut ThincSystem::new(&lan, 1024, 768), &wl, 4);
        let local = run_web(&mut LocalPc::new(1024, 768), &wl, 4);
        assert!(
            local.avg_page_kb < thinc.avg_page_kb,
            "local {} vs thinc {}",
            local.avg_page_kb,
            thinc.avg_page_kb
        );
    }

    #[test]
    fn thinc_beats_sunray_via_translation() {
        let lan = NetworkConfig::lan_desktop();
        let wl = small_workload();
        let thinc = run_web(&mut ThincSystem::new(&lan, 256, 192), &wl, PAGES);
        let sunray = run_web(&mut SunRay::new(&lan, 256, 192), &wl, PAGES);
        assert!(
            thinc.avg_latency_s < sunray.avg_latency_s,
            "thinc {} vs sunray {}",
            thinc.avg_latency_s,
            sunray.avg_latency_s
        );
    }

    #[test]
    fn measurements_are_deterministic() {
        let lan = NetworkConfig::lan_desktop();
        let wl = small_workload();
        let a = run_web(&mut ThincSystem::new(&lan, 256, 192), &wl, 3);
        let b = run_web(&mut ThincSystem::new(&lan, 256, 192), &wl, 3);
        assert_eq!(a.avg_latency_s, b.avg_latency_s);
        assert_eq!(a.avg_page_kb, b.avg_page_kb);
    }
}
