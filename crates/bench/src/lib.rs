#![warn(missing_docs)]
//! The benchmark harness: regenerates every table and figure of the
//! THINC paper's evaluation (§8).
//!
//! - [`thinc_system`]: adapts the real THINC server+client pipeline to
//!   the harness's [`RemoteDisplay`] interface,
//! - [`sites`]: the remote sites of Table 2 with distance-derived
//!   network parameters (including the Korea PlanetLab site's 256 KB
//!   TCP-window clamp),
//! - [`webbench`]: the web page-load benchmark (Figures 2, 3, 4),
//! - [`avbench`]: the audio/video playback benchmark (Figures 5, 6, 7),
//! - [`report`]: plain-text table rendering for the figure binaries.
//!
//! Run `cargo run -p thinc-bench --bin figures -- --all` to regenerate
//! everything; see `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! [`RemoteDisplay`]: thinc_baselines::RemoteDisplay

pub mod avbench;
pub mod report;
pub mod sites;
pub mod thinc_system;
pub mod webbench;

pub use sites::{remote_sites, RemoteSite};
pub use thinc_system::ThincSystem;
