//! THINC under the benchmark harness.
//!
//! Unlike the baseline *models*, this adapter drives the actual THINC
//! implementation end to end: the window server rasterizes requests
//! and mirrors them to the real [`ThincServer`] driver; the server
//! translates, schedules and flushes over the simulated connection;
//! and a real [`HeadlessClient`] executes every message — so the
//! benchmark also continuously verifies that the client framebuffer
//! matches the server screen.

use thinc_baselines::framework::{raster_cost, server_time, CLIENT_HZ};
use thinc_baselines::traits::{AvStats, RemoteDisplay};
use thinc_client::HeadlessClient;
use thinc_core::server::{ServerConfig, ThincServer};
use thinc_display::request::DrawRequest;
use thinc_display::server::WindowServer;
use thinc_net::link::{DuplexLink, NetworkConfig};
use thinc_net::time::{SimDuration, SimTime};
use thinc_net::trace::{Direction, PacketTrace};
use thinc_protocol::message::{Message, ProtocolInput};
use thinc_protocol::wire::encode_message;
use thinc_raster::{Point, Rect, YuvFrame};
use thinc_telemetry::{SessionTelemetry, Timeline};

/// Flush period of the server's delivery loop.
const FLUSH_PERIOD: SimDuration = SimDuration(2_000);

/// Minimum virtual-time gap between timeline samples of the same
/// metric (bounds the JSONL export to ~100 samples per second of
/// session time).
const TIMELINE_GAP: SimDuration = SimDuration(10_000);

/// The real THINC pipeline behind the harness interface.
pub struct ThincSystem {
    ws: WindowServer<ThincServer>,
    link: DuplexLink,
    trace: PacketTrace,
    client: HeadlessClient,
    last_arrival: Option<SimTime>,
    frames_sent: u32,
    frames_delivered: u32,
    audio_bytes: u64,
    timeline: Timeline,
    net_metrics: thinc_telemetry::NetMetrics,
}

impl ThincSystem {
    /// THINC over `net` at the given session geometry.
    pub fn new(net: &NetworkConfig, width: u32, height: u32) -> Self {
        Self::with_config(
            net,
            ServerConfig {
                width,
                height,
                ..ServerConfig::default()
            },
            (width, height),
        )
    }

    /// THINC with a small client viewport (server-side scaling).
    pub fn with_viewport(net: &NetworkConfig, width: u32, height: u32, vw: u32, vh: u32) -> Self {
        Self::with_config(
            net,
            ServerConfig {
                width,
                height,
                ..ServerConfig::default()
            },
            (vw, vh),
        )
    }

    /// THINC with a custom configuration (ablations).
    pub fn with_config(net: &NetworkConfig, config: ServerConfig, viewport: (u32, u32)) -> Self {
        let (w, h, fmt) = (config.width, config.height, config.format);
        let mut server = ThincServer::new(config);
        server.handle_message(&Message::ClientHello {
            version: thinc_protocol::PROTOCOL_VERSION,
            viewport_width: viewport.0,
            viewport_height: viewport.1,
        });
        Self {
            ws: WindowServer::new(w, h, fmt, server),
            link: net.connect(),
            trace: PacketTrace::new(),
            client: HeadlessClient::new(viewport.0, viewport.1, fmt),
            last_arrival: None,
            frames_sent: 0,
            frames_delivered: 0,
            audio_bytes: 0,
            timeline: Timeline::new(),
            net_metrics: thinc_telemetry::NetMetrics::new(),
        }
    }

    /// A full telemetry snapshot of this session, assembled from the
    /// metric groups each component owns: the server's protocol and
    /// scheduler counters, the translator, the downlink transport,
    /// the client decoder, and the sampled timeline.
    pub fn session_telemetry(&self) -> SessionTelemetry {
        let driver = self.ws.driver();
        let mut t = SessionTelemetry::new(thinc_core::scheduler::NUM_QUEUES);
        t.protocol = driver.protocol_metrics();
        t.scheduler = driver.scheduler_metrics().clone();
        t.translator = driver.translator_metrics().clone();
        t.net = self.net_metrics.clone();
        t.client = self.client.metrics().clone();
        t.timeline = self.timeline.clone();
        t.resilience = driver.resilience_metrics();
        for stats in [self.link.down.fault_stats(), self.link.up.fault_stats()] {
            t.resilience.add_transport_faults(
                stats.segments_lost,
                stats.retransmits,
                stats.corrupt_events,
                stats.corrupted_bytes,
                stats.outage_defers,
                stats.segments_reordered,
                stats.segments_duplicated,
            );
        }
        t
    }

    /// The server-side screen (ground truth).
    pub fn server_screen(&self) -> &thinc_raster::Framebuffer {
        self.ws.screen()
    }

    /// The client (for verification).
    pub fn client(&self) -> &HeadlessClient {
        &self.client
    }

    /// The THINC server's statistics.
    pub fn server_stats(&self) -> thinc_core::server::ServerStats {
        self.ws.driver().stats()
    }

    /// Whether the client framebuffer matches the server screen
    /// byte for byte (only meaningful at full viewport with all
    /// pending updates drained).
    pub fn verified(&self) -> bool {
        self.client.client().framebuffer().data() == self.ws.screen().data()
    }

    fn flush_once(&mut self, now: SimTime) {
        let batch = self.ws.driver_mut().flush(now, &mut self.link.down, &mut self.trace);
        for (arrival, msg) in batch {
            if matches!(msg, Message::VideoData { .. }) {
                self.frames_delivered += 1;
            }
            if let Message::Audio { ref data, .. } = msg {
                self.audio_bytes += data.len() as u64;
            }
            self.client.receive(arrival, &msg);
            self.last_arrival = Some(self.last_arrival.map_or(arrival, |a| a.max(arrival)));
        }
        self.sample_net(now);
    }

    /// Samples the downlink transport into the net gauges and the
    /// throttled session timeline.
    fn sample_net(&mut self, now: SimTime) {
        let cwnd = self.link.down.cwnd_bytes() as f64;
        let util = self.link.down.utilization(now);
        let sent = self.link.down.bytes_sent();
        let delta = sent.saturating_sub(self.net_metrics.bytes_sent());
        self.net_metrics.add_bytes(delta);
        self.net_metrics.sample(cwnd, util);
        self.timeline
            .record_sampled(now.0, "net.cwnd_bytes", cwnd, TIMELINE_GAP.0);
        self.timeline
            .record_sampled(now.0, "net.utilization", util, TIMELINE_GAP.0);
        let driver = self.ws.driver();
        self.timeline.record_sampled(
            now.0,
            "server.display_backlog",
            driver.display_backlog() as f64,
            TIMELINE_GAP.0,
        );
        self.timeline.record_sampled(
            now.0,
            "server.av_backlog",
            driver.av_backlog() as f64,
            TIMELINE_GAP.0,
        );
    }
}

impl RemoteDisplay for ThincSystem {
    fn name(&self) -> String {
        "THINC".into()
    }

    fn click(&mut self, now: SimTime, pos: Point) -> SimTime {
        let msg = Message::Input(ProtocolInput::ButtonPress {
            x: pos.x,
            y: pos.y,
            button: 1,
        });
        let size = encode_message(&msg).len() as u64;
        let (_, arrival) = self.link.up.send(now, size);
        self.trace.record(now, arrival, size, Direction::Up, "input");
        self.client.mark_frame_request(now);
        if let Some(ev) = self.ws.driver_mut().handle_message(&msg) {
            self.ws.handle_input(ev);
        }
        arrival
    }

    fn process(&mut self, now: SimTime, reqs: Vec<DrawRequest>) -> SimDuration {
        let cpu = server_time(raster_cost(&reqs));
        self.ws.driver_mut().set_time(now);
        self.ws.process_all(reqs);
        self.flush_once(now + cpu);
        cpu
    }

    fn pump(&mut self, now: SimTime) {
        self.flush_once(now);
    }

    fn drain(&mut self, from: SimTime) -> SimTime {
        let mut now = from;
        for _ in 0..1_000_000 {
            if self.ws.driver().av_backlog() == 0 && self.ws.driver().display_backlog() == 0 {
                break;
            }
            self.flush_once(now);
            now = self.link.down.tx_free_at().max(now + FLUSH_PERIOD);
        }
        self.last_arrival.unwrap_or(from).max(from)
    }

    fn last_client_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    fn trace(&self) -> &PacketTrace {
        &self.trace
    }

    fn video_frame(&mut self, now: SimTime, frame: &YuvFrame, dst: Rect) {
        self.ws.driver_mut().set_time(now);
        self.ws.process(DrawRequest::VideoPut {
            frame: frame.clone(),
            dst,
        });
        self.frames_sent += 1;
        self.flush_once(now);
    }

    fn audio(&mut self, now: SimTime, pcm: &[u8]) {
        self.ws.driver_mut().set_time(now);
        if self.ws.driver().av_backlog() == 0 && self.audio_bytes == 0 && pcm.is_empty() {
            return;
        }
        // Lazily open the device on first use.
        if self.ws.driver_mut().stats().audio_messages == 0 && self.audio_bytes == 0 {
            self.ws.driver_mut().open_audio(44_100, 2);
        }
        self.ws.driver_mut().play_audio(pcm);
        self.flush_once(now);
    }

    fn av_stats(&self) -> AvStats {
        AvStats {
            frames_delivered: self.frames_delivered,
            frames_dropped: self.frames_sent.saturating_sub(self.frames_delivered),
            audio_bytes: self.audio_bytes,
        }
    }

    fn client_processing_secs(&self) -> Option<f64> {
        Some(self.client.client().hardware().seconds_at(CLIENT_HZ))
    }

    fn supports_small_screen(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::Color;

    #[test]
    fn end_to_end_fill_reaches_client() {
        let mut sys = ThincSystem::new(&NetworkConfig::lan_desktop(), 64, 64);
        sys.process(
            SimTime::ZERO,
            vec![DrawRequest::FillRect {
                target: thinc_display::SCREEN,
                rect: Rect::new(0, 0, 32, 32),
                color: Color::rgb(10, 20, 30),
            }],
        );
        sys.drain(SimTime::ZERO);
        assert_eq!(
            sys.client().client().framebuffer().get_pixel(16, 16),
            Some(Color::rgb(10, 20, 30))
        );
        assert!(sys.verified());
    }

    #[test]
    fn end_to_end_offscreen_page_compose() {
        let mut sys = ThincSystem::new(&NetworkConfig::wan_desktop(), 128, 128);
        // Page composed offscreen, then copied onscreen.
        let reqs = vec![
            DrawRequest::CreatePixmap {
                width: 128,
                height: 128,
            },
            DrawRequest::FillRect {
                target: thinc_display::drawable::DrawableId(1),
                rect: Rect::new(0, 0, 128, 128),
                color: Color::WHITE,
            },
            // Short enough to stay inside the 128-px pixmap: text
            // that overhangs the pixmap is covered by RAW fallback.
            DrawRequest::Text {
                target: thinc_display::drawable::DrawableId(1),
                x: 8,
                y: 8,
                text: "hello thinc".into(),
                fg: Color::BLACK,
            },
            DrawRequest::CopyArea {
                src: thinc_display::drawable::DrawableId(1),
                dst: thinc_display::SCREEN,
                src_rect: Rect::new(0, 0, 128, 128),
                dst_x: 0,
                dst_y: 0,
            },
        ];
        sys.process(SimTime::ZERO, reqs);
        sys.drain(SimTime::ZERO);
        assert!(sys.verified(), "client framebuffer != server screen");
        // Offscreen awareness: no RAW fallback needed for this page.
        assert_eq!(sys.server_stats().translator.raw_fallback_bytes, 0);
    }

    #[test]
    fn video_frames_counted() {
        let mut sys = ThincSystem::new(&NetworkConfig::lan_desktop(), 128, 128);
        let frame = YuvFrame::new(thinc_raster::YuvFormat::Yv12, 32, 32);
        for i in 0..5 {
            sys.video_frame(SimTime(i * 41_667), &frame, Rect::new(0, 0, 128, 128));
        }
        sys.drain(SimTime(300_000));
        let s = sys.av_stats();
        assert_eq!(s.frames_delivered, 5);
        assert_eq!(s.frames_dropped, 0);
    }

    #[test]
    fn viewport_scaling_shrinks_traffic() {
        // Incompressible noise so the comparison measures scaling,
        // not the RAW compressor.
        let mut x = 5u64;
        let img: Vec<u8> = (0..128usize * 128 * 3)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let reqs = || {
            vec![DrawRequest::PutImage {
                target: thinc_display::SCREEN,
                rect: Rect::new(0, 0, 128, 128),
                data: img.clone(),
            }]
        };
        let mut full = ThincSystem::new(&NetworkConfig::lan_desktop(), 128, 128);
        full.process(SimTime::ZERO, reqs());
        full.drain(SimTime::ZERO);
        let mut pda = ThincSystem::with_viewport(&NetworkConfig::lan_desktop(), 128, 128, 40, 40);
        pda.process(SimTime::ZERO, reqs());
        pda.drain(SimTime::ZERO);
        assert!(
            pda.trace().bytes(Direction::Down) * 2 < full.trace().bytes(Direction::Down),
            "pda {} vs full {}",
            pda.trace().bytes(Direction::Down),
            full.trace().bytes(Direction::Down)
        );
    }
}
