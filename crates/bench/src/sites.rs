//! The remote sites of Table 2, with network parameters derived from
//! geography.
//!
//! The paper ran the THINC client on PlanetLab nodes and volunteer
//! machines around the world. We derive each site's RTT from its
//! great-circle distance to the New York server (light in fiber plus
//! a routing-inflation factor — the standard first-order model), and
//! reproduce the two facts the paper reports about the testbed: a
//! 1 MB TCP window was used wherever allowed, but *PlanetLab nodes
//! were limited to 256 KB* — which is exactly why the Korea site
//! cannot sustain video (§8.3).

use thinc_net::link::NetworkConfig;
use thinc_net::time::SimDuration;

/// One remote client site (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSite {
    /// Short name used in the figures.
    pub name: &'static str,
    /// Whether the node is on PlanetLab (256 KB TCP window).
    pub planetlab: bool,
    /// Location, as listed in Table 2.
    pub location: &'static str,
    /// Distance from the New York server, in miles.
    pub miles: u32,
}

/// Speed of light in fiber, in miles per millisecond.
const FIBER_MILES_PER_MS: f64 = 124.0;
/// Routing inflation: real paths are longer than great circles.
const ROUTE_INFLATION: f64 = 1.8;
/// Last-mile and processing floor added to every path.
const BASE_RTT_MS: f64 = 2.0;

impl RemoteSite {
    /// The site's modeled round-trip time to the New York testbed.
    pub fn rtt(&self) -> SimDuration {
        let ms = BASE_RTT_MS + 2.0 * self.miles as f64 / FIBER_MILES_PER_MS * ROUTE_INFLATION;
        SimDuration::from_micros((ms * 1000.0) as u64)
    }

    /// The site's TCP receive window (the PlanetLab clamp).
    pub fn rwnd_bytes(&self) -> u64 {
        if self.planetlab {
            256 * 1024
        } else {
            1024 * 1024
        }
    }

    /// The network configuration for a client at this site.
    pub fn network(&self) -> NetworkConfig {
        NetworkConfig::custom(self.name, 100_000_000, self.rtt(), self.rwnd_bytes())
    }

    /// Effective bandwidth to the server (window- or link-limited),
    /// relative to the local LAN testbed — the right-hand series of
    /// Figure 7.
    pub fn relative_bandwidth(&self) -> f64 {
        let rtt_s = self.rtt().as_secs_f64();
        let window_bps = self.rwnd_bytes() as f64 * 8.0 / rtt_s;
        window_bps.min(100e6) / 100e6
    }
}

/// Table 2: the eleven remote sites.
pub fn remote_sites() -> Vec<RemoteSite> {
    vec![
        RemoteSite { name: "NY", planetlab: true, location: "New York, NY, USA", miles: 5 },
        RemoteSite { name: "PA", planetlab: true, location: "Philadelphia, PA, USA", miles: 78 },
        RemoteSite { name: "MA", planetlab: true, location: "Cambridge, MA, USA", miles: 188 },
        RemoteSite { name: "MN", planetlab: true, location: "St. Paul, MN, USA", miles: 1015 },
        RemoteSite { name: "NM", planetlab: false, location: "Albuquerque, NM, USA", miles: 1816 },
        RemoteSite { name: "CA", planetlab: false, location: "Stanford, CA, USA", miles: 2571 },
        RemoteSite { name: "CAN", planetlab: true, location: "Waterloo, Canada", miles: 388 },
        RemoteSite { name: "IE", planetlab: false, location: "Maynooth, Ireland", miles: 3185 },
        RemoteSite { name: "PR", planetlab: false, location: "San Juan, Puerto Rico", miles: 1603 },
        RemoteSite { name: "FI", planetlab: false, location: "Helsinki, Finland", miles: 4123 },
        RemoteSite { name: "KR", planetlab: true, location: "Seoul, Korea", miles: 6885 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_sites_as_in_table_2() {
        let sites = remote_sites();
        assert_eq!(sites.len(), 11);
        assert_eq!(sites.iter().filter(|s| s.planetlab).count(), 6);
    }

    #[test]
    fn rtt_grows_with_distance() {
        let sites = remote_sites();
        let ny = sites.iter().find(|s| s.name == "NY").unwrap();
        let fi = sites.iter().find(|s| s.name == "FI").unwrap();
        let kr = sites.iter().find(|s| s.name == "KR").unwrap();
        assert!(ny.rtt() < fi.rtt());
        assert!(fi.rtt() < kr.rtt());
        // NY is essentially LAN-latency; Korea is intercontinental.
        assert!(ny.rtt().as_millis() < 5);
        assert!(kr.rtt().as_millis() > 150);
    }

    #[test]
    fn korea_is_window_limited_below_video_rate() {
        let kr = remote_sites().into_iter().find(|s| s.name == "KR").unwrap();
        // The clip needs ~24 Mbps; Korea's 256 KB window over its RTT
        // cannot sustain that (the Figure 7 failure).
        let net = kr.network();
        let cap = thinc_net::tcp::TcpPipe::new(thinc_net::tcp::TcpParams {
            bandwidth_bps: net.bandwidth_bps,
            rtt: net.rtt,
            rwnd_bytes: net.rwnd_bytes,
            ..Default::default()
        })
        .throughput_cap_bps();
        assert!(cap < 24_000_000, "{cap}");
    }

    #[test]
    fn finland_with_full_window_sustains_video() {
        let fi = remote_sites().into_iter().find(|s| s.name == "FI").unwrap();
        let net = fi.network();
        let cap = thinc_net::tcp::TcpPipe::new(thinc_net::tcp::TcpParams {
            bandwidth_bps: net.bandwidth_bps,
            rtt: net.rtt,
            rwnd_bytes: net.rwnd_bytes,
            ..Default::default()
        })
        .throughput_cap_bps();
        assert!(cap > 24_000_000, "{cap}");
    }

    #[test]
    fn relative_bandwidth_in_unit_range() {
        for s in remote_sites() {
            let rb = s.relative_bandwidth();
            assert!(rb > 0.0 && rb <= 1.0, "{}: {rb}", s.name);
        }
    }
}
