//! A document-scrolling workload.
//!
//! The `COPY` command exists because scrolling and opaque window
//! movement dominate interactive desktop use: "this command improves
//! the user experience by accelerating scrolling and opaque window
//! movement without having to resend screen data from the server"
//! (§3). This workload renders a long text document and scrolls
//! through it line by line — each step is a screen-to-screen copy
//! plus a freshly drawn strip at the bottom, exactly the op stream a
//! text editor or browser produces while scrolling.

use thinc_display::drawable::SCREEN;
use thinc_display::request::DrawRequest;
use thinc_raster::{Color, Rect};

use crate::content;

/// A scrolling session over a synthetic document.
#[derive(Debug, Clone, Copy)]
pub struct ScrollWorkload {
    /// Screen width.
    pub width: u32,
    /// Screen height.
    pub height: u32,
    /// Pixels scrolled per step (one text line).
    pub step: u32,
    /// Number of scroll steps.
    pub steps: u32,
    /// Content seed.
    pub seed: u64,
}

impl ScrollWorkload {
    /// A standard session: full-screen document, 16-px lines.
    pub fn standard(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            step: 16,
            steps: 40,
            seed: 42,
        }
    }

    /// The initial full-document render.
    pub fn initial_requests(&self) -> Vec<DrawRequest> {
        let mut reqs = vec![DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, self.width, self.height),
            color: Color::WHITE,
        }];
        let mut y = 4;
        let mut line = 0u64;
        while (y as u32) + 12 < self.height {
            reqs.push(self.line_request(line, y));
            y += self.step as i32;
            line += 1;
        }
        reqs
    }

    /// One line of document text at height `y`.
    fn line_request(&self, line: u64, y: i32) -> DrawRequest {
        DrawRequest::Text {
            target: SCREEN,
            x: 8,
            y,
            text: content::filler_text(self.seed.wrapping_add(line), 9),
            fg: Color::BLACK,
        }
    }

    /// The requests for scroll step `i` (0-based): shift the view up
    /// by one line and draw the newly exposed line at the bottom.
    pub fn scroll_step_requests(&self, i: u32) -> Vec<DrawRequest> {
        let visible_lines = (self.height.saturating_sub(16)) / self.step;
        let new_line = visible_lines as u64 + i as u64;
        let bottom_y = (visible_lines * self.step) as i32 - self.step as i32 + 4;
        vec![
            // Shift everything up (the accelerated path).
            DrawRequest::CopyArea {
                src: SCREEN,
                dst: SCREEN,
                src_rect: Rect::new(0, self.step as i32, self.width, self.height - self.step),
                dst_x: 0,
                dst_y: 0,
            },
            // Clear and draw the newly exposed strip.
            DrawRequest::FillRect {
                target: SCREEN,
                rect: Rect::new(
                    0,
                    (self.height - self.step) as i32,
                    self.width,
                    self.step,
                ),
                color: Color::WHITE,
            },
            self.line_request(self.seed.wrapping_add(new_line), bottom_y),
        ]
    }

    /// All steps' requests, flattened (for batch runs).
    pub fn all_steps(&self) -> Vec<Vec<DrawRequest>> {
        (0..self.steps).map(|i| self.scroll_step_requests(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_render_fills_screen_with_lines() {
        let w = ScrollWorkload::standard(640, 480);
        let reqs = w.initial_requests();
        assert!(reqs.len() > 20);
        assert!(matches!(reqs[0], DrawRequest::FillRect { .. }));
        assert!(reqs[1..]
            .iter()
            .all(|r| matches!(r, DrawRequest::Text { .. })));
    }

    #[test]
    fn each_step_is_copy_fill_text() {
        let w = ScrollWorkload::standard(640, 480);
        for i in 0..w.steps {
            let reqs = w.scroll_step_requests(i);
            assert_eq!(reqs.len(), 3);
            assert!(matches!(
                reqs[0],
                DrawRequest::CopyArea { src, dst, .. } if src.is_screen() && dst.is_screen()
            ));
            assert!(matches!(reqs[1], DrawRequest::FillRect { .. }));
            assert!(matches!(reqs[2], DrawRequest::Text { .. }));
        }
    }

    #[test]
    fn steps_are_deterministic_and_distinct() {
        let w = ScrollWorkload::standard(640, 480);
        let a = format!("{:?}", w.scroll_step_requests(3));
        let b = format!("{:?}", w.scroll_step_requests(3));
        let c = format!("{:?}", w.scroll_step_requests(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_steps_counts() {
        let w = ScrollWorkload::standard(320, 240);
        assert_eq!(w.all_steps().len(), w.steps as usize);
    }
}
