//! Synthetic pixel content generators.
//!
//! Two content classes matter for the evaluation: *photographic*
//! images (smooth noise — compresses poorly, like the single-large-
//! image pages where THINC resorts to RAW), and *graphic* images
//! (flat regions with hard edges — compresses well, like logos and
//! web graphics). Both are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `w`×`h` RGB bytes of photograph-like content: smooth
/// low-frequency variation plus per-pixel noise.
pub fn photo_rgb(seed: u64, w: u32, h: u32) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (fx, fy) = (rng.gen_range(0.02f32..0.2), rng.gen_range(0.02f32..0.2));
    let (px, py) = (rng.gen_range(0.0f32..6.3), rng.gen_range(0.0f32..6.3));
    let base: [f32; 3] = [
        rng.gen_range(60.0..200.0),
        rng.gen_range(60.0..200.0),
        rng.gen_range(60.0..200.0),
    ];
    let mut out = Vec::with_capacity((w * h * 3) as usize);
    for y in 0..h {
        for x in 0..w {
            let wave = ((x as f32 * fx + px).sin() + (y as f32 * fy + py).cos()) * 30.0;
            for c in base {
                let noise: f32 = rng.gen_range(-18.0..18.0);
                out.push((c + wave + noise).clamp(0.0, 255.0) as u8);
            }
        }
    }
    out
}

/// Generates `w`×`h` RGB bytes of graphic/logo-like content: a flat
/// background with a few solid shapes — highly compressible.
pub fn graphic_rgb(seed: u64, w: u32, h: u32) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bg: [u8; 3] = [rng.gen(), rng.gen(), rng.gen()];
    let mut out = vec![0u8; (w * h * 3) as usize];
    for px in out.chunks_mut(3) {
        px.copy_from_slice(&bg);
    }
    // A few solid rectangles.
    for _ in 0..rng.gen_range(2..6) {
        let fg: [u8; 3] = [rng.gen(), rng.gen(), rng.gen()];
        let rx = rng.gen_range(0..w.max(2) / 2);
        let ry = rng.gen_range(0..h.max(2) / 2);
        let rw = rng.gen_range(1..=(w - rx));
        let rh = rng.gen_range(1..=(h - ry));
        for y in ry..ry + rh {
            for x in rx..rx + rw {
                let off = ((y * w + x) * 3) as usize;
                out[off..off + 3].copy_from_slice(&fg);
            }
        }
    }
    out
}

/// Generates a small tile (for `PFILL`-style page backgrounds).
pub fn tile_rgb(seed: u64, w: u32, h: u32) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let a: [u8; 3] = [rng.gen(), rng.gen(), rng.gen()];
    let b: [u8; 3] = [
        a[0].wrapping_add(16),
        a[1].wrapping_add(16),
        a[2].wrapping_add(16),
    ];
    let mut out = Vec::with_capacity((w * h * 3) as usize);
    for y in 0..h {
        for x in 0..w {
            let c = if (x + y) % 2 == 0 { a } else { b };
            out.extend_from_slice(&c);
        }
    }
    out
}

/// Deterministic pseudo-text: `n` words of latin-ish filler derived
/// from `seed`.
pub fn filler_text(seed: u64, n: usize) -> String {
    const WORDS: &[&str] = &[
        "lorem", "ipsum", "dolor", "sit", "amet", "consectetur", "adipiscing", "elit", "sed",
        "do", "eiusmod", "tempor", "incididunt", "ut", "labore", "et", "dolore", "magna",
        "aliqua", "enim", "ad", "minim", "veniam", "quis", "nostrud",
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7EA7);
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(photo_rgb(1, 16, 16), photo_rgb(1, 16, 16));
        assert_eq!(graphic_rgb(2, 16, 16), graphic_rgb(2, 16, 16));
        assert_eq!(filler_text(3, 10), filler_text(3, 10));
        assert_ne!(photo_rgb(1, 16, 16), photo_rgb(2, 16, 16));
    }

    #[test]
    fn sizes_correct() {
        assert_eq!(photo_rgb(1, 10, 20).len(), 600);
        assert_eq!(graphic_rgb(1, 10, 20).len(), 600);
        assert_eq!(tile_rgb(1, 4, 4).len(), 48);
    }

    #[test]
    fn photo_is_less_compressible_than_graphic() {
        let photo = photo_rgb(7, 64, 64);
        let graphic = graphic_rgb(7, 64, 64);
        let cp = thinc_compressibility(&photo);
        let cg = thinc_compressibility(&graphic);
        assert!(cp > cg, "photo {cp} vs graphic {cg}");
    }

    /// Crude compressibility proxy: count of distinct adjacent-byte
    /// deltas (higher = noisier = less compressible).
    fn thinc_compressibility(data: &[u8]) -> usize {
        let mut deltas = std::collections::HashSet::new();
        for w in data.windows(2) {
            deltas.insert(w[1].wrapping_sub(w[0]));
        }
        deltas.len()
    }

    #[test]
    fn filler_text_word_count() {
        let t = filler_text(1, 25);
        assert_eq!(t.split(' ').count(), 25);
    }
}
