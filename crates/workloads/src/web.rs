//! The i-Bench-style web browsing workload (§8.2).
//!
//! 54 deterministic pages in three classes, mirroring the §8.3
//! page-by-page breakdown:
//!
//! - [`PageKind::TextHeavy`] — mostly text runs over a solid
//!   background (where THINC's `BITMAP`/`SFILL` shine),
//! - [`PageKind::Mixed`] — text + logos + tables + small images (the
//!   majority class, "mixed web content (text, logos, tables, etc.)"),
//! - [`PageKind::LargeImage`] — "primarily ... a single large image"
//!   (where THINC resorts to RAW + compression and the adaptive
//!   compressors of other systems catch up).
//!
//! Each page renders the way Mozilla renders: the content is composed
//! in an *offscreen pixmap* and copied onscreen when ready — the
//! behaviour THINC's offscreen awareness exists for ("offscreen
//! drawing ... is used heavily by Mozilla", §8.3). Each page also
//! carries the size of its HTML+assets, used to model the
//! server-side browser fetching it from the web server.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thinc_display::drawable::DrawableId;
use thinc_display::request::DrawRequest;
use thinc_raster::{Color, Point, Rect};

use crate::content;

/// Number of pages in the benchmark sequence (as in i-Bench).
pub const PAGE_COUNT: usize = 54;

/// Content class of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// Mostly text over solid background.
    TextHeavy,
    /// Text, logos, tables, small images.
    Mixed,
    /// One large photographic image.
    LargeImage,
}

/// One page of the workload.
#[derive(Debug, Clone)]
pub struct WebPage {
    /// Page index (0-based).
    pub index: usize,
    /// Content class.
    pub kind: PageKind,
    /// Bytes of HTML + assets fetched from the web server.
    pub content_bytes: u64,
    /// Where the "next page" link sits (the timed mechanical click).
    pub link_position: Point,
}

/// The 54-page workload for a given screen geometry.
#[derive(Debug, Clone)]
pub struct WebWorkload {
    /// Screen width the browser runs at (fullscreen, §8.2).
    pub width: u32,
    /// Screen height.
    pub height: u32,
    /// Base random seed (pages derive per-page seeds from it).
    pub seed: u64,
}

impl WebWorkload {
    /// The standard benchmark at the paper's desktop resolution.
    pub fn standard() -> Self {
        Self {
            width: 1024,
            height: 768,
            seed: 2005,
        }
    }

    /// A workload at custom geometry.
    pub fn new(width: u32, height: u32, seed: u64) -> Self {
        Self {
            width,
            height,
            seed,
        }
    }

    /// The page descriptors, in benchmark order.
    pub fn pages(&self) -> Vec<WebPage> {
        (0..PAGE_COUNT).map(|i| self.page(i)).collect()
    }

    /// Descriptor of page `index`.
    pub fn page(&self, index: usize) -> WebPage {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(index as u64 * 7919));
        // Class mix: ~20% text-heavy, ~65% mixed, ~15% large-image.
        let kind = match index % 13 {
            0 | 5 => PageKind::TextHeavy,
            3 | 9 => PageKind::LargeImage,
            _ => PageKind::Mixed,
        };
        let content_bytes = match kind {
            PageKind::TextHeavy => rng.gen_range(15_000..40_000),
            PageKind::Mixed => rng.gen_range(40_000..120_000),
            PageKind::LargeImage => rng.gen_range(100_000..250_000),
        };
        WebPage {
            index,
            kind,
            content_bytes,
            link_position: Point::new(
                rng.gen_range(50..(self.width as i32 - 50)),
                rng.gen_range((self.height as i32 * 3 / 4)..(self.height as i32 - 10)),
            ),
        }
    }

    /// Generates the drawing requests that render page `index`,
    /// browser-style: compose into an offscreen pixmap created by the
    /// caller (`page_buffer`), then copy onscreen.
    ///
    /// The returned list assumes `page_buffer` has the screen's size.
    pub fn render_requests(&self, index: usize, page_buffer: DrawableId) -> Vec<DrawRequest> {
        let page = self.page(index);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(index as u64 * 104_729));
        let mut reqs = Vec::new();
        let w = self.width;
        let h = self.height;
        // Background: solid for most pages, patterned sometimes.
        if rng.gen_bool(0.2) {
            reqs.push(DrawRequest::FillRect {
                target: page_buffer,
                rect: Rect::new(0, 0, w, h),
                color: Color::WHITE,
            });
        } else {
            reqs.push(DrawRequest::FillRect {
                target: page_buffer,
                rect: Rect::new(0, 0, w, h),
                color: Color::rgb(
                    240u8.saturating_sub(rng.gen_range(0..30)),
                    240u8.saturating_sub(rng.gen_range(0..30)),
                    240u8.saturating_sub(rng.gen_range(0..30)),
                ),
            });
        }
        // Header bar.
        reqs.push(DrawRequest::FillRect {
            target: page_buffer,
            rect: Rect::new(0, 0, w, 48),
            color: Color::rgb(
                rng.gen_range(20..90),
                rng.gen_range(20..90),
                rng.gen_range(90..180),
            ),
        });
        reqs.push(DrawRequest::Text {
            target: page_buffer,
            x: 16,
            y: 16,
            text: content::filler_text(page.index as u64, 6),
            fg: Color::WHITE,
        });
        match page.kind {
            PageKind::TextHeavy => {
                self.render_text_body(&mut rng, page_buffer, &mut reqs, index, 60);
            }
            PageKind::Mixed => {
                self.render_text_body(&mut rng, page_buffer, &mut reqs, index, 25);
                // Logos / graphics.
                for g in 0..rng.gen_range(3..7) {
                    let gw = rng.gen_range(60..180u32).min(w / 2);
                    let gh = rng.gen_range(40..120u32).min(h / 3);
                    let gx = rng.gen_range(0..(w - gw)) as i32;
                    let gy = rng.gen_range(60.min(h - gh - 1)..(h - gh)) as i32;
                    reqs.push(DrawRequest::PutImage {
                        target: page_buffer,
                        rect: Rect::new(gx, gy, gw, gh),
                        data: content::graphic_rgb(
                            self.seed ^ (index as u64) << 8 ^ g as u64,
                            gw,
                            gh,
                        ),
                    });
                }
                // A small photo.
                let pw = rng.gen_range(120..260u32).min(w / 2);
                let ph = rng.gen_range(90..200u32).min(h / 2);
                let px = rng.gen_range(0..(w - pw)) as i32;
                let py = rng.gen_range(60.min(h - ph - 1)..(h - ph)) as i32;
                reqs.push(DrawRequest::PutImage {
                    target: page_buffer,
                    rect: Rect::new(px, py, pw, ph),
                    data: content::photo_rgb(self.seed ^ (index as u64) << 16, pw, ph),
                });
                // Table: grid of fills.
                let rows = rng.gen_range(3..7);
                let cols = rng.gen_range(2..5);
                let cell_w = 80;
                let cell_h = 22;
                let tx = rng.gen_range(0..(w.saturating_sub(cols * cell_w).max(1))) as i32;
                let ty = rng.gen_range(60..(h.saturating_sub(rows * cell_h + 60).max(61))) as i32;
                for r in 0..rows {
                    for c in 0..cols {
                        let shade = if (r + c) % 2 == 0 { 255 } else { 230 };
                        reqs.push(DrawRequest::FillRect {
                            target: page_buffer,
                            rect: Rect::new(
                                tx + (c * cell_w) as i32,
                                ty + (r * cell_h) as i32,
                                cell_w - 2,
                                cell_h - 2,
                            ),
                            color: Color::rgb(shade, shade, shade),
                        });
                    }
                }
            }
            PageKind::LargeImage => {
                // One big photo dominating the page.
                let pw = (w - rng.gen_range(40..120).min(w / 2)).max(32);
                let ph = h.saturating_sub(rng.gen_range(120..240)).max(h / 2);
                reqs.push(DrawRequest::PutImage {
                    target: page_buffer,
                    rect: Rect::new(20, 60, pw, ph),
                    data: content::photo_rgb(self.seed ^ (index as u64) << 24, pw, ph),
                });
                self.render_text_body(&mut rng, page_buffer, &mut reqs, index, 4);
            }
        }
        // The "next" link.
        reqs.push(DrawRequest::Text {
            target: page_buffer,
            x: page.link_position.x,
            y: page.link_position.y,
            text: "next page".into(),
            fg: Color::rgb(0, 0, 200),
        });
        // Copy the composed page onscreen (the step THINC's offscreen
        // awareness turns back into semantic commands).
        reqs.push(DrawRequest::CopyArea {
            src: page_buffer,
            dst: thinc_display::drawable::SCREEN,
            src_rect: Rect::new(0, 0, w, h),
            dst_x: 0,
            dst_y: 0,
        });
        reqs
    }

    fn render_text_body(
        &self,
        rng: &mut StdRng,
        target: DrawableId,
        reqs: &mut Vec<DrawRequest>,
        index: usize,
        lines: usize,
    ) {
        let mut y = 64;
        for l in 0..lines {
            let words = rng.gen_range(6..14);
            reqs.push(DrawRequest::Text {
                target,
                x: 24,
                y,
                text: content::filler_text((index * 1000 + l) as u64, words),
                fg: Color::BLACK,
            });
            y += 12;
            if y as u32 >= self.height - 24 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_four_pages() {
        let w = WebWorkload::standard();
        assert_eq!(w.pages().len(), PAGE_COUNT);
    }

    #[test]
    fn deterministic_pages() {
        let w = WebWorkload::standard();
        let a = w.page(10);
        let b = w.page(10);
        assert_eq!(a.content_bytes, b.content_bytes);
        assert_eq!(a.link_position, b.link_position);
    }

    #[test]
    fn class_mix_present() {
        let w = WebWorkload::standard();
        let pages = w.pages();
        let text = pages.iter().filter(|p| p.kind == PageKind::TextHeavy).count();
        let mixed = pages.iter().filter(|p| p.kind == PageKind::Mixed).count();
        let img = pages.iter().filter(|p| p.kind == PageKind::LargeImage).count();
        assert!(text >= 4, "{text}");
        assert!(mixed >= 25, "{mixed}");
        assert!(img >= 4, "{img}");
        assert_eq!(text + mixed + img, PAGE_COUNT);
    }

    #[test]
    fn render_requests_compose_offscreen_then_copy() {
        let w = WebWorkload::standard();
        let pm = DrawableId(42);
        let reqs = w.render_requests(0, pm);
        assert!(reqs.len() > 5);
        // Everything except the final copy targets the pixmap.
        let last = reqs.last().unwrap();
        assert!(matches!(
            last,
            DrawRequest::CopyArea { src, dst, .. }
                if *src == pm && dst.is_screen()
        ));
        for r in &reqs[..reqs.len() - 1] {
            match r {
                DrawRequest::FillRect { target, .. }
                | DrawRequest::Text { target, .. }
                | DrawRequest::PutImage { target, .. } => assert_eq!(*target, pm),
                other => panic!("unexpected request {other:?}"),
            }
        }
    }

    #[test]
    fn large_image_pages_have_big_put_image() {
        let w = WebWorkload::standard();
        let pages = w.pages();
        let idx = pages
            .iter()
            .position(|p| p.kind == PageKind::LargeImage)
            .unwrap();
        let reqs = w.render_requests(idx, DrawableId(1));
        let biggest = reqs
            .iter()
            .filter_map(|r| match r {
                DrawRequest::PutImage { rect, .. } => Some(rect.area()),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(biggest > 400_000, "{biggest} px");
    }

    #[test]
    fn render_deterministic() {
        let w = WebWorkload::standard();
        let a = w.render_requests(7, DrawableId(1));
        let b = w.render_requests(7, DrawableId(1));
        assert_eq!(a.len(), b.len());
        // Compare one image payload for byte equality.
        let get_img = |reqs: &Vec<DrawRequest>| {
            reqs.iter()
                .find_map(|r| match r {
                    DrawRequest::PutImage { data, .. } => Some(data.clone()),
                    _ => None,
                })
                .unwrap_or_default()
        };
        assert_eq!(get_img(&a), get_img(&b));
    }

    #[test]
    fn pda_geometry_workload() {
        let w = WebWorkload::new(320, 240, 1);
        let reqs = w.render_requests(0, DrawableId(1));
        for r in &reqs {
            if let DrawRequest::PutImage { rect, .. } = r {
                assert!(rect.right() <= 320);
            }
        }
    }
}
