#![warn(missing_docs)]
//! Deterministic workload generators for the THINC evaluation.
//!
//! The paper's benchmarks are (§8.2):
//!
//! - **Web**: the i-Bench Web Page Load test — 54 pages mixing text
//!   and graphics, advanced by timed mouse clicks. Reproduced by
//!   [`web`]: a deterministic 54-page sequence that issues the same
//!   *driver-level operation mix* a Mozilla-class browser produces —
//!   offscreen page composition, per-string text runs, solid and
//!   patterned fills, and image uploads — with three page classes
//!   (text-heavy, mixed content, single-large-image) matching the
//!   page-by-page analysis in §8.3.
//! - **A/V**: a 34.75 s MPEG-1 clip, 352×240, fullscreen playback.
//!   Reproduced by [`video`]: a synthetic YV12 frame source with the
//!   same geometry, rate and duration, plus a PCM audio track.
//!
//! [`scroll`] adds a document-scrolling session (the op stream behind
//! the `COPY` command's raison d'être, §3), used by the scrolling
//! ablation.
//!
//! All content is generated from fixed seeds: two runs of any
//! workload are byte-identical.

pub mod content;
pub mod scroll;
pub mod video;
pub mod web;

pub use scroll::ScrollWorkload;
pub use video::{AudioTrack, VideoClip};
pub use web::{PageKind, WebPage, WebWorkload};
