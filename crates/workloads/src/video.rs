//! The audio/video benchmark clip (§8.2).
//!
//! "A 34.75 s MPEG-1 audio/video clip, with the video being of
//! original size 352×240 pixels and displayed at full-screen
//! resolution." The decoder's *output* — the YV12 frames handed to
//! the XVideo interface — is what the remote display system sees, so
//! that is what this module generates: a deterministic moving-scene
//! frame source at the clip's exact geometry, rate and duration,
//! plus the matching PCM audio track.

use thinc_raster::{YuvFormat, YuvFrame};

/// The paper's clip: 352×240, ~24 fps, 34.75 s.
#[derive(Debug, Clone)]
pub struct VideoClip {
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Frames per second.
    pub fps: u32,
    /// Clip duration in milliseconds.
    pub duration_ms: u64,
    /// Pixel format delivered to the device layer.
    pub format: YuvFormat,
}

impl VideoClip {
    /// The benchmark clip exactly as in §8.2.
    pub fn benchmark() -> Self {
        Self {
            width: 352,
            height: 240,
            fps: 24,
            duration_ms: 34_750,
            format: YuvFormat::Yv12,
        }
    }

    /// A shortened variant for fast tests.
    pub fn short(duration_ms: u64) -> Self {
        Self {
            duration_ms,
            ..Self::benchmark()
        }
    }

    /// Total number of frames in the clip.
    pub fn frame_count(&self) -> u32 {
        (self.duration_ms * self.fps as u64 / 1000) as u32
    }

    /// Presentation timestamp of frame `i`, in microseconds.
    pub fn pts_us(&self, i: u32) -> u64 {
        i as u64 * 1_000_000 / self.fps as u64
    }

    /// Bytes of one frame on the wire.
    pub fn frame_bytes(&self) -> usize {
        self.format.frame_size(self.width, self.height)
    }

    /// Generates frame `i`: a moving diagonal gradient with a bouncing
    /// bright block, deterministic in `i`.
    pub fn frame(&self, i: u32) -> YuvFrame {
        let mut f = YuvFrame::new(self.format, self.width, self.height);
        let w = self.width as usize;
        let h = self.height as usize;
        let phase = (i * 3) as usize;
        match self.format {
            YuvFormat::Yv12 => {
                let y_len = w * h;
                let cw = w.div_ceil(2);
                let ch = h.div_ceil(2);
                let c_len = cw * ch;
                // Luma: moving gradient plus per-pixel dither (decoded
                // video carries sensor/codec noise; without it the
                // frames would be unrealistically RLE-compressible).
                for y in 0..h {
                    for x in 0..w {
                        let base = ((x + y + phase) / 2) % 200 + 16;
                        let dither = ((x.wrapping_mul(2654435761)
                            ^ y.wrapping_mul(40503)
                            ^ phase.wrapping_mul(97))
                            >> 7)
                            & 0x7;
                        f.data[y * w + x] = (base + dither) as u8;
                    }
                }
                // Bouncing block.
                let period = 2 * (w - 40);
                let bx = {
                    let p = (phase * 4) % period;
                    if p < w - 40 {
                        p
                    } else {
                        period - p
                    }
                };
                let by = h / 3;
                for y in by..(by + 40).min(h) {
                    for x in bx..(bx + 40).min(w) {
                        f.data[y * w + x] = 235;
                    }
                }
                // Chroma: slow color cycle.
                for cy in 0..ch {
                    for cx in 0..cw {
                        f.data[y_len + cy * cw + cx] = ((cx + phase) % 160 + 48) as u8;
                        f.data[y_len + c_len + cy * cw + cx] = ((cy + phase) % 160 + 48) as u8;
                    }
                }
            }
            YuvFormat::Yuy2 => {
                let pairs = w.div_ceil(2);
                for y in 0..h {
                    for p in 0..pairs {
                        let off = (y * pairs + p) * 4;
                        f.data[off] = (((p * 2 + y + phase) / 2) % 220 + 16) as u8;
                        f.data[off + 1] = ((p + phase) % 160 + 48) as u8;
                        f.data[off + 2] = (((p * 2 + 1 + y + phase) / 2) % 220 + 16) as u8;
                        f.data[off + 3] = ((y + phase) % 160 + 48) as u8;
                    }
                }
            }
        }
        f
    }

    /// Raw-RGB bandwidth this clip would need without YUV (the §2
    /// motivating number: fullscreen raw RGB is ~0.5 Gbps).
    pub fn raw_rgb_bps_at(&self, screen_w: u32, screen_h: u32) -> u64 {
        screen_w as u64 * screen_h as u64 * 3 * 8 * self.fps as u64
    }
}

/// The clip's audio track: PCM samples.
#[derive(Debug, Clone, Copy)]
pub struct AudioTrack {
    /// Sample rate in Hz.
    pub sample_rate: u32,
    /// Channel count.
    pub channels: u32,
    /// Duration in milliseconds (matches the clip).
    pub duration_ms: u64,
}

impl AudioTrack {
    /// CD-quality stereo matching the benchmark clip.
    pub fn benchmark() -> Self {
        Self {
            sample_rate: 44_100,
            channels: 2,
            duration_ms: 34_750,
        }
    }

    /// Bytes per second of PCM data (16-bit samples).
    pub fn bytes_per_sec(&self) -> u64 {
        self.sample_rate as u64 * self.channels as u64 * 2
    }

    /// Total PCM bytes in the track.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_sec() * self.duration_ms / 1000
    }

    /// Generates `ms` milliseconds of deterministic PCM data starting
    /// at `offset_ms` (a simple stereo tone).
    pub fn pcm(&self, offset_ms: u64, ms: u64) -> Vec<u8> {
        let frames = self.sample_rate as u64 * ms / 1000;
        let start = self.sample_rate as u64 * offset_ms / 1000;
        let mut out = Vec::with_capacity((frames * self.channels as u64 * 2) as usize);
        for i in 0..frames {
            let t = (start + i) as f32 / self.sample_rate as f32;
            let s = ((t * 440.0 * std::f32::consts::TAU).sin() * 12_000.0) as i16;
            for _ in 0..self.channels {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_geometry() {
        let c = VideoClip::benchmark();
        assert_eq!((c.width, c.height), (352, 240));
        assert_eq!(c.frame_count(), 834); // 34.75 s * 24 fps.
        assert_eq!(c.frame_bytes(), 352 * 240 * 3 / 2);
    }

    #[test]
    fn pts_spacing() {
        let c = VideoClip::benchmark();
        assert_eq!(c.pts_us(0), 0);
        assert_eq!(c.pts_us(24), 1_000_000);
    }

    #[test]
    fn frames_are_deterministic_and_distinct() {
        let c = VideoClip::benchmark();
        assert_eq!(c.frame(10), c.frame(10));
        assert_ne!(c.frame(10).data, c.frame(11).data);
    }

    #[test]
    fn frame_size_matches_format() {
        let c = VideoClip::benchmark();
        assert_eq!(c.frame(0).data.len(), c.frame_bytes());
    }

    #[test]
    fn raw_rgb_motivating_number() {
        // §2: 30 fps fullscreen 1024x768 24-bit ~ 0.5 Gbps. At our
        // 24 fps it is ~0.45 Gbps; the order of magnitude matches.
        let c = VideoClip::benchmark();
        let bps = c.raw_rgb_bps_at(1024, 768);
        assert!(bps > 400_000_000, "{bps}");
    }

    #[test]
    fn yuv_halves_the_bandwidth_of_rgb() {
        let c = VideoClip::benchmark();
        let yuv_bps = c.frame_bytes() as u64 * 8 * c.fps as u64;
        let rgb_bps = c.width as u64 * c.height as u64 * 3 * 8 * c.fps as u64;
        assert_eq!(yuv_bps * 2, rgb_bps);
    }

    #[test]
    fn audio_track_sizes() {
        let a = AudioTrack::benchmark();
        assert_eq!(a.bytes_per_sec(), 176_400);
        let one_sec = a.pcm(0, 1000);
        assert_eq!(one_sec.len(), 176_400);
    }

    #[test]
    fn audio_deterministic_and_continuous() {
        let a = AudioTrack::benchmark();
        let x = a.pcm(0, 10);
        let y = a.pcm(0, 10);
        assert_eq!(x, y);
        // Contiguous windows produce contiguous samples.
        let first20 = a.pcm(0, 20);
        let second10 = a.pcm(10, 10);
        assert_eq!(&first20[first20.len() - second10.len()..], &second10[..]);
    }

    #[test]
    fn yuy2_variant_works() {
        let c = VideoClip {
            format: YuvFormat::Yuy2,
            ..VideoClip::benchmark()
        };
        assert_eq!(c.frame(5).data.len(), YuvFormat::Yuy2.frame_size(352, 240));
    }
}
