//! Property tests of the wire codec: arbitrary messages round-trip,
//! arbitrary byte garbage never panics the decoder, and the frame
//! reader reassembles arbitrary fragmentations.

use proptest::prelude::*;
use thinc_protocol::cache::{cache_key, CacheLru};
use thinc_protocol::commands::{DisplayCommand, RawEncoding, Tile};
use thinc_protocol::message::{Message, ProtocolInput};
use thinc_protocol::wire::{decode_message, encode_message, FrameEncoder, FrameReader};
use thinc_protocol::{fnv64, CACHE_MIN_PAYLOAD, DEFAULT_CACHE_BUDGET, WIRE_REV_CACHE, WIRE_REV_INTEGRITY};
use thinc_raster::{Color, Rect, YuvFormat};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (any::<i16>(), any::<i16>(), 0u32..2048, 0u32..2048)
        .prop_map(|(x, y, w, h)| Rect::new(x as i32, y as i32, w, h))
}

fn arb_color() -> impl Strategy<Value = Color> {
    any::<u32>().prop_map(Color::from_argb_u32)
}

fn arb_command() -> impl Strategy<Value = DisplayCommand> {
    prop_oneof![
        (arb_rect(), any::<bool>(), prop::collection::vec(any::<u8>(), 0..256)).prop_map(
            |(rect, png, data)| DisplayCommand::Raw {
                rect,
                encoding: if png { RawEncoding::PngLike } else { RawEncoding::None },
                data: data.into(),
            }
        ),
        (arb_rect(), any::<i16>(), any::<i16>()).prop_map(|(src_rect, x, y)| {
            DisplayCommand::Copy {
                src_rect,
                dst_x: x as i32,
                dst_y: y as i32,
            }
        }),
        (arb_rect(), arb_color()).prop_map(|(rect, color)| DisplayCommand::Sfill { rect, color }),
        (arb_rect(), 1u32..32, 1u32..32, prop::collection::vec(any::<u8>(), 0..128)).prop_map(
            |(rect, w, h, pixels)| DisplayCommand::Pfill {
                rect,
                tile: Tile {
                    width: w,
                    height: h,
                    pixels,
                },
            }
        ),
        (
            arb_rect(),
            prop::collection::vec(any::<u8>(), 0..128),
            arb_color(),
            prop::option::of(arb_color())
        )
            .prop_map(|(rect, bits, fg, bg)| DisplayCommand::Bitmap { rect, bits, fg, bg }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u16>(), any::<u32>(), any::<u32>(), any::<u8>()).prop_map(
            |(version, width, height, depth)| Message::ServerHello {
                version,
                width,
                height,
                depth,
            }
        ),
        arb_command().prop_map(Message::Display),
        (any::<u32>(), any::<bool>(), any::<u32>(), any::<u32>(), arb_rect()).prop_map(
            |(id, f, w, h, dst)| Message::VideoInit {
                id,
                format: if f { YuvFormat::Yv12 } else { YuvFormat::Yuy2 },
                src_width: w,
                src_height: h,
                dst,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(id, seq, timestamp_us, data)| Message::VideoData {
                id,
                seq,
                timestamp_us,
                data,
            }),
        (any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..256)).prop_map(
            |(seq, timestamp_us, data)| Message::Audio {
                seq,
                timestamp_us,
                data,
            }
        ),
        (any::<i16>(), any::<i16>(), any::<u8>()).prop_map(|(x, y, button)| Message::Input(
            ProtocolInput::ButtonPress {
                x: x as i32,
                y: y as i32,
                button,
            }
        )),
        (any::<u32>(), any::<u32>()).prop_map(|(w, h)| Message::Resize {
            viewport_width: w,
            viewport_height: h,
        }),
    ]
}

/// Messages that travel on a negotiated (revision-2) stream: the
/// handshake itself is excluded because it is always legacy-framed
/// and carries no sequence number.
fn arb_stream_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_command().prop_map(Message::Display),
        (any::<u32>(), any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(id, seq, timestamp_us, data)| Message::VideoData {
                id,
                seq,
                timestamp_us,
                data,
            }),
        (any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..256)).prop_map(
            |(seq, timestamp_us, data)| Message::Audio {
                seq,
                timestamp_us,
                data,
            }
        ),
        (any::<i16>(), any::<i16>(), any::<u8>()).prop_map(|(x, y, button)| Message::Input(
            ProtocolInput::ButtonPress {
                x: x as i32,
                y: y as i32,
                button,
            }
        )),
        (any::<u32>(), any::<u32>()).prop_map(|(w, h)| Message::Resize {
            viewport_width: w,
            viewport_height: h,
        }),
    ]
}

/// What the server cache engine does at flush time: a cacheable
/// payload the ledger already holds goes out as a 13-byte ref (and is
/// bumped to most-recently-used); anything else ships in full and, if
/// cacheable, enters the ledger.
fn server_emit(ledger: &mut CacheLru<Message>, msg: &Message) -> Message {
    match msg.cache_key() {
        Some(key) if ledger.contains(key) => {
            ledger.touch(key);
            Message::CacheRef { hash: key }
        }
        Some(key) => {
            ledger.insert(key, msg.wire_size(), msg.clone());
            msg.clone()
        }
        None => msg.clone(),
    }
}

/// What the client store does on receive: a ref resolves (and bumps)
/// locally or returns `None` (a miss); a full payload is applied and,
/// if cacheable, enters the store.
fn client_resolve(store: &mut CacheLru<Message>, msg: Message) -> Option<Message> {
    match msg {
        Message::CacheRef { hash } => store.get(hash).cloned(),
        other => {
            if let Some(key) = other.cache_key() {
                store.insert(key, other.wire_size(), other.clone());
            }
            Some(other)
        }
    }
}

proptest! {
    #[test]
    fn messages_round_trip(msg in arb_message()) {
        let enc = encode_message(&msg);
        let (dec, used) = decode_message(&enc).expect("round trip");
        prop_assert_eq!(dec, msg);
        prop_assert_eq!(used, enc.len());
    }

    #[test]
    fn decoder_never_panics_on_garbage(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_message(&garbage);
    }

    #[test]
    fn frame_reader_handles_any_fragmentation(
        msgs in prop::collection::vec(arb_message(), 1..8),
        cuts in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.iter().cycle();
        while pos < stream.len() {
            let take = (*cut_iter.next().unwrap()).min(stream.len() - pos);
            reader.feed(&stream[pos..pos + take]);
            pos += take;
            while let Some(m) = reader.next_message().expect("valid stream") {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn wire_size_always_matches_encoding(msg in arb_message()) {
        prop_assert_eq!(msg.wire_size(), encode_message(&msg).len() as u64);
    }

    /// Bit-flipped valid streams: the decoder returns typed errors,
    /// never panics, and the reader's resync loop always drains the
    /// damage with bounded buffering.
    #[test]
    fn bit_flipped_streams_never_panic_and_stay_bounded(
        msgs in prop::collection::vec(arb_message(), 1..8),
        flips in prop::collection::vec((any::<u32>(), 0u8..8), 1..32),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        for (pos, bit) in &flips {
            let idx = (*pos as usize) % stream.len();
            stream[idx] ^= 1 << bit;
        }
        let bound = stream.len();
        let mut reader = FrameReader::new();
        reader.feed(&stream);
        let mut decoded = 0usize;
        let mut progress_guard = 0usize;
        loop {
            match reader.next_message() {
                Ok(Some(_)) => decoded += 1,
                Ok(None) => break,
                Err(_) => {
                    prop_assert!(reader.resync() > 0, "resync must make progress");
                }
            }
            // The reader only ever holds what was fed.
            prop_assert!(reader.pending_bytes() <= bound);
            progress_guard += 1;
            prop_assert!(progress_guard <= bound + msgs.len() + 1, "no forward progress");
        }
        prop_assert!(decoded <= msgs.len());
    }

    /// Truncated valid streams: every prefix either decodes a prefix
    /// of the messages or waits for more bytes — never a panic.
    #[test]
    fn truncated_streams_never_panic(
        msgs in prop::collection::vec(arb_message(), 1..6),
        cut_seed in any::<u32>(),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let mut reader = FrameReader::new();
        reader.feed(&stream[..cut]);
        let mut got = Vec::new();
        loop {
            match reader.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(_) => { reader.resync(); }
            }
        }
        // Whole messages before the cut all survive.
        prop_assert!(got.len() <= msgs.len());
        for (g, m) in got.iter().zip(msgs.iter()) {
            prop_assert_eq!(g, m);
        }
    }

    /// Clean integrity streams are equivalent to legacy streams:
    /// arbitrary messages framed at revision 2 and fed through any
    /// fragmentation decode to exactly the same message sequence,
    /// with zero integrity counters raised.
    #[test]
    fn integrity_streams_round_trip_any_fragmentation(
        msgs in prop::collection::vec(arb_message(), 1..8),
        cuts in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(enc.encode(m));
        }
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.iter().cycle();
        while pos < stream.len() {
            let take = (*cut_iter.next().unwrap()).min(stream.len() - pos);
            reader.feed(&stream[pos..pos + take]);
            pos += take;
            while let Some(m) = reader.next_message().expect("clean integrity stream") {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        let c = reader.integrity();
        prop_assert_eq!(c.crc_fail, 0);
        prop_assert_eq!(c.seq_gap, 0);
        prop_assert_eq!(c.seq_dup, 0);
        prop_assert!(!reader.take_seq_break());
    }

    /// Bit-flipped integrity streams: damage surfaces as typed
    /// errors that resync drains — and every message that *is*
    /// delivered on a checksummed frame is byte-identical to one the
    /// encoder actually sent. A flip can forge a legacy-framed
    /// handshake (those carry no CRC by design), but it can never
    /// forge a pixel command.
    #[test]
    fn integrity_bit_flips_never_forge_a_command(
        msgs in prop::collection::vec(arb_stream_message(), 1..8),
        flips in prop::collection::vec((any::<u32>(), 0u8..8), 1..32),
    ) {
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(enc.encode(m));
        }
        let clean = stream.clone();
        for (pos, bit) in &flips {
            let idx = (*pos as usize) % stream.len();
            stream[idx] ^= 1 << bit;
        }
        let bound = stream.len();
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&stream);
        let mut got = Vec::new();
        let mut progress_guard = 0usize;
        loop {
            match reader.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(_) => {
                    prop_assert!(reader.resync() > 0, "resync must make progress");
                }
            }
            prop_assert!(reader.pending_bytes() <= bound);
            progress_guard += 1;
            prop_assert!(progress_guard <= bound + msgs.len() + 1, "no forward progress");
        }
        for m in &got {
            if matches!(m, Message::ServerHello { .. } | Message::ClientHello { .. }) {
                continue; // legacy-framed: a flip may forge one, it carries no CRC
            }
            prop_assert!(
                msgs.contains(m),
                "a checksummed frame delivered a message the encoder never sent"
            );
        }
        // If no frame actually changed, the stream must decode clean.
        if stream == clean {
            prop_assert_eq!(got, msgs);
            prop_assert_eq!(reader.integrity().crc_fail, 0);
        }
    }

    /// Whole-frame reordering and duplication: the reader's sequence
    /// accounting is exactly the documented model — in-order frames
    /// deliver, forward jumps deliver and count a gap, rollbacks drop
    /// and count a duplicate — and never emits a message that was not
    /// encoded.
    #[test]
    fn integrity_reorder_duplication_matches_sequence_model(
        msgs in prop::collection::vec(arb_stream_message(), 2..8),
        picks in prop::collection::vec(any::<u16>(), 1..16),
    ) {
        // Frame each message individually so frames can be shuffled.
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let frames: Vec<Vec<u8>> = msgs.iter().map(|m| enc.encode(m)).collect();
        // Deliver frames in an arbitrary with-replacement order: some
        // frames repeat (duplicates), some never arrive (gaps).
        let order: Vec<usize> = picks.iter().map(|&p| p as usize % frames.len()).collect();

        // The documented sequence model, run on the same order.
        let mut last: Option<u32> = None;
        let mut expect = Vec::new();
        let (mut exp_gap, mut exp_dup) = (0u64, 0u64);
        for &i in &order {
            let seq = i as u32;
            match last {
                None => {
                    expect.push(msgs[i].clone());
                    last = Some(seq);
                }
                Some(l) => {
                    let delta = seq.wrapping_sub(l.wrapping_add(1));
                    if delta == 0 || delta < u32::MAX / 2 {
                        if delta != 0 {
                            exp_gap += 1;
                        }
                        expect.push(msgs[i].clone());
                        last = Some(seq);
                    } else {
                        exp_dup += 1;
                    }
                }
            }
        }

        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        for &i in &order {
            reader.feed(&frames[i]);
        }
        let mut got = Vec::new();
        while let Some(m) = reader.next_message().expect("undamaged frames") {
            got.push(m);
        }
        prop_assert_eq!(got, expect);
        let c = reader.integrity();
        prop_assert_eq!(c.crc_fail, 0, "undamaged frames never fail CRC");
        prop_assert_eq!(c.seq_gap, exp_gap);
        prop_assert_eq!(c.seq_dup, exp_dup);
        prop_assert_eq!(reader.take_seq_break(), exp_gap > 0);
    }

    /// Revision-3 content cache, modeled exactly as the server engine
    /// and client store behave: repeated payloads travel as refs, and
    /// the resolved stream is byte-identical to the uncached stream
    /// under any fragmentation. A second connection over the *same*
    /// retained ledger/store (reconnect with a persisted cache) must
    /// resolve every ref without a single miss.
    #[test]
    fn cache_ref_streams_decode_byte_exact_any_fragmentation(
        pool in prop::collection::vec(arb_command().prop_map(Message::Display), 1..6),
        picks in prop::collection::vec(any::<u8>(), 1..24),
        cuts in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut ledger: CacheLru<Message> = CacheLru::new(DEFAULT_CACHE_BUDGET);
        let mut store: CacheLru<Message> = CacheLru::new(DEFAULT_CACHE_BUDGET);

        for connection in 0..2 {
            let mut enc = FrameEncoder::with_revision(WIRE_REV_CACHE);
            let mut stream = Vec::new();
            let mut sent = Vec::new();
            let mut refs = 0usize;
            for &p in &picks {
                let msg = pool[p as usize % pool.len()].clone();
                let wire = server_emit(&mut ledger, &msg);
                if matches!(wire, Message::CacheRef { .. }) {
                    refs += 1;
                }
                stream.extend(enc.encode(&wire));
                sent.push(msg);
            }
            if connection == 1 {
                // Every cacheable payload is already in the retained
                // ledger, so the second pass is all refs.
                let cacheable = sent.iter().filter(|m| m.cache_key().is_some()).count();
                prop_assert_eq!(refs, cacheable, "warm ledger emits only refs");
            }

            let mut reader = FrameReader::with_revision(WIRE_REV_CACHE);
            let mut got = Vec::new();
            let mut pos = 0;
            let mut cut_iter = cuts.iter().cycle();
            while pos < stream.len() {
                let take = (*cut_iter.next().unwrap()).min(stream.len() - pos);
                reader.feed(&stream[pos..pos + take]);
                pos += take;
                while let Some(m) = reader.next_message().expect("clean rev-3 stream") {
                    let resolved = client_resolve(&mut store, m);
                    prop_assert!(resolved.is_some(), "a ref must point at held content");
                    got.push(resolved.unwrap());
                }
            }
            prop_assert_eq!(got.len(), sent.len());
            for (g, s) in got.iter().zip(sent.iter()) {
                prop_assert_eq!(encode_message(g), encode_message(s), "byte-exact");
            }
        }
    }

    /// Under a tiny budget that forces constant eviction, the
    /// server-side ledger and client-side store evict in lockstep:
    /// the server only emits a ref for a key it holds, so the client
    /// must hold it too — eviction never leaves a dangling ref.
    #[test]
    fn lockstep_eviction_never_dangles_a_ref(
        pool in prop::collection::vec(arb_command().prop_map(Message::Display), 2..8),
        picks in prop::collection::vec(any::<u8>(), 1..64),
        budget in 256u64..4096,
    ) {
        let mut ledger: CacheLru<Message> = CacheLru::new(budget);
        let mut store: CacheLru<Message> = CacheLru::new(budget);
        for &p in &picks {
            let msg = pool[p as usize % pool.len()].clone();
            let wire = server_emit(&mut ledger, &msg);
            let resolved = client_resolve(&mut store, wire);
            prop_assert!(resolved.is_some(), "mirrored LRUs never dangle");
            prop_assert_eq!(
                encode_message(&resolved.unwrap()),
                encode_message(&msg)
            );
            prop_assert_eq!(ledger.used_bytes(), store.used_bytes());
            prop_assert_eq!(ledger.evictions(), store.evictions());
            prop_assert_eq!(ledger.len(), store.len());
        }
    }

    /// Forced misses (a client that lost its store) always converge:
    /// the ledger answers every miss with the byte-exact original via
    /// a peek, the fallback re-seeds the store, and the applied stream
    /// is identical to the uncached stream.
    #[test]
    fn forced_miss_and_fallback_converge_byte_exact(
        pool in prop::collection::vec(arb_command().prop_map(Message::Display), 1..6),
        picks in prop::collection::vec(any::<u8>(), 1..32),
        drops in prop::collection::vec(any::<bool>(), 1..32),
    ) {
        let mut ledger: CacheLru<Message> = CacheLru::new(DEFAULT_CACHE_BUDGET);
        let mut store: CacheLru<Message> = CacheLru::new(DEFAULT_CACHE_BUDGET);
        let mut drop_iter = drops.iter().cycle();
        for &p in &picks {
            let msg = pool[p as usize % pool.len()].clone();
            let wire = server_emit(&mut ledger, &msg);
            let delivered = match wire {
                Message::CacheRef { hash } => {
                    let lost = *drop_iter.next().unwrap();
                    let held = if lost { None } else { store.get(hash).cloned() };
                    match held {
                        Some(v) => v,
                        None => {
                            // MSG_CACHE_MISS → the server peeks its
                            // ledger (no LRU touch until the fallback
                            // actually ships) and resends the full
                            // payload, which re-seeds the store.
                            let fb = ledger.peek(hash)
                                .expect("ledger holds every ref it emitted")
                                .clone();
                            ledger.insert(hash, fb.wire_size(), fb.clone());
                            client_resolve(&mut store, fb).expect("full payload")
                        }
                    }
                }
                full => client_resolve(&mut store, full).expect("full payload"),
            };
            prop_assert_eq!(encode_message(&delivered), encode_message(&msg));
        }
    }

    /// The cacheability gate is exactly: pixel-bearing display command
    /// (RAW / PFILL / BITMAP) whose final encoding meets the size
    /// floor — and the key is the FNV-1a of those final bytes.
    #[test]
    fn cache_key_gates_on_kind_and_floor(msg in arb_message()) {
        let enc = encode_message(&msg);
        let candidate = matches!(
            &msg,
            Message::Display(
                DisplayCommand::Raw { .. }
                    | DisplayCommand::Pfill { .. }
                    | DisplayCommand::Bitmap { .. }
            )
        );
        let key = cache_key(&msg, &enc);
        if candidate && enc.len() >= CACHE_MIN_PAYLOAD {
            prop_assert_eq!(key, Some(fnv64(&enc)));
        } else {
            prop_assert_eq!(key, None);
        }
        prop_assert_eq!(msg.cache_key(), key, "convenience form agrees");
    }

    /// Pure random bytes through the full feed/decode/resync loop:
    /// no panics, memory bounded by the input.
    #[test]
    fn random_bytes_drain_without_panic(
        garbage in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let bound = garbage.len();
        let mut reader = FrameReader::new();
        reader.feed(&garbage);
        let mut progress_guard = 0usize;
        loop {
            match reader.next_message() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    prop_assert!(reader.resync() > 0);
                }
            }
            prop_assert!(reader.pending_bytes() <= bound);
            progress_guard += 1;
            prop_assert!(progress_guard <= bound + 1, "no forward progress");
        }
    }
}
