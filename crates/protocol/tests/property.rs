//! Property tests of the wire codec: arbitrary messages round-trip,
//! arbitrary byte garbage never panics the decoder, and the frame
//! reader reassembles arbitrary fragmentations.

use proptest::prelude::*;
use thinc_protocol::commands::{DisplayCommand, RawEncoding, Tile};
use thinc_protocol::message::{Message, ProtocolInput};
use thinc_protocol::wire::{decode_message, encode_message, FrameEncoder, FrameReader};
use thinc_protocol::WIRE_REV_INTEGRITY;
use thinc_raster::{Color, Rect, YuvFormat};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (any::<i16>(), any::<i16>(), 0u32..2048, 0u32..2048)
        .prop_map(|(x, y, w, h)| Rect::new(x as i32, y as i32, w, h))
}

fn arb_color() -> impl Strategy<Value = Color> {
    any::<u32>().prop_map(Color::from_argb_u32)
}

fn arb_command() -> impl Strategy<Value = DisplayCommand> {
    prop_oneof![
        (arb_rect(), any::<bool>(), prop::collection::vec(any::<u8>(), 0..256)).prop_map(
            |(rect, png, data)| DisplayCommand::Raw {
                rect,
                encoding: if png { RawEncoding::PngLike } else { RawEncoding::None },
                data,
            }
        ),
        (arb_rect(), any::<i16>(), any::<i16>()).prop_map(|(src_rect, x, y)| {
            DisplayCommand::Copy {
                src_rect,
                dst_x: x as i32,
                dst_y: y as i32,
            }
        }),
        (arb_rect(), arb_color()).prop_map(|(rect, color)| DisplayCommand::Sfill { rect, color }),
        (arb_rect(), 1u32..32, 1u32..32, prop::collection::vec(any::<u8>(), 0..128)).prop_map(
            |(rect, w, h, pixels)| DisplayCommand::Pfill {
                rect,
                tile: Tile {
                    width: w,
                    height: h,
                    pixels,
                },
            }
        ),
        (
            arb_rect(),
            prop::collection::vec(any::<u8>(), 0..128),
            arb_color(),
            prop::option::of(arb_color())
        )
            .prop_map(|(rect, bits, fg, bg)| DisplayCommand::Bitmap { rect, bits, fg, bg }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u16>(), any::<u32>(), any::<u32>(), any::<u8>()).prop_map(
            |(version, width, height, depth)| Message::ServerHello {
                version,
                width,
                height,
                depth,
            }
        ),
        arb_command().prop_map(Message::Display),
        (any::<u32>(), any::<bool>(), any::<u32>(), any::<u32>(), arb_rect()).prop_map(
            |(id, f, w, h, dst)| Message::VideoInit {
                id,
                format: if f { YuvFormat::Yv12 } else { YuvFormat::Yuy2 },
                src_width: w,
                src_height: h,
                dst,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(id, seq, timestamp_us, data)| Message::VideoData {
                id,
                seq,
                timestamp_us,
                data,
            }),
        (any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..256)).prop_map(
            |(seq, timestamp_us, data)| Message::Audio {
                seq,
                timestamp_us,
                data,
            }
        ),
        (any::<i16>(), any::<i16>(), any::<u8>()).prop_map(|(x, y, button)| Message::Input(
            ProtocolInput::ButtonPress {
                x: x as i32,
                y: y as i32,
                button,
            }
        )),
        (any::<u32>(), any::<u32>()).prop_map(|(w, h)| Message::Resize {
            viewport_width: w,
            viewport_height: h,
        }),
    ]
}

/// Messages that travel on a negotiated (revision-2) stream: the
/// handshake itself is excluded because it is always legacy-framed
/// and carries no sequence number.
fn arb_stream_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_command().prop_map(Message::Display),
        (any::<u32>(), any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(id, seq, timestamp_us, data)| Message::VideoData {
                id,
                seq,
                timestamp_us,
                data,
            }),
        (any::<u32>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..256)).prop_map(
            |(seq, timestamp_us, data)| Message::Audio {
                seq,
                timestamp_us,
                data,
            }
        ),
        (any::<i16>(), any::<i16>(), any::<u8>()).prop_map(|(x, y, button)| Message::Input(
            ProtocolInput::ButtonPress {
                x: x as i32,
                y: y as i32,
                button,
            }
        )),
        (any::<u32>(), any::<u32>()).prop_map(|(w, h)| Message::Resize {
            viewport_width: w,
            viewport_height: h,
        }),
    ]
}

proptest! {
    #[test]
    fn messages_round_trip(msg in arb_message()) {
        let enc = encode_message(&msg);
        let (dec, used) = decode_message(&enc).expect("round trip");
        prop_assert_eq!(dec, msg);
        prop_assert_eq!(used, enc.len());
    }

    #[test]
    fn decoder_never_panics_on_garbage(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_message(&garbage);
    }

    #[test]
    fn frame_reader_handles_any_fragmentation(
        msgs in prop::collection::vec(arb_message(), 1..8),
        cuts in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.iter().cycle();
        while pos < stream.len() {
            let take = (*cut_iter.next().unwrap()).min(stream.len() - pos);
            reader.feed(&stream[pos..pos + take]);
            pos += take;
            while let Some(m) = reader.next_message().expect("valid stream") {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn wire_size_always_matches_encoding(msg in arb_message()) {
        prop_assert_eq!(msg.wire_size(), encode_message(&msg).len() as u64);
    }

    /// Bit-flipped valid streams: the decoder returns typed errors,
    /// never panics, and the reader's resync loop always drains the
    /// damage with bounded buffering.
    #[test]
    fn bit_flipped_streams_never_panic_and_stay_bounded(
        msgs in prop::collection::vec(arb_message(), 1..8),
        flips in prop::collection::vec((any::<u32>(), 0u8..8), 1..32),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        for (pos, bit) in &flips {
            let idx = (*pos as usize) % stream.len();
            stream[idx] ^= 1 << bit;
        }
        let bound = stream.len();
        let mut reader = FrameReader::new();
        reader.feed(&stream);
        let mut decoded = 0usize;
        let mut progress_guard = 0usize;
        loop {
            match reader.next_message() {
                Ok(Some(_)) => decoded += 1,
                Ok(None) => break,
                Err(_) => {
                    prop_assert!(reader.resync() > 0, "resync must make progress");
                }
            }
            // The reader only ever holds what was fed.
            prop_assert!(reader.pending_bytes() <= bound);
            progress_guard += 1;
            prop_assert!(progress_guard <= bound + msgs.len() + 1, "no forward progress");
        }
        prop_assert!(decoded <= msgs.len());
    }

    /// Truncated valid streams: every prefix either decodes a prefix
    /// of the messages or waits for more bytes — never a panic.
    #[test]
    fn truncated_streams_never_panic(
        msgs in prop::collection::vec(arb_message(), 1..6),
        cut_seed in any::<u32>(),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let mut reader = FrameReader::new();
        reader.feed(&stream[..cut]);
        let mut got = Vec::new();
        loop {
            match reader.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(_) => { reader.resync(); }
            }
        }
        // Whole messages before the cut all survive.
        prop_assert!(got.len() <= msgs.len());
        for (g, m) in got.iter().zip(msgs.iter()) {
            prop_assert_eq!(g, m);
        }
    }

    /// Clean integrity streams are equivalent to legacy streams:
    /// arbitrary messages framed at revision 2 and fed through any
    /// fragmentation decode to exactly the same message sequence,
    /// with zero integrity counters raised.
    #[test]
    fn integrity_streams_round_trip_any_fragmentation(
        msgs in prop::collection::vec(arb_message(), 1..8),
        cuts in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(enc.encode(m));
        }
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.iter().cycle();
        while pos < stream.len() {
            let take = (*cut_iter.next().unwrap()).min(stream.len() - pos);
            reader.feed(&stream[pos..pos + take]);
            pos += take;
            while let Some(m) = reader.next_message().expect("clean integrity stream") {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        let c = reader.integrity();
        prop_assert_eq!(c.crc_fail, 0);
        prop_assert_eq!(c.seq_gap, 0);
        prop_assert_eq!(c.seq_dup, 0);
        prop_assert!(!reader.take_seq_break());
    }

    /// Bit-flipped integrity streams: damage surfaces as typed
    /// errors that resync drains — and every message that *is*
    /// delivered on a checksummed frame is byte-identical to one the
    /// encoder actually sent. A flip can forge a legacy-framed
    /// handshake (those carry no CRC by design), but it can never
    /// forge a pixel command.
    #[test]
    fn integrity_bit_flips_never_forge_a_command(
        msgs in prop::collection::vec(arb_stream_message(), 1..8),
        flips in prop::collection::vec((any::<u32>(), 0u8..8), 1..32),
    ) {
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(enc.encode(m));
        }
        let clean = stream.clone();
        for (pos, bit) in &flips {
            let idx = (*pos as usize) % stream.len();
            stream[idx] ^= 1 << bit;
        }
        let bound = stream.len();
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&stream);
        let mut got = Vec::new();
        let mut progress_guard = 0usize;
        loop {
            match reader.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(_) => {
                    prop_assert!(reader.resync() > 0, "resync must make progress");
                }
            }
            prop_assert!(reader.pending_bytes() <= bound);
            progress_guard += 1;
            prop_assert!(progress_guard <= bound + msgs.len() + 1, "no forward progress");
        }
        for m in &got {
            if matches!(m, Message::ServerHello { .. } | Message::ClientHello { .. }) {
                continue; // legacy-framed: a flip may forge one, it carries no CRC
            }
            prop_assert!(
                msgs.contains(m),
                "a checksummed frame delivered a message the encoder never sent"
            );
        }
        // If no frame actually changed, the stream must decode clean.
        if stream == clean {
            prop_assert_eq!(got, msgs);
            prop_assert_eq!(reader.integrity().crc_fail, 0);
        }
    }

    /// Whole-frame reordering and duplication: the reader's sequence
    /// accounting is exactly the documented model — in-order frames
    /// deliver, forward jumps deliver and count a gap, rollbacks drop
    /// and count a duplicate — and never emits a message that was not
    /// encoded.
    #[test]
    fn integrity_reorder_duplication_matches_sequence_model(
        msgs in prop::collection::vec(arb_stream_message(), 2..8),
        picks in prop::collection::vec(any::<u16>(), 1..16),
    ) {
        // Frame each message individually so frames can be shuffled.
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let frames: Vec<Vec<u8>> = msgs.iter().map(|m| enc.encode(m)).collect();
        // Deliver frames in an arbitrary with-replacement order: some
        // frames repeat (duplicates), some never arrive (gaps).
        let order: Vec<usize> = picks.iter().map(|&p| p as usize % frames.len()).collect();

        // The documented sequence model, run on the same order.
        let mut last: Option<u32> = None;
        let mut expect = Vec::new();
        let (mut exp_gap, mut exp_dup) = (0u64, 0u64);
        for &i in &order {
            let seq = i as u32;
            match last {
                None => {
                    expect.push(msgs[i].clone());
                    last = Some(seq);
                }
                Some(l) => {
                    let delta = seq.wrapping_sub(l.wrapping_add(1));
                    if delta == 0 || delta < u32::MAX / 2 {
                        if delta != 0 {
                            exp_gap += 1;
                        }
                        expect.push(msgs[i].clone());
                        last = Some(seq);
                    } else {
                        exp_dup += 1;
                    }
                }
            }
        }

        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        for &i in &order {
            reader.feed(&frames[i]);
        }
        let mut got = Vec::new();
        while let Some(m) = reader.next_message().expect("undamaged frames") {
            got.push(m);
        }
        prop_assert_eq!(got, expect);
        let c = reader.integrity();
        prop_assert_eq!(c.crc_fail, 0, "undamaged frames never fail CRC");
        prop_assert_eq!(c.seq_gap, exp_gap);
        prop_assert_eq!(c.seq_dup, exp_dup);
        prop_assert_eq!(reader.take_seq_break(), exp_gap > 0);
    }

    /// Pure random bytes through the full feed/decode/resync loop:
    /// no panics, memory bounded by the input.
    #[test]
    fn random_bytes_drain_without_panic(
        garbage in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let bound = garbage.len();
        let mut reader = FrameReader::new();
        reader.feed(&garbage);
        let mut progress_guard = 0usize;
        loop {
            match reader.next_message() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    prop_assert!(reader.resync() > 0);
                }
            }
            prop_assert!(reader.pending_bytes() <= bound);
            progress_guard += 1;
            prop_assert!(progress_guard <= bound + 1, "no forward progress");
        }
    }
}
