//! Shared, immutable payload bytes.
//!
//! [`Bytes`] is the zero-copy payload container behind the encode-once
//! broadcast plane: a display command's pixel payload is produced once
//! and then shared by reference across every client session that views
//! the same screen region at the same scale. Cloning is an `Arc`
//! reference-count bump, never a byte copy, so fanning a command out
//! to a thousand clients costs the same as fanning it to one.
//!
//! The container is deliberately minimal — an immutable `Arc<Vec<u8>>`
//! with slice semantics. Equality compares *contents* (so protocol
//! round-trip tests keep working after decode produces a fresh
//! allocation), with a pointer-identity fast path. [`Bytes::ptr_id`]
//! exposes the allocation identity itself; the payload plane uses it
//! as an O(1) equivalence-class key: two commands whose payloads share
//! one allocation are, by construction, the same content.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer (`Arc`-shared).
#[derive(Clone, Default)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Wraps a byte vector without copying it.
    pub fn new(data: Vec<u8>) -> Self {
        Bytes(Arc::new(data))
    }

    /// The payload as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Stable identity of the underlying allocation.
    ///
    /// Two `Bytes` with the same `ptr_id` are clones of one buffer and
    /// therefore bitwise-identical; the converse does not hold. Valid
    /// only while at least one clone is alive (a freed allocation's
    /// address may be reused), which is why the payload plane scopes
    /// its identity-keyed maps to a single flush round.
    pub fn ptr_id(&self) -> usize {
        Arc::as_ptr(&self.0) as *const u8 as usize
    }

    /// Extracts the bytes, copying only when other clones exist.
    pub fn into_vec(self) -> Vec<u8> {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::new(data)
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::new(data.to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::new(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} B", self.0.len())?;
        if !self.0.is_empty() {
            let head = &self.0[..self.0.len().min(8)];
            write!(f, ", {head:02x?}")?;
            if self.0.len() > 8 {
                write!(f, "…")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.ptr_id(), b.ptr_id());
        assert_eq!(a, b);
    }

    #[test]
    fn equality_is_by_content_across_allocations() {
        let a = Bytes::from(vec![9u8; 64]);
        let b = Bytes::from(vec![9u8; 64]);
        assert_ne!(a.ptr_id(), b.ptr_id());
        assert_eq!(a, b);
        assert_ne!(a, Bytes::from(vec![8u8; 64]));
    }

    #[test]
    fn slice_semantics() {
        let a = Bytes::from(vec![5u8, 6, 7]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(&a[1..], &[6, 7]);
        assert_eq!(a.as_slice(), &[5, 6, 7]);
        assert!(Bytes::default().is_empty());
    }

    #[test]
    fn into_vec_avoids_copy_when_unique() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let before = a.ptr_id();
        let v = a.into_vec();
        assert_eq!(v, vec![1, 2, 3]);
        // A clone forces a copy instead of a move.
        let b = Bytes::from(v);
        let _keep = b.clone();
        let copied = b.into_vec();
        assert_eq!(copied, vec![1, 2, 3]);
        let _ = before;
    }

    #[test]
    fn debug_is_compact() {
        let s = format!("{:?}", Bytes::from(vec![0xABu8; 20]));
        assert!(s.contains("20 B"));
        assert!(s.contains('…'));
    }
}
