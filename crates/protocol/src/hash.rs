//! Content hashing for the tile cache (protocol revision 3).
//!
//! The cache layer identifies an encoded display payload by a stable
//! 64-bit content hash. Like the CRC32 table in [`crate::wire`], the
//! function is hand-rolled so the protocol crate stays dependency-free
//! and the hash is bit-identical on every platform: FNV-1a with the
//! standard 64-bit offset basis and prime.
//!
//! FNV-1a was chosen over a CRC for its 64-bit width (collision
//! probability ~2⁻⁶⁴ per pair, negligible at cache-store scale) and
//! over cryptographic hashes because the threat model is accidental
//! collision, not adversarial content: both ends of the connection are
//! the same trusted session, and a corrupted payload is caught by the
//! revision-2 frame CRC before it ever reaches the cache. See
//! `docs/CACHE.md` for the full collision stance.

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `data` in one shot.
///
/// ```
/// use thinc_protocol::hash::fnv64;
///
/// // Standard FNV-1a test vectors.
/// assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
/// ```
pub fn fnv64(data: &[u8]) -> u64 {
    fnv64_update(FNV64_OFFSET, data)
}

/// Streaming FNV-1a state update over `data` (seed with
/// [`FNV64_OFFSET`]; the state *is* the hash, no finalization step).
pub fn fnv64_update(mut state: u64, data: &[u8]) -> u64 {
    for &b in data {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV64_PRIME);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors (Noll's reference list).
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let state = fnv64_update(FNV64_OFFSET, &data[..split]);
            assert_eq!(fnv64_update(state, &data[split..]), fnv64(data));
        }
    }

    #[test]
    fn distinct_payloads_distinct_hashes() {
        // Not a collision proof, just a sanity check that nearby
        // payloads (the common cache-store neighborhood) differ.
        let a: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let mut b = a.clone();
        b[512] ^= 0x01;
        assert_ne!(fnv64(&a), fnv64(&b));
    }
}
