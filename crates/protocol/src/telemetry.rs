//! Classification of protocol messages for telemetry.
//!
//! Maps every [`Message`] onto the [`CommandKind`] taxonomy of
//! `thinc-telemetry`, and provides the one-call helper instrumented
//! senders use to account a message into a
//! [`ProtocolMetrics`](thinc_telemetry::ProtocolMetrics) as it is
//! committed to the wire.

use thinc_telemetry::{CommandKind, ProtocolMetrics};

use crate::commands::DisplayCommand;
use crate::message::Message;

/// The telemetry class of a message.
///
/// ```
/// use thinc_protocol::telemetry::command_kind;
/// use thinc_protocol::{DisplayCommand, Message};
/// use thinc_raster::{Color, Rect};
/// use thinc_telemetry::CommandKind;
///
/// let msg = Message::Display(DisplayCommand::Sfill {
///     rect: Rect::new(0, 0, 8, 8),
///     color: Color::WHITE,
/// });
/// assert_eq!(command_kind(&msg), CommandKind::Sfill);
/// assert_eq!(command_kind(&Message::VideoEnd { id: 1 }), CommandKind::Video);
/// ```
pub fn command_kind(msg: &Message) -> CommandKind {
    match msg {
        Message::Display(cmd) => match cmd {
            DisplayCommand::Raw { .. } => CommandKind::Raw,
            DisplayCommand::Copy { .. } => CommandKind::Copy,
            DisplayCommand::Sfill { .. } => CommandKind::Sfill,
            DisplayCommand::Pfill { .. } => CommandKind::Pfill,
            DisplayCommand::Bitmap { .. } => CommandKind::Bitmap,
        },
        Message::VideoInit { .. }
        | Message::VideoData { .. }
        | Message::VideoMove { .. }
        | Message::VideoEnd { .. } => CommandKind::Video,
        Message::Audio { .. } => CommandKind::Audio,
        Message::CursorShape { .. } | Message::CursorMove { .. } => CommandKind::Cursor,
        Message::ServerHello { .. }
        | Message::ClientHello { .. }
        | Message::Input(_)
        | Message::Resize { .. }
        | Message::SetView { .. }
        | Message::Ping { .. }
        | Message::Pong { .. }
        | Message::RefreshRequest { .. }
        | Message::CacheRef { .. }
        | Message::CacheMiss { .. }
        | Message::SessionResume { .. } => CommandKind::Control,
    }
}

/// Accounts one outgoing message (count + encoded wire bytes) into
/// `metrics`.
///
/// ```
/// use thinc_protocol::telemetry::record_message;
/// use thinc_protocol::Message;
/// use thinc_telemetry::{CommandKind, ProtocolMetrics};
///
/// let mut metrics = ProtocolMetrics::new();
/// let msg = Message::CursorMove { x: 10, y: 20 };
/// record_message(&mut metrics, &msg);
/// assert_eq!(metrics.count(CommandKind::Cursor), 1);
/// assert_eq!(metrics.bytes(CommandKind::Cursor), msg.wire_size());
/// ```
pub fn record_message(metrics: &mut ProtocolMetrics, msg: &Message) {
    metrics.record(command_kind(msg), msg.wire_size());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ProtocolInput;
    use thinc_raster::Rect;

    #[test]
    fn every_display_command_maps_to_its_kind() {
        use thinc_raster::Color;
        let cases: Vec<(DisplayCommand, CommandKind)> = vec![
            (
                DisplayCommand::Raw {
                    rect: Rect::new(0, 0, 2, 2),
                    encoding: crate::commands::RawEncoding::None,
                    data: vec![0; 16].into(),
                },
                CommandKind::Raw,
            ),
            (
                DisplayCommand::Copy {
                    src_rect: Rect::new(0, 0, 2, 2),
                    dst_x: 4,
                    dst_y: 4,
                },
                CommandKind::Copy,
            ),
            (
                DisplayCommand::Sfill {
                    rect: Rect::new(0, 0, 2, 2),
                    color: Color::WHITE,
                },
                CommandKind::Sfill,
            ),
            (
                DisplayCommand::Pfill {
                    rect: Rect::new(0, 0, 8, 8),
                    tile: crate::commands::Tile {
                        width: 2,
                        height: 2,
                        pixels: vec![0; 16],
                    },
                },
                CommandKind::Pfill,
            ),
            (
                DisplayCommand::Bitmap {
                    rect: Rect::new(0, 0, 8, 8),
                    bits: vec![0; 8],
                    fg: Color::BLACK,
                    bg: None,
                },
                CommandKind::Bitmap,
            ),
        ];
        for (cmd, kind) in cases {
            assert_eq!(command_kind(&Message::Display(cmd)), kind);
        }
    }

    #[test]
    fn control_and_stream_messages_classified() {
        assert_eq!(
            command_kind(&Message::Input(ProtocolInput::KeyPress { key: 13 })),
            CommandKind::Control
        );
        assert_eq!(
            command_kind(&Message::SetView {
                view: Rect::new(0, 0, 4, 4)
            }),
            CommandKind::Control
        );
        assert_eq!(
            command_kind(&Message::Audio {
                seq: 0,
                timestamp_us: 0,
                data: vec![1, 2]
            }),
            CommandKind::Audio
        );
        assert_eq!(
            command_kind(&Message::CursorMove { x: 0, y: 0 }),
            CommandKind::Cursor
        );
    }

    #[test]
    fn recorded_bytes_match_wire_encoding() {
        let mut m = ProtocolMetrics::new();
        let msg = Message::Display(DisplayCommand::Copy {
            src_rect: Rect::new(0, 0, 16, 16),
            dst_x: 32,
            dst_y: 32,
        });
        record_message(&mut m, &msg);
        record_message(&mut m, &msg);
        assert_eq!(m.count(CommandKind::Copy), 2);
        assert_eq!(
            m.bytes(CommandKind::Copy),
            2 * crate::wire::encode_message(&msg).len() as u64
        );
    }
}
