//! The full THINC protocol message set.
//!
//! Beyond the five display commands, the protocol carries video
//! stream control and data ("additional protocol messages are used to
//! manipulate video streams … initialization and tearing down of a
//! video stream, and manipulation of the stream's position and size",
//! §4.2), timestamped audio (§4.2), client input, and session control
//! including the client-reported screen size that drives server-side
//! scaling (§6).

use thinc_raster::{Rect, YuvFormat};

use crate::commands::DisplayCommand;

/// Client input forwarded to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolInput {
    /// Pointer moved.
    PointerMove {
        /// X in session coordinates.
        x: i32,
        /// Y in session coordinates.
        y: i32,
    },
    /// Button pressed.
    ButtonPress {
        /// X in session coordinates.
        x: i32,
        /// Y in session coordinates.
        y: i32,
        /// Button number.
        button: u8,
    },
    /// Button released.
    ButtonRelease {
        /// X in session coordinates.
        x: i32,
        /// Y in session coordinates.
        y: i32,
        /// Button number.
        button: u8,
    },
    /// Key pressed.
    KeyPress {
        /// Key symbol.
        key: u32,
    },
    /// Key released.
    KeyRelease {
        /// Key symbol.
        key: u32,
    },
}

/// A protocol message (either direction).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server greeting: session geometry and format depth.
    ServerHello {
        /// Protocol version.
        version: u16,
        /// Session framebuffer width.
        width: u32,
        /// Session framebuffer height.
        height: u32,
        /// Bits per pixel of the session format.
        depth: u8,
    },
    /// Client greeting: the client's viewport size. When smaller than
    /// the session, the server resizes updates to fit (§6).
    ClientHello {
        /// Protocol version.
        version: u16,
        /// Client viewport width.
        viewport_width: u32,
        /// Client viewport height.
        viewport_height: u32,
    },
    /// A display update command.
    Display(DisplayCommand),
    /// Open a video stream.
    VideoInit {
        /// Stream id.
        id: u32,
        /// YUV format of the stream.
        format: YuvFormat,
        /// Source (encoded) frame width.
        src_width: u32,
        /// Source (encoded) frame height.
        src_height: u32,
        /// On-screen destination rectangle (client hardware scales).
        dst: Rect,
    },
    /// One video frame of stream `id`.
    VideoData {
        /// Stream id.
        id: u32,
        /// Frame sequence number.
        seq: u32,
        /// Server timestamp, microseconds (A/V sync, §4.2).
        timestamp_us: u64,
        /// YUV payload in the stream's format.
        data: Vec<u8>,
    },
    /// Move/resize a video stream's destination.
    VideoMove {
        /// Stream id.
        id: u32,
        /// New destination rectangle.
        dst: Rect,
    },
    /// Tear down a video stream.
    VideoEnd {
        /// Stream id.
        id: u32,
    },
    /// Timestamped audio samples from the virtual audio driver.
    Audio {
        /// Sequence number.
        seq: u32,
        /// Server timestamp, microseconds.
        timestamp_us: u64,
        /// PCM payload.
        data: Vec<u8>,
    },
    /// Client input event.
    Input(ProtocolInput),
    /// Client viewport change (zoom, window resize).
    Resize {
        /// New viewport width.
        viewport_width: u32,
        /// New viewport height.
        viewport_height: u32,
    },
    /// Client zoom: map this session-space region onto the viewport
    /// (§6 — "the user can zoom in on particular sections of the
    /// display"; the server resizes subsequent updates accordingly
    /// and refreshes the region, since the client only has a
    /// small-size version of it).
    SetView {
        /// Viewed region in session coordinates.
        view: Rect,
    },
    /// Server-defined cursor image. The client composites it over its
    /// framebuffer locally (save-under), so cursor motion costs a few
    /// bytes instead of display updates.
    CursorShape {
        /// Cursor width in pixels.
        width: u32,
        /// Cursor height in pixels.
        height: u32,
        /// Hotspot x within the image.
        hot_x: i32,
        /// Hotspot y within the image.
        hot_y: i32,
        /// RGBA pixels (alpha = cursor mask), tightly packed.
        pixels: Vec<u8>,
    },
    /// Cursor position in session coordinates (server-driven: apps
    /// can warp the pointer).
    CursorMove {
        /// Hotspot x.
        x: i32,
        /// Hotspot y.
        y: i32,
    },
    /// Server → client liveness probe. Display traffic normally
    /// doubles as the heartbeat; the server pings only when a client
    /// has been silent long enough to be suspect.
    Ping {
        /// Probe sequence number.
        seq: u32,
        /// Server virtual-time timestamp, microseconds (echoed back,
        /// so a pong measures the round trip).
        timestamp_us: u64,
    },
    /// Client → server liveness reply, echoing the probe's fields.
    Pong {
        /// Echoed probe sequence number.
        seq: u32,
        /// Echoed server timestamp, microseconds.
        timestamp_us: u64,
    },
    /// Client → server request for a full resync: the client detected
    /// stream damage (or reconnected on a fresh transport) and needs
    /// the cursor, video announcements and a full-view refresh resent.
    /// Issued by the client's reconnect policy, with the attempt
    /// number for diagnostics.
    RefreshRequest {
        /// Reconnect-policy attempt number (1-based).
        attempt: u32,
    },
    /// Server → client reference to a cached display payload
    /// (protocol revision 3): "apply the display message whose encoded
    /// bytes hash to `hash`". Emitted only for payloads the server's
    /// ledger says this client holds; a client that cannot resolve it
    /// answers with [`Message::CacheMiss`]. See [`crate::cache`].
    CacheRef {
        /// FNV-1a 64 content hash of the referenced encoded message.
        hash: u64,
    },
    /// Client → server report that a [`Message::CacheRef`] did not
    /// resolve in the client's store. The server answers with the
    /// byte-exact original payload (and repairs its ledger view).
    CacheMiss {
        /// Echoed content hash of the unresolved reference.
        hash: u64,
    },
    /// Client → server warm-resume token, presented instead of a
    /// [`Message::ClientHello`] when redialing after a server crash or
    /// failover. It names the session and client the server should
    /// restore from its checkpoint, the last sequence number the
    /// client actually received (so the restored encoder continues the
    /// counter instead of rolling it back), and a digest of the
    /// client's cache store (so the server can verify its restored
    /// ledger still mirrors it). A server that cannot honor the token
    /// — unknown session, unknown client, digest mismatch — falls back
    /// to the cold reconnect path; it never panics on one.
    ///
    /// Like the hello pair, this is a handshake message: it keeps
    /// revision-1 framing at every negotiated revision so a
    /// freshly-restored server can decode it before any negotiation
    /// state exists.
    SessionResume {
        /// Deterministic id of the session being resumed.
        session_id: u64,
        /// The client id the server assigned before the crash.
        client_id: u32,
        /// Last integrity-frame sequence number the client received.
        last_seq: u32,
        /// FNV-1a 64 digest over the client store's sorted key set.
        store_digest: u64,
    },
}

impl Message {
    /// Approximate wire size of the encoded message in bytes.
    ///
    /// Exact for all variants (verified by the wire tests): header
    /// plus payload.
    pub fn wire_size(&self) -> u64 {
        crate::wire::encoded_len(self)
    }

    /// Whether this message flows server → client.
    pub fn is_downstream(&self) -> bool {
        !matches!(
            self,
            Message::ClientHello { .. }
                | Message::Input(_)
                | Message::Resize { .. }
                | Message::SetView { .. }
                | Message::Pong { .. }
                | Message::RefreshRequest { .. }
                | Message::CacheMiss { .. }
                | Message::SessionResume { .. }
        )
    }

    /// The content-cache key for this message, or `None` if it is not
    /// cacheable (see [`crate::cache::cache_key`] for the rules).
    ///
    /// Convenience wrapper that encodes the message first; hot paths
    /// that already hold the encoded bytes call
    /// [`crate::cache::cache_key`] directly.
    pub fn cache_key(&self) -> Option<u64> {
        crate::cache::cache_key(self, &crate::wire::encode_message(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directionality() {
        assert!(Message::ServerHello {
            version: 1,
            width: 1024,
            height: 768,
            depth: 24
        }
        .is_downstream());
        assert!(!Message::Input(ProtocolInput::KeyPress { key: 13 }).is_downstream());
        assert!(!Message::Resize {
            viewport_width: 320,
            viewport_height: 240
        }
        .is_downstream());
        assert!(!Message::RefreshRequest { attempt: 1 }.is_downstream());
        assert!(Message::CacheRef { hash: 0xDEAD }.is_downstream());
        assert!(!Message::CacheMiss { hash: 0xDEAD }.is_downstream());
        assert!(!Message::SessionResume {
            session_id: 0xFEED,
            client_id: 3,
            last_seq: 99,
            store_digest: 0xBEEF
        }
        .is_downstream());
        assert!(Message::Audio {
            seq: 0,
            timestamp_us: 0,
            data: vec![]
        }
        .is_downstream());
    }
}
