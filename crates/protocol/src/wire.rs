//! Binary wire encoding.
//!
//! Framing: every message is `[type: u8][payload_len: u32 LE][payload]`.
//! Multi-byte integers are little-endian. Rectangles are
//! `x: i32, y: i32, w: u32, h: u32`; colors are `r, g, b, a` bytes.
//! [`FrameReader`] incrementally splits a byte stream back into
//! messages (the client feeds it whatever the transport delivers).

use bytes::{Buf, BufMut};
use thinc_raster::{Color, Rect, YuvFormat};

use crate::commands::{DisplayCommand, RawEncoding, Tile};
use crate::message::{Message, ProtocolInput};

/// Upper bound on a frame's declared payload length, in bytes.
///
/// No legitimate message comes close (the largest — a RAW update of a
/// full 24-bit 1920×1200 screen — is under 7 MiB), but a *corrupted*
/// length field can declare anything up to 4 GiB. Without this bound a
/// [`FrameReader`] would wait forever for the phantom payload,
/// buffering unbounded garbage; with it, an oversized declaration is a
/// hard [`DecodeError::FrameTooLarge`] the reader can resync past.
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes for the declared frame.
    Truncated,
    /// Unknown message or command type byte.
    UnknownType(u8),
    /// Payload contents are inconsistent (bad lengths, bad enums).
    Malformed(&'static str),
    /// The header declares a payload larger than
    /// [`MAX_FRAME_PAYLOAD`] — a corrupted length field.
    FrameTooLarge(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::UnknownType(t) => write!(f, "unknown type byte {t:#x}"),
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
            DecodeError::FrameTooLarge(len) => {
                write!(f, "declared payload of {len} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// Message type bytes.
const MSG_SERVER_HELLO: u8 = 0x01;
const MSG_CLIENT_HELLO: u8 = 0x02;
const MSG_DISPLAY: u8 = 0x03;
const MSG_VIDEO_INIT: u8 = 0x04;
const MSG_VIDEO_DATA: u8 = 0x05;
const MSG_VIDEO_MOVE: u8 = 0x06;
const MSG_VIDEO_END: u8 = 0x07;
const MSG_AUDIO: u8 = 0x08;
const MSG_INPUT: u8 = 0x09;
const MSG_RESIZE: u8 = 0x0A;
const MSG_SET_VIEW: u8 = 0x0B;
const MSG_CURSOR_SHAPE: u8 = 0x0C;
const MSG_CURSOR_MOVE: u8 = 0x0D;
const MSG_PING: u8 = 0x0E;
const MSG_PONG: u8 = 0x0F;
// 0x10–0x14 are display command bytes (separate namespace inside the
// Display payload); the next free message tag sits above them.
const MSG_REFRESH_REQUEST: u8 = 0x16;

// Display command type bytes.
const CMD_RAW: u8 = 0x10;
const CMD_COPY: u8 = 0x11;
const CMD_SFILL: u8 = 0x12;
const CMD_PFILL: u8 = 0x13;
const CMD_BITMAP: u8 = 0x14;

// Input type bytes.
const IN_POINTER_MOVE: u8 = 0x20;
const IN_BUTTON_PRESS: u8 = 0x21;
const IN_BUTTON_RELEASE: u8 = 0x22;
const IN_KEY_PRESS: u8 = 0x23;
const IN_KEY_RELEASE: u8 = 0x24;

fn put_rect(buf: &mut Vec<u8>, r: &Rect) {
    buf.put_i32_le(r.x);
    buf.put_i32_le(r.y);
    buf.put_u32_le(r.w);
    buf.put_u32_le(r.h);
}

fn get_rect(buf: &mut &[u8]) -> Result<Rect, DecodeError> {
    if buf.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    let x = buf.get_i32_le();
    let y = buf.get_i32_le();
    let w = buf.get_u32_le();
    let h = buf.get_u32_le();
    Ok(Rect::new(x, y, w, h))
}

fn put_color(buf: &mut Vec<u8>, c: Color) {
    buf.put_u8(c.r);
    buf.put_u8(c.g);
    buf.put_u8(c.b);
    buf.put_u8(c.a);
}

fn get_color(buf: &mut &[u8]) -> Result<Color, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(Color::rgba(buf.get_u8(), buf.get_u8(), buf.get_u8(), buf.get_u8()))
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

fn encode_command(cmd: &DisplayCommand, buf: &mut Vec<u8>) {
    match cmd {
        DisplayCommand::Raw { rect, encoding, data } => {
            buf.put_u8(CMD_RAW);
            put_rect(buf, rect);
            buf.put_u8(match encoding {
                RawEncoding::None => 0,
                RawEncoding::PngLike => 1,
            });
            put_bytes(buf, data);
        }
        DisplayCommand::Copy {
            src_rect,
            dst_x,
            dst_y,
        } => {
            buf.put_u8(CMD_COPY);
            put_rect(buf, src_rect);
            buf.put_i32_le(*dst_x);
            buf.put_i32_le(*dst_y);
        }
        DisplayCommand::Sfill { rect, color } => {
            buf.put_u8(CMD_SFILL);
            put_rect(buf, rect);
            put_color(buf, *color);
        }
        DisplayCommand::Pfill { rect, tile } => {
            buf.put_u8(CMD_PFILL);
            put_rect(buf, rect);
            buf.put_u32_le(tile.width);
            buf.put_u32_le(tile.height);
            put_bytes(buf, &tile.pixels);
        }
        DisplayCommand::Bitmap { rect, bits, fg, bg } => {
            buf.put_u8(CMD_BITMAP);
            put_rect(buf, rect);
            put_color(buf, *fg);
            match bg {
                Some(bg) => {
                    buf.put_u8(1);
                    put_color(buf, *bg);
                }
                None => buf.put_u8(0),
            }
            put_bytes(buf, bits);
        }
    }
}

fn decode_command(buf: &mut &[u8]) -> Result<DisplayCommand, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        CMD_RAW => {
            let rect = get_rect(buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let encoding = match buf.get_u8() {
                0 => RawEncoding::None,
                1 => RawEncoding::PngLike,
                _ => return Err(DecodeError::Malformed("raw encoding")),
            };
            let data = get_bytes(buf)?;
            Ok(DisplayCommand::Raw { rect, encoding, data })
        }
        CMD_COPY => {
            let src_rect = get_rect(buf)?;
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let dst_x = buf.get_i32_le();
            let dst_y = buf.get_i32_le();
            Ok(DisplayCommand::Copy {
                src_rect,
                dst_x,
                dst_y,
            })
        }
        CMD_SFILL => {
            let rect = get_rect(buf)?;
            let color = get_color(buf)?;
            Ok(DisplayCommand::Sfill { rect, color })
        }
        CMD_PFILL => {
            let rect = get_rect(buf)?;
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let width = buf.get_u32_le();
            let height = buf.get_u32_le();
            let pixels = get_bytes(buf)?;
            Ok(DisplayCommand::Pfill {
                rect,
                tile: Tile {
                    width,
                    height,
                    pixels,
                },
            })
        }
        CMD_BITMAP => {
            let rect = get_rect(buf)?;
            let fg = get_color(buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let bg = match buf.get_u8() {
                0 => None,
                1 => Some(get_color(buf)?),
                _ => return Err(DecodeError::Malformed("bitmap bg flag")),
            };
            let bits = get_bytes(buf)?;
            Ok(DisplayCommand::Bitmap { rect, bits, fg, bg })
        }
        other => Err(DecodeError::UnknownType(other)),
    }
}

fn yuv_tag(f: YuvFormat) -> u8 {
    match f {
        YuvFormat::Yv12 => 0,
        YuvFormat::Yuy2 => 1,
    }
}

fn yuv_from_tag(t: u8) -> Result<YuvFormat, DecodeError> {
    match t {
        0 => Ok(YuvFormat::Yv12),
        1 => Ok(YuvFormat::Yuy2),
        _ => Err(DecodeError::Malformed("yuv format")),
    }
}

/// Encodes a message into a framed byte vector.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    let tag = match msg {
        Message::ServerHello {
            version,
            width,
            height,
            depth,
        } => {
            payload.put_u16_le(*version);
            payload.put_u32_le(*width);
            payload.put_u32_le(*height);
            payload.put_u8(*depth);
            MSG_SERVER_HELLO
        }
        Message::ClientHello {
            version,
            viewport_width,
            viewport_height,
        } => {
            payload.put_u16_le(*version);
            payload.put_u32_le(*viewport_width);
            payload.put_u32_le(*viewport_height);
            MSG_CLIENT_HELLO
        }
        Message::Display(cmd) => {
            encode_command(cmd, &mut payload);
            MSG_DISPLAY
        }
        Message::VideoInit {
            id,
            format,
            src_width,
            src_height,
            dst,
        } => {
            payload.put_u32_le(*id);
            payload.put_u8(yuv_tag(*format));
            payload.put_u32_le(*src_width);
            payload.put_u32_le(*src_height);
            put_rect(&mut payload, dst);
            MSG_VIDEO_INIT
        }
        Message::VideoData {
            id,
            seq,
            timestamp_us,
            data,
        } => {
            payload.put_u32_le(*id);
            payload.put_u32_le(*seq);
            payload.put_u64_le(*timestamp_us);
            put_bytes(&mut payload, data);
            MSG_VIDEO_DATA
        }
        Message::VideoMove { id, dst } => {
            payload.put_u32_le(*id);
            put_rect(&mut payload, dst);
            MSG_VIDEO_MOVE
        }
        Message::VideoEnd { id } => {
            payload.put_u32_le(*id);
            MSG_VIDEO_END
        }
        Message::Audio {
            seq,
            timestamp_us,
            data,
        } => {
            payload.put_u32_le(*seq);
            payload.put_u64_le(*timestamp_us);
            put_bytes(&mut payload, data);
            MSG_AUDIO
        }
        Message::Input(input) => {
            match input {
                ProtocolInput::PointerMove { x, y } => {
                    payload.put_u8(IN_POINTER_MOVE);
                    payload.put_i32_le(*x);
                    payload.put_i32_le(*y);
                }
                ProtocolInput::ButtonPress { x, y, button } => {
                    payload.put_u8(IN_BUTTON_PRESS);
                    payload.put_i32_le(*x);
                    payload.put_i32_le(*y);
                    payload.put_u8(*button);
                }
                ProtocolInput::ButtonRelease { x, y, button } => {
                    payload.put_u8(IN_BUTTON_RELEASE);
                    payload.put_i32_le(*x);
                    payload.put_i32_le(*y);
                    payload.put_u8(*button);
                }
                ProtocolInput::KeyPress { key } => {
                    payload.put_u8(IN_KEY_PRESS);
                    payload.put_u32_le(*key);
                }
                ProtocolInput::KeyRelease { key } => {
                    payload.put_u8(IN_KEY_RELEASE);
                    payload.put_u32_le(*key);
                }
            }
            MSG_INPUT
        }
        Message::Resize {
            viewport_width,
            viewport_height,
        } => {
            payload.put_u32_le(*viewport_width);
            payload.put_u32_le(*viewport_height);
            MSG_RESIZE
        }
        Message::SetView { view } => {
            put_rect(&mut payload, view);
            MSG_SET_VIEW
        }
        Message::CursorShape {
            width,
            height,
            hot_x,
            hot_y,
            pixels,
        } => {
            payload.put_u32_le(*width);
            payload.put_u32_le(*height);
            payload.put_i32_le(*hot_x);
            payload.put_i32_le(*hot_y);
            put_bytes(&mut payload, pixels);
            MSG_CURSOR_SHAPE
        }
        Message::CursorMove { x, y } => {
            payload.put_i32_le(*x);
            payload.put_i32_le(*y);
            MSG_CURSOR_MOVE
        }
        Message::Ping { seq, timestamp_us } => {
            payload.put_u32_le(*seq);
            payload.put_u64_le(*timestamp_us);
            MSG_PING
        }
        Message::Pong { seq, timestamp_us } => {
            payload.put_u32_le(*seq);
            payload.put_u64_le(*timestamp_us);
            MSG_PONG
        }
        Message::RefreshRequest { attempt } => {
            payload.put_u32_le(*attempt);
            MSG_REFRESH_REQUEST
        }
    };
    let mut out = Vec::with_capacity(payload.len() + 5);
    out.put_u8(tag);
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Decodes one framed message from the front of `data`, returning the
/// message and the number of bytes consumed.
pub fn decode_message(data: &[u8]) -> Result<(Message, usize), DecodeError> {
    if data.len() < 5 {
        return Err(DecodeError::Truncated);
    }
    let tag = data[0];
    // Validate the header *before* waiting for the declared payload:
    // a corrupted header must fail fast, not leave the reader stalled
    // on (or buffering toward) a phantom payload that never arrives.
    if !(MSG_SERVER_HELLO..=MSG_PONG).contains(&tag) && tag != MSG_REFRESH_REQUEST {
        return Err(DecodeError::UnknownType(tag));
    }
    let declared = u32::from_le_bytes([data[1], data[2], data[3], data[4]]);
    if declared > MAX_FRAME_PAYLOAD {
        return Err(DecodeError::FrameTooLarge(declared));
    }
    let len = declared as usize;
    if data.len() < 5 + len {
        return Err(DecodeError::Truncated);
    }
    let mut buf = &data[5..5 + len];
    let msg = match tag {
        MSG_SERVER_HELLO => {
            if buf.remaining() < 11 {
                return Err(DecodeError::Truncated);
            }
            Message::ServerHello {
                version: buf.get_u16_le(),
                width: buf.get_u32_le(),
                height: buf.get_u32_le(),
                depth: buf.get_u8(),
            }
        }
        MSG_CLIENT_HELLO => {
            if buf.remaining() < 10 {
                return Err(DecodeError::Truncated);
            }
            Message::ClientHello {
                version: buf.get_u16_le(),
                viewport_width: buf.get_u32_le(),
                viewport_height: buf.get_u32_le(),
            }
        }
        MSG_DISPLAY => Message::Display(decode_command(&mut buf)?),
        MSG_VIDEO_INIT => {
            if buf.remaining() < 13 {
                return Err(DecodeError::Truncated);
            }
            let id = buf.get_u32_le();
            let format = yuv_from_tag(buf.get_u8())?;
            let src_width = buf.get_u32_le();
            let src_height = buf.get_u32_le();
            let dst = get_rect(&mut buf)?;
            Message::VideoInit {
                id,
                format,
                src_width,
                src_height,
                dst,
            }
        }
        MSG_VIDEO_DATA => {
            if buf.remaining() < 16 {
                return Err(DecodeError::Truncated);
            }
            let id = buf.get_u32_le();
            let seq = buf.get_u32_le();
            let timestamp_us = buf.get_u64_le();
            let data = get_bytes(&mut buf)?;
            Message::VideoData {
                id,
                seq,
                timestamp_us,
                data,
            }
        }
        MSG_VIDEO_MOVE => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let id = buf.get_u32_le();
            let dst = get_rect(&mut buf)?;
            Message::VideoMove { id, dst }
        }
        MSG_VIDEO_END => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Message::VideoEnd {
                id: buf.get_u32_le(),
            }
        }
        MSG_AUDIO => {
            if buf.remaining() < 12 {
                return Err(DecodeError::Truncated);
            }
            let seq = buf.get_u32_le();
            let timestamp_us = buf.get_u64_le();
            let data = get_bytes(&mut buf)?;
            Message::Audio {
                seq,
                timestamp_us,
                data,
            }
        }
        MSG_INPUT => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let itag = buf.get_u8();
            let input = match itag {
                IN_POINTER_MOVE => {
                    if buf.remaining() < 8 {
                        return Err(DecodeError::Truncated);
                    }
                    ProtocolInput::PointerMove {
                        x: buf.get_i32_le(),
                        y: buf.get_i32_le(),
                    }
                }
                IN_BUTTON_PRESS | IN_BUTTON_RELEASE => {
                    if buf.remaining() < 9 {
                        return Err(DecodeError::Truncated);
                    }
                    let x = buf.get_i32_le();
                    let y = buf.get_i32_le();
                    let button = buf.get_u8();
                    if itag == IN_BUTTON_PRESS {
                        ProtocolInput::ButtonPress { x, y, button }
                    } else {
                        ProtocolInput::ButtonRelease { x, y, button }
                    }
                }
                IN_KEY_PRESS | IN_KEY_RELEASE => {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let key = buf.get_u32_le();
                    if itag == IN_KEY_PRESS {
                        ProtocolInput::KeyPress { key }
                    } else {
                        ProtocolInput::KeyRelease { key }
                    }
                }
                other => return Err(DecodeError::UnknownType(other)),
            };
            Message::Input(input)
        }
        MSG_RESIZE => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Message::Resize {
                viewport_width: buf.get_u32_le(),
                viewport_height: buf.get_u32_le(),
            }
        }
        MSG_SET_VIEW => Message::SetView {
            view: get_rect(&mut buf)?,
        },
        MSG_CURSOR_SHAPE => {
            if buf.remaining() < 16 {
                return Err(DecodeError::Truncated);
            }
            let width = buf.get_u32_le();
            let height = buf.get_u32_le();
            let hot_x = buf.get_i32_le();
            let hot_y = buf.get_i32_le();
            let pixels = get_bytes(&mut buf)?;
            Message::CursorShape {
                width,
                height,
                hot_x,
                hot_y,
                pixels,
            }
        }
        MSG_CURSOR_MOVE => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Message::CursorMove {
                x: buf.get_i32_le(),
                y: buf.get_i32_le(),
            }
        }
        MSG_PING | MSG_PONG => {
            if buf.remaining() < 12 {
                return Err(DecodeError::Truncated);
            }
            let seq = buf.get_u32_le();
            let timestamp_us = buf.get_u64_le();
            if tag == MSG_PING {
                Message::Ping { seq, timestamp_us }
            } else {
                Message::Pong { seq, timestamp_us }
            }
        }
        MSG_REFRESH_REQUEST => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Message::RefreshRequest {
                attempt: buf.get_u32_le(),
            }
        }
        other => return Err(DecodeError::UnknownType(other)),
    };
    Ok((msg, 5 + len))
}

/// Incremental frame splitter: feed transport bytes in, take whole
/// messages out.
///
/// On damaged input [`next_message`](Self::next_message) returns the
/// typed [`DecodeError`]; the caller then invokes
/// [`resync`](Self::resync) to skip past the damage and keeps reading.
/// Nothing here panics on wire bytes, and buffered memory stays
/// bounded by [`MAX_FRAME_PAYLOAD`] plus one feed chunk as long as the
/// caller drains between feeds.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw transport bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extracts the next complete message, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    pub fn next_message(&mut self) -> Result<Option<Message>, DecodeError> {
        match decode_message(&self.buf) {
            Ok((msg, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(msg))
            }
            Err(DecodeError::Truncated) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Skips past damage to the next plausible frame boundary,
    /// returning the number of bytes discarded.
    ///
    /// Call after [`next_message`](Self::next_message) errors. The
    /// byte at the head of the buffer is known-bad and always skipped;
    /// scanning then stops at the first byte that could start a frame
    /// (known type byte, sane declared length). The heuristic can land
    /// on a false boundary inside surviving payload — the next
    /// `next_message` error sends the caller back here, and each call
    /// discards at least one byte, so the loop always terminates. The
    /// client treats everything skipped as lost screen state and asks
    /// the server for a refresh.
    pub fn resync(&mut self) -> usize {
        if self.buf.is_empty() {
            return 0;
        }
        let mut offset = 1;
        while offset < self.buf.len() && !plausible_frame_start(&self.buf[offset..]) {
            offset += 1;
        }
        self.buf.drain(..offset);
        offset
    }
}

/// Whether `buf` could begin a valid frame: known message type byte
/// and, if the length field is visible, a sane declared length.
fn plausible_frame_start(buf: &[u8]) -> bool {
    let tag_ok =
        (MSG_SERVER_HELLO..=MSG_PONG).contains(&buf[0]) || buf[0] == MSG_REFRESH_REQUEST;
    if !tag_ok {
        return false;
    }
    if buf.len() < 5 {
        return true;
    }
    u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) <= MAX_FRAME_PAYLOAD
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::ServerHello {
                version: 1,
                width: 1024,
                height: 768,
                depth: 24,
            },
            Message::ClientHello {
                version: 1,
                viewport_width: 320,
                viewport_height: 240,
            },
            Message::Display(DisplayCommand::Raw {
                rect: Rect::new(-3, 7, 5, 6),
                encoding: RawEncoding::PngLike,
                data: vec![1, 2, 3, 4, 5],
            }),
            Message::Display(DisplayCommand::Copy {
                src_rect: Rect::new(0, 0, 100, 50),
                dst_x: 10,
                dst_y: -20,
            }),
            Message::Display(DisplayCommand::Sfill {
                rect: Rect::new(0, 0, 1024, 768),
                color: Color::rgba(1, 2, 3, 200),
            }),
            Message::Display(DisplayCommand::Pfill {
                rect: Rect::new(5, 5, 64, 64),
                tile: Tile {
                    width: 8,
                    height: 8,
                    pixels: vec![9; 8 * 8 * 3],
                },
            }),
            Message::Display(DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 16, 8),
                bits: vec![0xAA; 16],
                fg: Color::BLACK,
                bg: Some(Color::WHITE),
            }),
            Message::Display(DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 16, 8),
                bits: vec![0x55; 16],
                fg: Color::WHITE,
                bg: None,
            }),
            Message::VideoInit {
                id: 7,
                format: YuvFormat::Yv12,
                src_width: 352,
                src_height: 240,
                dst: Rect::new(0, 0, 1024, 768),
            },
            Message::VideoData {
                id: 7,
                seq: 42,
                timestamp_us: 1_750_000,
                data: vec![0x10; 100],
            },
            Message::VideoMove {
                id: 7,
                dst: Rect::new(10, 10, 320, 240),
            },
            Message::VideoEnd { id: 7 },
            Message::Audio {
                seq: 3,
                timestamp_us: 999,
                data: vec![1; 64],
            },
            Message::Input(ProtocolInput::PointerMove { x: -5, y: 900 }),
            Message::Input(ProtocolInput::ButtonPress { x: 1, y: 2, button: 3 }),
            Message::Input(ProtocolInput::ButtonRelease { x: 1, y: 2, button: 1 }),
            Message::Input(ProtocolInput::KeyPress { key: 0xFF0D }),
            Message::Input(ProtocolInput::KeyRelease { key: 65 }),
            Message::Resize {
                viewport_width: 640,
                viewport_height: 480,
            },
            Message::SetView {
                view: Rect::new(100, 50, 512, 384),
            },
            Message::CursorShape {
                width: 16,
                height: 16,
                hot_x: 1,
                hot_y: 2,
                pixels: vec![7; 16 * 16 * 4],
            },
            Message::CursorMove { x: 500, y: -3 },
            Message::Ping {
                seq: 9,
                timestamp_us: 123_456,
            },
            Message::Pong {
                seq: 9,
                timestamp_us: 123_456,
            },
            Message::RefreshRequest { attempt: 3 },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let enc = encode_message(&msg);
            let (dec, used) = decode_message(&enc).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(dec, msg);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn wire_size_matches_encoding() {
        for msg in sample_messages() {
            assert_eq!(msg.wire_size(), encode_message(&msg).len() as u64);
        }
    }

    #[test]
    fn command_wire_size_close_to_encoded() {
        // DisplayCommand::wire_size is the scheduler's fast estimate;
        // it must match the encoded frame size exactly.
        for msg in sample_messages() {
            if let Message::Display(cmd) = &msg {
                assert_eq!(
                    cmd.wire_size(),
                    encode_message(&msg).len() as u64,
                    "{}",
                    cmd.name()
                );
            }
        }
    }

    #[test]
    fn truncated_frames_wait_for_more() {
        let enc = encode_message(&sample_messages()[2]);
        for cut in 0..enc.len() {
            assert_eq!(decode_message(&enc[..cut]), Err(DecodeError::Truncated));
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let bad = [0xEEu8, 0, 0, 0, 0];
        assert_eq!(decode_message(&bad), Err(DecodeError::UnknownType(0xEE)));
    }

    #[test]
    fn frame_reader_reassembles_dribbled_stream() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        // Feed one byte at a time.
        for b in stream {
            reader.feed(&[b]);
            while let Some(m) = reader.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn frame_reader_surfaces_errors() {
        let mut reader = FrameReader::new();
        reader.feed(&[0xEE, 0, 0, 0, 0]);
        assert!(reader.next_message().is_err());
    }

    #[test]
    fn absurd_declared_length_is_rejected_immediately() {
        // Tag is valid but the length field claims ~4 GiB; waiting for
        // it (Truncated) would buffer unboundedly.
        let mut bad = vec![MSG_DISPLAY];
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_message(&bad), Err(DecodeError::FrameTooLarge(u32::MAX)));
        let mut reader = FrameReader::new();
        reader.feed(&bad);
        assert!(matches!(
            reader.next_message(),
            Err(DecodeError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn resync_skips_damage_and_recovers_following_messages() {
        let msgs = sample_messages();
        let mut stream = vec![0xEE, 0xFF, 0x00, 0x99]; // Leading garbage.
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        let mut reader = FrameReader::new();
        reader.feed(&stream);
        let mut got = Vec::new();
        let mut skipped = 0;
        loop {
            match reader.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(_) => skipped += reader.resync(),
            }
        }
        assert!(skipped >= 4, "{skipped}");
        // Everything after the damage is recovered.
        assert_eq!(got, msgs);
    }

    #[test]
    fn resync_terminates_on_all_garbage() {
        let mut reader = FrameReader::new();
        reader.feed(&[0xEEu8; 4096]);
        let mut iterations = 0;
        while reader.pending_bytes() >= 5 {
            if reader.next_message().is_err() {
                assert!(reader.resync() > 0);
            }
            iterations += 1;
            assert!(iterations < 10_000, "resync loop failed to make progress");
        }
    }

    #[test]
    fn ping_pong_directionality() {
        assert!(Message::Ping {
            seq: 0,
            timestamp_us: 0
        }
        .is_downstream());
        assert!(!Message::Pong {
            seq: 0,
            timestamp_us: 0
        }
        .is_downstream());
    }
}
