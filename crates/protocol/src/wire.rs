//! Binary wire encoding.
//!
//! Framing comes in two layouts; a third protocol revision reuses the
//! second layout and adds capability, all negotiated by the handshake:
//!
//! - **Revision 1 (legacy)**: `[type: u8][payload_len: u32 LE][payload]`
//!   — a 5-byte header. This is the framing of every capture made
//!   before the integrity layer existed, and the framing both ends
//!   use until the hello exchange announces something newer.
//! - **Revision 2 (integrity)**: `[type: u8][payload_len: u32 LE]`
//!   `[seq: u32 LE][crc32: u32 LE][payload]` — a 13-byte header. `seq`
//!   increases by one per frame (wrapping), `crc32` (IEEE, reflected)
//!   covers the whole frame except the CRC field itself, so damage to
//!   header *or* payload is detected. Handshake messages
//!   ([`Message::ServerHello`]/[`Message::ClientHello`]) always keep
//!   revision-1 framing regardless of the negotiated revision, so any
//!   reader can bootstrap and old captures still decode.
//! - **Revision 3 (cache)**: byte-identical framing to revision 2.
//!   What it adds is the content-addressed cache message pair
//!   ([`Message::CacheRef`] / [`Message::CacheMiss`], see
//!   [`crate::cache`]): a peer that negotiates revision ≥ 3 agrees to
//!   resolve cache references. A revision-2 peer never sees either
//!   message because the server only substitutes refs after the
//!   handshake lands on revision 3.
//!
//! The complete byte-layout reference, negotiation state machine, and
//! message-type table live in `docs/PROTOCOL.md`.
//!
//! Multi-byte integers are little-endian. Rectangles are
//! `x: i32, y: i32, w: u32, h: u32`; colors are `r, g, b, a` bytes.
//! [`FrameEncoder`] stamps outgoing frames at the negotiated revision;
//! [`FrameReader`] incrementally splits a byte stream back into
//! messages (the client feeds it whatever the transport delivers),
//! verifying checksums and sequence continuity at revision 2.

use bytes::{Buf, BufMut};
use thinc_raster::{Color, Rect, YuvFormat};

use crate::commands::{DisplayCommand, RawEncoding, Tile};
use crate::message::{Message, ProtocolInput};

/// Upper bound on a frame's declared payload length, in bytes.
///
/// No legitimate message comes close (the largest — a RAW update of a
/// full 24-bit 1920×1200 screen — is under 7 MiB), but a *corrupted*
/// length field can declare anything up to 4 GiB. Without this bound a
/// [`FrameReader`] would wait forever for the phantom payload,
/// buffering unbounded garbage; with it, an oversized declaration is a
/// hard [`DecodeError::FrameTooLarge`] the reader can resync past.
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Wire framing revision 1: the original 5-byte
/// `[type][payload_len]` header, no integrity fields.
pub const WIRE_REV_LEGACY: u16 = 1;

/// Wire framing revision 2: the extended 13-byte
/// `[type][payload_len][seq][crc32]` header with per-frame CRC32 and
/// sequence numbering.
pub const WIRE_REV_INTEGRITY: u16 = 2;

/// Protocol revision 3: revision-2 framing plus the content-addressed
/// cache capability ([`Message::CacheRef`] / [`Message::CacheMiss`]).
/// Purely additive over the revision-2 byte layout — a revision-3
/// stream with no cache traffic is indistinguishable from revision 2.
pub const WIRE_REV_CACHE: u16 = 3;

/// Size of the revision-1 frame header.
pub const LEGACY_HEADER_LEN: usize = 5;

/// Size of the revision-2 (integrity) frame header.
pub const INTEGRITY_HEADER_LEN: usize = 13;

// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the ubiquity
// choice: cheap enough for a per-frame check, strong enough to catch
// the bit-flip damage the fault layer injects. Table-driven, built at
// compile time; no dependencies.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC32 state update over `data` (raw state; seed with
/// `!0`, finish by XORing with `!0`).
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC32 (IEEE) of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(!0, data) ^ !0
}

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes for the declared frame.
    Truncated,
    /// Unknown message or command type byte.
    UnknownType(u8),
    /// Payload contents are inconsistent (bad lengths, bad enums).
    Malformed(&'static str),
    /// The header declares a payload larger than
    /// [`MAX_FRAME_PAYLOAD`] — a corrupted length field.
    FrameTooLarge(u32),
    /// A revision-2 frame's CRC32 does not match its contents: the
    /// frame was damaged in flight and must not be applied.
    ChecksumMismatch {
        /// CRC carried in the frame header.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::UnknownType(t) => write!(f, "unknown type byte {t:#x}"),
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
            DecodeError::FrameTooLarge(len) => {
                write!(f, "declared payload of {len} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
            DecodeError::ChecksumMismatch { stored, computed } => {
                write!(f, "frame CRC mismatch: header says {stored:#010x}, bytes hash to {computed:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// Message type bytes.
const MSG_SERVER_HELLO: u8 = 0x01;
const MSG_CLIENT_HELLO: u8 = 0x02;
const MSG_DISPLAY: u8 = 0x03;
const MSG_VIDEO_INIT: u8 = 0x04;
const MSG_VIDEO_DATA: u8 = 0x05;
const MSG_VIDEO_MOVE: u8 = 0x06;
const MSG_VIDEO_END: u8 = 0x07;
const MSG_AUDIO: u8 = 0x08;
const MSG_INPUT: u8 = 0x09;
const MSG_RESIZE: u8 = 0x0A;
const MSG_SET_VIEW: u8 = 0x0B;
const MSG_CURSOR_SHAPE: u8 = 0x0C;
const MSG_CURSOR_MOVE: u8 = 0x0D;
const MSG_PING: u8 = 0x0E;
const MSG_PONG: u8 = 0x0F;
// 0x10–0x14 are display command bytes (separate namespace inside the
// Display payload); the next free message tag sits above them.
const MSG_REFRESH_REQUEST: u8 = 0x16;
// Content-addressed cache messages (protocol revision 3).
const MSG_CACHE_REF: u8 = 0x17;
const MSG_CACHE_MISS: u8 = 0x18;
// Warm-resume handshake extension (failover redial). Handshake-framed
// — always revision-1 on the wire — so no protocol revision bump.
const MSG_SESSION_RESUME: u8 = 0x19;

// Display command type bytes.
const CMD_RAW: u8 = 0x10;
const CMD_COPY: u8 = 0x11;
const CMD_SFILL: u8 = 0x12;
const CMD_PFILL: u8 = 0x13;
const CMD_BITMAP: u8 = 0x14;

// Input type bytes.
const IN_POINTER_MOVE: u8 = 0x20;
const IN_BUTTON_PRESS: u8 = 0x21;
const IN_BUTTON_RELEASE: u8 = 0x22;
const IN_KEY_PRESS: u8 = 0x23;
const IN_KEY_RELEASE: u8 = 0x24;

fn put_rect(buf: &mut Vec<u8>, r: &Rect) {
    buf.put_i32_le(r.x);
    buf.put_i32_le(r.y);
    buf.put_u32_le(r.w);
    buf.put_u32_le(r.h);
}

fn get_rect(buf: &mut &[u8]) -> Result<Rect, DecodeError> {
    if buf.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    let x = buf.get_i32_le();
    let y = buf.get_i32_le();
    let w = buf.get_u32_le();
    let h = buf.get_u32_le();
    Ok(Rect::new(x, y, w, h))
}

fn put_color(buf: &mut Vec<u8>, c: Color) {
    buf.put_u8(c.r);
    buf.put_u8(c.g);
    buf.put_u8(c.b);
    buf.put_u8(c.a);
}

fn get_color(buf: &mut &[u8]) -> Result<Color, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(Color::rgba(buf.get_u8(), buf.get_u8(), buf.get_u8(), buf.get_u8()))
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

fn encode_command(cmd: &DisplayCommand, buf: &mut Vec<u8>) {
    match cmd {
        DisplayCommand::Raw { rect, encoding, data } => {
            buf.put_u8(CMD_RAW);
            put_rect(buf, rect);
            buf.put_u8(match encoding {
                RawEncoding::None => 0,
                RawEncoding::PngLike => 1,
            });
            put_bytes(buf, data);
        }
        DisplayCommand::Copy {
            src_rect,
            dst_x,
            dst_y,
        } => {
            buf.put_u8(CMD_COPY);
            put_rect(buf, src_rect);
            buf.put_i32_le(*dst_x);
            buf.put_i32_le(*dst_y);
        }
        DisplayCommand::Sfill { rect, color } => {
            buf.put_u8(CMD_SFILL);
            put_rect(buf, rect);
            put_color(buf, *color);
        }
        DisplayCommand::Pfill { rect, tile } => {
            buf.put_u8(CMD_PFILL);
            put_rect(buf, rect);
            buf.put_u32_le(tile.width);
            buf.put_u32_le(tile.height);
            put_bytes(buf, &tile.pixels);
        }
        DisplayCommand::Bitmap { rect, bits, fg, bg } => {
            buf.put_u8(CMD_BITMAP);
            put_rect(buf, rect);
            put_color(buf, *fg);
            match bg {
                Some(bg) => {
                    buf.put_u8(1);
                    put_color(buf, *bg);
                }
                None => buf.put_u8(0),
            }
            put_bytes(buf, bits);
        }
    }
}

fn decode_command(buf: &mut &[u8]) -> Result<DisplayCommand, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        CMD_RAW => {
            let rect = get_rect(buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let encoding = match buf.get_u8() {
                0 => RawEncoding::None,
                1 => RawEncoding::PngLike,
                _ => return Err(DecodeError::Malformed("raw encoding")),
            };
            let data = get_bytes(buf)?;
            Ok(DisplayCommand::Raw {
                rect,
                encoding,
                data: data.into(),
            })
        }
        CMD_COPY => {
            let src_rect = get_rect(buf)?;
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let dst_x = buf.get_i32_le();
            let dst_y = buf.get_i32_le();
            Ok(DisplayCommand::Copy {
                src_rect,
                dst_x,
                dst_y,
            })
        }
        CMD_SFILL => {
            let rect = get_rect(buf)?;
            let color = get_color(buf)?;
            Ok(DisplayCommand::Sfill { rect, color })
        }
        CMD_PFILL => {
            let rect = get_rect(buf)?;
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let width = buf.get_u32_le();
            let height = buf.get_u32_le();
            let pixels = get_bytes(buf)?;
            Ok(DisplayCommand::Pfill {
                rect,
                tile: Tile {
                    width,
                    height,
                    pixels,
                },
            })
        }
        CMD_BITMAP => {
            let rect = get_rect(buf)?;
            let fg = get_color(buf)?;
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let bg = match buf.get_u8() {
                0 => None,
                1 => Some(get_color(buf)?),
                _ => return Err(DecodeError::Malformed("bitmap bg flag")),
            };
            let bits = get_bytes(buf)?;
            Ok(DisplayCommand::Bitmap { rect, bits, fg, bg })
        }
        other => Err(DecodeError::UnknownType(other)),
    }
}

fn yuv_tag(f: YuvFormat) -> u8 {
    match f {
        YuvFormat::Yv12 => 0,
        YuvFormat::Yuy2 => 1,
    }
}

fn yuv_from_tag(t: u8) -> Result<YuvFormat, DecodeError> {
    match t {
        0 => Ok(YuvFormat::Yv12),
        1 => Ok(YuvFormat::Yuy2),
        _ => Err(DecodeError::Malformed("yuv format")),
    }
}

/// Appends `msg`'s body bytes to `out` and returns its type tag.
///
/// This is the shared payload serializer behind both framings; the
/// caller reserves header space first and patches it afterwards, so
/// one reusable buffer serves every encode with zero per-call
/// allocations once warm.
fn encode_body(msg: &Message, payload: &mut Vec<u8>) -> u8 {
    match msg {
        Message::ServerHello {
            version,
            width,
            height,
            depth,
        } => {
            payload.put_u16_le(*version);
            payload.put_u32_le(*width);
            payload.put_u32_le(*height);
            payload.put_u8(*depth);
            MSG_SERVER_HELLO
        }
        Message::ClientHello {
            version,
            viewport_width,
            viewport_height,
        } => {
            payload.put_u16_le(*version);
            payload.put_u32_le(*viewport_width);
            payload.put_u32_le(*viewport_height);
            MSG_CLIENT_HELLO
        }
        Message::Display(cmd) => {
            encode_command(cmd, payload);
            MSG_DISPLAY
        }
        Message::VideoInit {
            id,
            format,
            src_width,
            src_height,
            dst,
        } => {
            payload.put_u32_le(*id);
            payload.put_u8(yuv_tag(*format));
            payload.put_u32_le(*src_width);
            payload.put_u32_le(*src_height);
            put_rect(payload, dst);
            MSG_VIDEO_INIT
        }
        Message::VideoData {
            id,
            seq,
            timestamp_us,
            data,
        } => {
            payload.put_u32_le(*id);
            payload.put_u32_le(*seq);
            payload.put_u64_le(*timestamp_us);
            put_bytes(payload, data);
            MSG_VIDEO_DATA
        }
        Message::VideoMove { id, dst } => {
            payload.put_u32_le(*id);
            put_rect(payload, dst);
            MSG_VIDEO_MOVE
        }
        Message::VideoEnd { id } => {
            payload.put_u32_le(*id);
            MSG_VIDEO_END
        }
        Message::Audio {
            seq,
            timestamp_us,
            data,
        } => {
            payload.put_u32_le(*seq);
            payload.put_u64_le(*timestamp_us);
            put_bytes(payload, data);
            MSG_AUDIO
        }
        Message::Input(input) => {
            match input {
                ProtocolInput::PointerMove { x, y } => {
                    payload.put_u8(IN_POINTER_MOVE);
                    payload.put_i32_le(*x);
                    payload.put_i32_le(*y);
                }
                ProtocolInput::ButtonPress { x, y, button } => {
                    payload.put_u8(IN_BUTTON_PRESS);
                    payload.put_i32_le(*x);
                    payload.put_i32_le(*y);
                    payload.put_u8(*button);
                }
                ProtocolInput::ButtonRelease { x, y, button } => {
                    payload.put_u8(IN_BUTTON_RELEASE);
                    payload.put_i32_le(*x);
                    payload.put_i32_le(*y);
                    payload.put_u8(*button);
                }
                ProtocolInput::KeyPress { key } => {
                    payload.put_u8(IN_KEY_PRESS);
                    payload.put_u32_le(*key);
                }
                ProtocolInput::KeyRelease { key } => {
                    payload.put_u8(IN_KEY_RELEASE);
                    payload.put_u32_le(*key);
                }
            }
            MSG_INPUT
        }
        Message::Resize {
            viewport_width,
            viewport_height,
        } => {
            payload.put_u32_le(*viewport_width);
            payload.put_u32_le(*viewport_height);
            MSG_RESIZE
        }
        Message::SetView { view } => {
            put_rect(payload, view);
            MSG_SET_VIEW
        }
        Message::CursorShape {
            width,
            height,
            hot_x,
            hot_y,
            pixels,
        } => {
            payload.put_u32_le(*width);
            payload.put_u32_le(*height);
            payload.put_i32_le(*hot_x);
            payload.put_i32_le(*hot_y);
            put_bytes(payload, pixels);
            MSG_CURSOR_SHAPE
        }
        Message::CursorMove { x, y } => {
            payload.put_i32_le(*x);
            payload.put_i32_le(*y);
            MSG_CURSOR_MOVE
        }
        Message::Ping { seq, timestamp_us } => {
            payload.put_u32_le(*seq);
            payload.put_u64_le(*timestamp_us);
            MSG_PING
        }
        Message::Pong { seq, timestamp_us } => {
            payload.put_u32_le(*seq);
            payload.put_u64_le(*timestamp_us);
            MSG_PONG
        }
        Message::RefreshRequest { attempt } => {
            payload.put_u32_le(*attempt);
            MSG_REFRESH_REQUEST
        }
        Message::CacheRef { hash } => {
            payload.put_u64_le(*hash);
            MSG_CACHE_REF
        }
        Message::CacheMiss { hash } => {
            payload.put_u64_le(*hash);
            MSG_CACHE_MISS
        }
        Message::SessionResume {
            session_id,
            client_id,
            last_seq,
            store_digest,
        } => {
            payload.put_u64_le(*session_id);
            payload.put_u32_le(*client_id);
            payload.put_u32_le(*last_seq);
            payload.put_u64_le(*store_digest);
            MSG_SESSION_RESUME
        }
    }
}

/// Encodes a message into a framed byte vector.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    encode_message_into(msg, &mut out);
    out
}

/// Encodes a message as a revision-1 frame into `out` (cleared first).
///
/// The allocation-free twin of [`encode_message`]: callers that
/// encode in a loop (wire sizing, cache-key hashing, flush paths)
/// keep one buffer warm instead of allocating per message.
pub fn encode_message_into(msg: &Message, out: &mut Vec<u8>) {
    out.clear();
    out.resize(LEGACY_HEADER_LEN, 0);
    let tag = encode_body(msg, out);
    let len = (out.len() - LEGACY_HEADER_LEN) as u32;
    out[0] = tag;
    out[1..5].copy_from_slice(&len.to_le_bytes());
}

/// The revision-1 encoded length of a message, computed through a
/// thread-local scratch buffer so sizing loops do not allocate.
pub fn encoded_len(msg: &Message) -> u64 {
    use std::cell::RefCell;
    thread_local! {
        static SIZER: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    }
    SIZER.with(|buf| {
        let mut buf = buf.borrow_mut();
        encode_message_into(msg, &mut buf);
        buf.len() as u64
    })
}

/// Encodes a message as a revision-2 integrity frame carrying `seq`:
/// `[tag][payload_len][seq][crc32][payload]`, where the CRC covers
/// everything except the CRC field itself.
pub fn encode_message_seq(msg: &Message, seq: u32) -> Vec<u8> {
    let mut out = Vec::new();
    encode_message_seq_into(msg, seq, &mut out);
    out
}

/// Encodes a revision-2 integrity frame into `out` (cleared first),
/// the allocation-free twin of [`encode_message_seq`].
pub fn encode_message_seq_into(msg: &Message, seq: u32, out: &mut Vec<u8>) {
    out.clear();
    out.resize(INTEGRITY_HEADER_LEN, 0);
    let tag = encode_body(msg, out);
    let len = (out.len() - INTEGRITY_HEADER_LEN) as u32;
    out[0] = tag;
    out[1..5].copy_from_slice(&len.to_le_bytes());
    out[5..9].copy_from_slice(&seq.to_le_bytes());
    let mut crc = crc32_update(!0, &out[..9]);
    crc = crc32_update(crc, &out[INTEGRITY_HEADER_LEN..]);
    let crc = crc ^ !0;
    out[9..13].copy_from_slice(&crc.to_le_bytes());
}

/// Whether `msg` is a handshake message, which keeps revision-1
/// framing at every negotiated revision (it must be decodable before
/// the revision is known).
fn is_handshake(msg: &Message) -> bool {
    matches!(
        msg,
        Message::ServerHello { .. }
            | Message::ClientHello { .. }
            | Message::SessionResume { .. }
    )
}

/// Whether `tag` is a known top-level message type byte.
fn known_message_tag(tag: u8) -> bool {
    (MSG_SERVER_HELLO..=MSG_PONG).contains(&tag)
        || (MSG_REFRESH_REQUEST..=MSG_SESSION_RESUME).contains(&tag)
}

/// Decodes one framed message from the front of `data`, returning the
/// message and the number of bytes consumed. This is the revision-1
/// (legacy) framing; revision-2 streams are split by a [`FrameReader`]
/// switched to [`WIRE_REV_INTEGRITY`].
pub fn decode_message(data: &[u8]) -> Result<(Message, usize), DecodeError> {
    if data.len() < LEGACY_HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let tag = data[0];
    // Validate the header *before* waiting for the declared payload:
    // a corrupted header must fail fast, not leave the reader stalled
    // on (or buffering toward) a phantom payload that never arrives.
    if !known_message_tag(tag) {
        return Err(DecodeError::UnknownType(tag));
    }
    let declared = u32::from_le_bytes([data[1], data[2], data[3], data[4]]);
    if declared > MAX_FRAME_PAYLOAD {
        return Err(DecodeError::FrameTooLarge(declared));
    }
    let len = declared as usize;
    if data.len() < LEGACY_HEADER_LEN + len {
        return Err(DecodeError::Truncated);
    }
    let msg = decode_payload(tag, &data[LEGACY_HEADER_LEN..LEGACY_HEADER_LEN + len])?;
    Ok((msg, LEGACY_HEADER_LEN + len))
}

/// Decodes a message body given its (already validated) type byte.
fn decode_payload(tag: u8, payload: &[u8]) -> Result<Message, DecodeError> {
    let mut buf = payload;
    let msg = match tag {
        MSG_SERVER_HELLO => {
            if buf.remaining() < 11 {
                return Err(DecodeError::Truncated);
            }
            Message::ServerHello {
                version: buf.get_u16_le(),
                width: buf.get_u32_le(),
                height: buf.get_u32_le(),
                depth: buf.get_u8(),
            }
        }
        MSG_CLIENT_HELLO => {
            if buf.remaining() < 10 {
                return Err(DecodeError::Truncated);
            }
            Message::ClientHello {
                version: buf.get_u16_le(),
                viewport_width: buf.get_u32_le(),
                viewport_height: buf.get_u32_le(),
            }
        }
        MSG_DISPLAY => Message::Display(decode_command(&mut buf)?),
        MSG_VIDEO_INIT => {
            if buf.remaining() < 13 {
                return Err(DecodeError::Truncated);
            }
            let id = buf.get_u32_le();
            let format = yuv_from_tag(buf.get_u8())?;
            let src_width = buf.get_u32_le();
            let src_height = buf.get_u32_le();
            let dst = get_rect(&mut buf)?;
            Message::VideoInit {
                id,
                format,
                src_width,
                src_height,
                dst,
            }
        }
        MSG_VIDEO_DATA => {
            if buf.remaining() < 16 {
                return Err(DecodeError::Truncated);
            }
            let id = buf.get_u32_le();
            let seq = buf.get_u32_le();
            let timestamp_us = buf.get_u64_le();
            let data = get_bytes(&mut buf)?;
            Message::VideoData {
                id,
                seq,
                timestamp_us,
                data,
            }
        }
        MSG_VIDEO_MOVE => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let id = buf.get_u32_le();
            let dst = get_rect(&mut buf)?;
            Message::VideoMove { id, dst }
        }
        MSG_VIDEO_END => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Message::VideoEnd {
                id: buf.get_u32_le(),
            }
        }
        MSG_AUDIO => {
            if buf.remaining() < 12 {
                return Err(DecodeError::Truncated);
            }
            let seq = buf.get_u32_le();
            let timestamp_us = buf.get_u64_le();
            let data = get_bytes(&mut buf)?;
            Message::Audio {
                seq,
                timestamp_us,
                data,
            }
        }
        MSG_INPUT => {
            if buf.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let itag = buf.get_u8();
            let input = match itag {
                IN_POINTER_MOVE => {
                    if buf.remaining() < 8 {
                        return Err(DecodeError::Truncated);
                    }
                    ProtocolInput::PointerMove {
                        x: buf.get_i32_le(),
                        y: buf.get_i32_le(),
                    }
                }
                IN_BUTTON_PRESS | IN_BUTTON_RELEASE => {
                    if buf.remaining() < 9 {
                        return Err(DecodeError::Truncated);
                    }
                    let x = buf.get_i32_le();
                    let y = buf.get_i32_le();
                    let button = buf.get_u8();
                    if itag == IN_BUTTON_PRESS {
                        ProtocolInput::ButtonPress { x, y, button }
                    } else {
                        ProtocolInput::ButtonRelease { x, y, button }
                    }
                }
                IN_KEY_PRESS | IN_KEY_RELEASE => {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::Truncated);
                    }
                    let key = buf.get_u32_le();
                    if itag == IN_KEY_PRESS {
                        ProtocolInput::KeyPress { key }
                    } else {
                        ProtocolInput::KeyRelease { key }
                    }
                }
                other => return Err(DecodeError::UnknownType(other)),
            };
            Message::Input(input)
        }
        MSG_RESIZE => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Message::Resize {
                viewport_width: buf.get_u32_le(),
                viewport_height: buf.get_u32_le(),
            }
        }
        MSG_SET_VIEW => Message::SetView {
            view: get_rect(&mut buf)?,
        },
        MSG_CURSOR_SHAPE => {
            if buf.remaining() < 16 {
                return Err(DecodeError::Truncated);
            }
            let width = buf.get_u32_le();
            let height = buf.get_u32_le();
            let hot_x = buf.get_i32_le();
            let hot_y = buf.get_i32_le();
            let pixels = get_bytes(&mut buf)?;
            Message::CursorShape {
                width,
                height,
                hot_x,
                hot_y,
                pixels,
            }
        }
        MSG_CURSOR_MOVE => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Message::CursorMove {
                x: buf.get_i32_le(),
                y: buf.get_i32_le(),
            }
        }
        MSG_PING | MSG_PONG => {
            if buf.remaining() < 12 {
                return Err(DecodeError::Truncated);
            }
            let seq = buf.get_u32_le();
            let timestamp_us = buf.get_u64_le();
            if tag == MSG_PING {
                Message::Ping { seq, timestamp_us }
            } else {
                Message::Pong { seq, timestamp_us }
            }
        }
        MSG_REFRESH_REQUEST => {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            Message::RefreshRequest {
                attempt: buf.get_u32_le(),
            }
        }
        MSG_CACHE_REF | MSG_CACHE_MISS => {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let hash = buf.get_u64_le();
            if tag == MSG_CACHE_REF {
                Message::CacheRef { hash }
            } else {
                Message::CacheMiss { hash }
            }
        }
        MSG_SESSION_RESUME => {
            if buf.remaining() < 24 {
                return Err(DecodeError::Truncated);
            }
            Message::SessionResume {
                session_id: buf.get_u64_le(),
                client_id: buf.get_u32_le(),
                last_seq: buf.get_u32_le(),
                store_digest: buf.get_u64_le(),
            }
        }
        other => return Err(DecodeError::UnknownType(other)),
    };
    Ok(msg)
}

/// Stamps outgoing frames at the negotiated wire revision.
///
/// Starts at [`WIRE_REV_LEGACY`]; [`negotiate`](Self::negotiate) with
/// the peer's announced protocol version upgrades it (never past this
/// crate's own [`crate::PROTOCOL_VERSION`]). At revision 2 every
/// non-handshake frame carries a monotonically increasing sequence
/// number and a CRC32; handshake frames always stay revision-1 so the
/// peer can decode them before negotiation completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameEncoder {
    revision: u16,
    next_seq: u32,
}

impl Default for FrameEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameEncoder {
    /// An encoder at the legacy revision (pre-negotiation).
    pub fn new() -> Self {
        Self {
            revision: WIRE_REV_LEGACY,
            next_seq: 0,
        }
    }

    /// An encoder pinned at `revision`.
    pub fn with_revision(revision: u16) -> Self {
        Self {
            revision: revision.max(WIRE_REV_LEGACY),
            next_seq: 0,
        }
    }

    /// Adopts the highest revision both sides speak: the minimum of
    /// the peer's announced version and this crate's own.
    pub fn negotiate(&mut self, peer_version: u16) {
        self.revision = peer_version.clamp(WIRE_REV_LEGACY, crate::PROTOCOL_VERSION);
    }

    /// The framing revision in force.
    pub fn revision(&self) -> u16 {
        self.revision
    }

    /// The sequence number the next integrity frame will carry.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Sets the sequence number the next integrity frame will carry.
    ///
    /// Used by the warm-resume path: a restored server adopts the
    /// continuation of the client's last-received sequence (from its
    /// resume token), so the first post-failover frame is neither a
    /// rollback (silently dropped as a duplicate) nor a gap (a
    /// spurious refresh request).
    pub fn set_next_seq(&mut self, seq: u32) {
        self.next_seq = seq;
    }

    /// Frames `msg` at the negotiated revision, consuming a sequence
    /// number for revision-2 frames.
    pub fn encode(&mut self, msg: &Message) -> Vec<u8> {
        if self.revision < WIRE_REV_INTEGRITY || is_handshake(msg) {
            encode_message(msg)
        } else {
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            encode_message_seq(msg, seq)
        }
    }
}

/// Integrity-verification counters kept by a [`FrameReader`] at
/// revision 2 (all zero at the legacy revision).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Frames rejected because their CRC32 did not match.
    pub crc_fail: u64,
    /// Forward sequence discontinuities observed (each one means at
    /// least one frame was lost or skipped).
    pub seq_gap: u64,
    /// Total frames the gaps account for (sum of gap widths).
    pub gap_frames: u64,
    /// Frames dropped as duplicates or sequence rollbacks.
    pub seq_dup: u64,
    /// Frames whose CRC verified clean.
    pub frames_verified: u64,
}

/// Incremental frame splitter: feed transport bytes in, take whole
/// messages out.
///
/// On damaged input [`next_message`](Self::next_message) returns the
/// typed [`DecodeError`]; the caller then invokes
/// [`resync`](Self::resync) to skip past the damage and keeps reading.
/// Nothing here panics on wire bytes, and buffered memory stays
/// bounded by [`MAX_FRAME_PAYLOAD`] plus one feed chunk as long as the
/// caller drains between feeds.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    revision: u16,
    last_seq: Option<u32>,
    gap_latched: bool,
    counters: IntegrityCounters,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self {
            buf: Vec::new(),
            revision: WIRE_REV_LEGACY,
            last_seq: None,
            gap_latched: false,
            counters: IntegrityCounters::default(),
        }
    }
}

impl FrameReader {
    /// An empty reader at the legacy revision.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty reader pinned at `revision`.
    pub fn with_revision(revision: u16) -> Self {
        Self {
            revision: revision.max(WIRE_REV_LEGACY),
            ..Self::default()
        }
    }

    /// Switches the framing revision this reader expects.
    ///
    /// Revision changes never happen implicitly: the session layer
    /// calls this once negotiation completes (a `ServerHello`
    /// announcing protocol version ≥ 2). Switching resets the
    /// sequence-tracking state so the first frame at the new revision
    /// is accepted at any sequence number.
    pub fn set_revision(&mut self, revision: u16) {
        let revision = revision.max(WIRE_REV_LEGACY);
        if revision != self.revision {
            self.revision = revision;
            self.last_seq = None;
        }
    }

    /// The framing revision this reader expects.
    pub fn revision(&self) -> u16 {
        self.revision
    }

    /// Integrity counters accumulated so far (all zero at the legacy
    /// revision).
    pub fn integrity(&self) -> IntegrityCounters {
        self.counters
    }

    /// The sequence number of the last integrity frame accepted, or
    /// `None` before any arrived (or at the legacy revision).
    ///
    /// This is what a client folds into its resume token: the restored
    /// server's encoder continues from here.
    pub fn last_seq(&self) -> Option<u32> {
        self.last_seq
    }

    /// Returns `true` once if a sequence discontinuity (gap) was
    /// detected since the last call, clearing the latch.
    ///
    /// A gap means frames were lost in transit even though framing
    /// stayed parseable; the session layer escalates it into a refresh
    /// request so screen state reconverges.
    pub fn take_seq_break(&mut self) -> bool {
        std::mem::take(&mut self.gap_latched)
    }

    /// Appends raw transport bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extracts the next complete message, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed. At revision 2
    /// this also verifies the frame CRC (mismatch surfaces as
    /// [`DecodeError::ChecksumMismatch`] with nothing consumed, so the
    /// caller resyncs) and tracks the sequence counter: forward gaps
    /// are delivered but latch [`take_seq_break`](Self::take_seq_break);
    /// duplicates and rollbacks are dropped silently.
    pub fn next_message(&mut self) -> Result<Option<Message>, DecodeError> {
        if self.revision >= WIRE_REV_INTEGRITY {
            return self.next_integrity();
        }
        match decode_message(&self.buf) {
            Ok((msg, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(msg))
            }
            Err(DecodeError::Truncated) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Revision-2 decode path: extended header, CRC check, sequence
    /// accounting. Handshake frames stay legacy-framed on the wire so
    /// they are special-cased before the extended header is assumed.
    fn next_integrity(&mut self) -> Result<Option<Message>, DecodeError> {
        loop {
            if self.buf.is_empty() {
                return Ok(None);
            }
            let tag = self.buf[0];
            if !known_message_tag(tag) {
                return Err(DecodeError::UnknownType(tag));
            }
            if tag == MSG_SERVER_HELLO || tag == MSG_CLIENT_HELLO || tag == MSG_SESSION_RESUME {
                // Handshake frames always use legacy framing.
                return match decode_message(&self.buf) {
                    Ok((msg, consumed)) => {
                        self.buf.drain(..consumed);
                        Ok(Some(msg))
                    }
                    Err(DecodeError::Truncated) => Ok(None),
                    Err(e) => Err(e),
                };
            }
            if self.buf.len() >= LEGACY_HEADER_LEN {
                let len = u32::from_le_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]]);
                if len > MAX_FRAME_PAYLOAD {
                    return Err(DecodeError::FrameTooLarge(len));
                }
            }
            if self.buf.len() < INTEGRITY_HEADER_LEN {
                return Ok(None);
            }
            let len = u32::from_le_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]])
                as usize;
            let total = INTEGRITY_HEADER_LEN + len;
            if self.buf.len() < total {
                return Ok(None);
            }
            let seq = u32::from_le_bytes([self.buf[5], self.buf[6], self.buf[7], self.buf[8]]);
            let stored = u32::from_le_bytes([self.buf[9], self.buf[10], self.buf[11], self.buf[12]]);
            let mut crc = crc32_update(!0, &self.buf[..9]);
            crc = crc32_update(crc, &self.buf[INTEGRITY_HEADER_LEN..total]);
            let computed = crc ^ !0;
            if computed != stored {
                self.counters.crc_fail += 1;
                // Consume nothing: the caller's resync() pass decides
                // how much of the damaged prefix to discard.
                return Err(DecodeError::ChecksumMismatch { stored, computed });
            }
            self.counters.frames_verified += 1;
            if let Some(last) = self.last_seq {
                let expected = last.wrapping_add(1);
                let delta = seq.wrapping_sub(expected);
                if delta == 0 {
                    self.last_seq = Some(seq);
                } else if delta < u32::MAX / 2 {
                    // Forward gap: frames went missing, but this one is
                    // intact — deliver it and latch the break so the
                    // session layer requests a refresh.
                    self.counters.seq_gap += 1;
                    self.counters.gap_frames += u64::from(delta);
                    self.gap_latched = true;
                    self.last_seq = Some(seq);
                } else {
                    // Duplicate or rollback: already applied (or stale
                    // retransmit) — drop the frame silently.
                    self.counters.seq_dup += 1;
                    self.buf.drain(..total);
                    continue;
                }
            } else {
                self.last_seq = Some(seq);
            }
            let msg = decode_payload(tag, &self.buf[INTEGRITY_HEADER_LEN..total])?;
            self.buf.drain(..total);
            return Ok(Some(msg));
        }
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Skips past damage to the next plausible frame boundary,
    /// returning the number of bytes discarded.
    ///
    /// Call after [`next_message`](Self::next_message) errors. The
    /// byte at the head of the buffer is known-bad and always skipped;
    /// scanning then stops at the first byte that could start a frame
    /// (known type byte, sane declared length). The heuristic can land
    /// on a false boundary inside surviving payload — the next
    /// `next_message` error sends the caller back here, and each call
    /// discards at least one byte, so the loop always terminates. The
    /// client treats everything skipped as lost screen state and asks
    /// the server for a refresh.
    pub fn resync(&mut self) -> usize {
        if self.buf.is_empty() {
            return 0;
        }
        let mut offset = 1;
        while offset < self.buf.len() && !plausible_frame_start(&self.buf[offset..]) {
            offset += 1;
        }
        self.buf.drain(..offset);
        offset
    }
}

/// Whether `buf` could begin a valid frame: known message type byte
/// and, if the length field is visible, a sane declared length.
fn plausible_frame_start(buf: &[u8]) -> bool {
    let tag_ok = known_message_tag(buf[0]);
    if !tag_ok {
        return false;
    }
    if buf.len() < 5 {
        return true;
    }
    u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) <= MAX_FRAME_PAYLOAD
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::ServerHello {
                version: 1,
                width: 1024,
                height: 768,
                depth: 24,
            },
            Message::ClientHello {
                version: 1,
                viewport_width: 320,
                viewport_height: 240,
            },
            Message::Display(DisplayCommand::Raw {
                rect: Rect::new(-3, 7, 5, 6),
                encoding: RawEncoding::PngLike,
                data: vec![1, 2, 3, 4, 5].into(),
            }),
            Message::Display(DisplayCommand::Copy {
                src_rect: Rect::new(0, 0, 100, 50),
                dst_x: 10,
                dst_y: -20,
            }),
            Message::Display(DisplayCommand::Sfill {
                rect: Rect::new(0, 0, 1024, 768),
                color: Color::rgba(1, 2, 3, 200),
            }),
            Message::Display(DisplayCommand::Pfill {
                rect: Rect::new(5, 5, 64, 64),
                tile: Tile {
                    width: 8,
                    height: 8,
                    pixels: vec![9; 8 * 8 * 3],
                },
            }),
            Message::Display(DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 16, 8),
                bits: vec![0xAA; 16],
                fg: Color::BLACK,
                bg: Some(Color::WHITE),
            }),
            Message::Display(DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 16, 8),
                bits: vec![0x55; 16],
                fg: Color::WHITE,
                bg: None,
            }),
            Message::VideoInit {
                id: 7,
                format: YuvFormat::Yv12,
                src_width: 352,
                src_height: 240,
                dst: Rect::new(0, 0, 1024, 768),
            },
            Message::VideoData {
                id: 7,
                seq: 42,
                timestamp_us: 1_750_000,
                data: vec![0x10; 100],
            },
            Message::VideoMove {
                id: 7,
                dst: Rect::new(10, 10, 320, 240),
            },
            Message::VideoEnd { id: 7 },
            Message::Audio {
                seq: 3,
                timestamp_us: 999,
                data: vec![1; 64],
            },
            Message::Input(ProtocolInput::PointerMove { x: -5, y: 900 }),
            Message::Input(ProtocolInput::ButtonPress { x: 1, y: 2, button: 3 }),
            Message::Input(ProtocolInput::ButtonRelease { x: 1, y: 2, button: 1 }),
            Message::Input(ProtocolInput::KeyPress { key: 0xFF0D }),
            Message::Input(ProtocolInput::KeyRelease { key: 65 }),
            Message::Resize {
                viewport_width: 640,
                viewport_height: 480,
            },
            Message::SetView {
                view: Rect::new(100, 50, 512, 384),
            },
            Message::CursorShape {
                width: 16,
                height: 16,
                hot_x: 1,
                hot_y: 2,
                pixels: vec![7; 16 * 16 * 4],
            },
            Message::CursorMove { x: 500, y: -3 },
            Message::Ping {
                seq: 9,
                timestamp_us: 123_456,
            },
            Message::Pong {
                seq: 9,
                timestamp_us: 123_456,
            },
            Message::RefreshRequest { attempt: 3 },
            Message::CacheRef {
                hash: 0x0123_4567_89AB_CDEF,
            },
            Message::CacheMiss {
                hash: 0xFEDC_BA98_7654_3210,
            },
            Message::SessionResume {
                session_id: 0x1122_3344_5566_7788,
                client_id: 5,
                last_seq: 0xDEAD_BEEF,
                store_digest: 0x8877_6655_4433_2211,
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let enc = encode_message(&msg);
            let (dec, used) = decode_message(&enc).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(dec, msg);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn wire_size_matches_encoding() {
        for msg in sample_messages() {
            assert_eq!(msg.wire_size(), encode_message(&msg).len() as u64);
        }
    }

    #[test]
    fn command_wire_size_close_to_encoded() {
        // DisplayCommand::wire_size is the scheduler's fast estimate;
        // it must match the encoded frame size exactly.
        for msg in sample_messages() {
            if let Message::Display(cmd) = &msg {
                assert_eq!(
                    cmd.wire_size(),
                    encode_message(&msg).len() as u64,
                    "{}",
                    cmd.name()
                );
            }
        }
    }

    #[test]
    fn truncated_frames_wait_for_more() {
        let enc = encode_message(&sample_messages()[2]);
        for cut in 0..enc.len() {
            assert_eq!(decode_message(&enc[..cut]), Err(DecodeError::Truncated));
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let bad = [0xEEu8, 0, 0, 0, 0];
        assert_eq!(decode_message(&bad), Err(DecodeError::UnknownType(0xEE)));
    }

    #[test]
    fn frame_reader_reassembles_dribbled_stream() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        // Feed one byte at a time.
        for b in stream {
            reader.feed(&[b]);
            while let Some(m) = reader.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn frame_reader_surfaces_errors() {
        let mut reader = FrameReader::new();
        reader.feed(&[0xEE, 0, 0, 0, 0]);
        assert!(reader.next_message().is_err());
    }

    #[test]
    fn absurd_declared_length_is_rejected_immediately() {
        // Tag is valid but the length field claims ~4 GiB; waiting for
        // it (Truncated) would buffer unboundedly.
        let mut bad = vec![MSG_DISPLAY];
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_message(&bad), Err(DecodeError::FrameTooLarge(u32::MAX)));
        let mut reader = FrameReader::new();
        reader.feed(&bad);
        assert!(matches!(
            reader.next_message(),
            Err(DecodeError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn resync_skips_damage_and_recovers_following_messages() {
        let msgs = sample_messages();
        let mut stream = vec![0xEE, 0xFF, 0x00, 0x99]; // Leading garbage.
        for m in &msgs {
            stream.extend(encode_message(m));
        }
        let mut reader = FrameReader::new();
        reader.feed(&stream);
        let mut got = Vec::new();
        let mut skipped = 0;
        loop {
            match reader.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(_) => skipped += reader.resync(),
            }
        }
        assert!(skipped >= 4, "{skipped}");
        // Everything after the damage is recovered.
        assert_eq!(got, msgs);
    }

    #[test]
    fn resync_terminates_on_all_garbage() {
        let mut reader = FrameReader::new();
        reader.feed(&[0xEEu8; 4096]);
        let mut iterations = 0;
        while reader.pending_bytes() >= 5 {
            if reader.next_message().is_err() {
                assert!(reader.resync() > 0);
            }
            iterations += 1;
            assert!(iterations < 10_000, "resync loop failed to make progress");
        }
    }

    #[test]
    fn ping_pong_directionality() {
        assert!(Message::Ping {
            seq: 0,
            timestamp_us: 0
        }
        .is_downstream());
        assert!(!Message::Pong {
            seq: 0,
            timestamp_us: 0
        }
        .is_downstream());
    }

    // ---- integrity framing (revision 2) ----

    fn non_handshake_samples() -> Vec<Message> {
        sample_messages()
            .into_iter()
            .filter(|m| !is_handshake(m))
            .collect()
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn integrity_round_trip_all_messages() {
        let msgs = non_handshake_samples();
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        for msg in &msgs {
            reader.feed(&enc.encode(msg));
        }
        let mut decoded = Vec::new();
        while let Some(msg) = reader.next_message().expect("clean stream decodes") {
            decoded.push(msg);
        }
        assert_eq!(decoded, msgs);
        let c = reader.integrity();
        assert_eq!(c.frames_verified, msgs.len() as u64);
        assert_eq!(c.crc_fail, 0);
        assert_eq!(c.seq_gap, 0);
        assert_eq!(c.seq_dup, 0);
        assert!(!reader.take_seq_break());
    }

    #[test]
    fn integrity_round_trip_any_fragmentation() {
        let msgs = non_handshake_samples();
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let stream: Vec<u8> = msgs.iter().flat_map(|m| enc.encode(m)).collect();
        for chunk in [1usize, 2, 3, 7, 13] {
            let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
            let mut decoded = Vec::new();
            for piece in stream.chunks(chunk) {
                reader.feed(piece);
                while let Some(msg) = reader.next_message().expect("clean stream decodes") {
                    decoded.push(msg);
                }
            }
            assert_eq!(decoded, msgs, "chunk size {chunk}");
        }
    }

    #[test]
    fn handshake_frames_stay_legacy_on_integrity_stream() {
        let hello = Message::ServerHello {
            version: crate::PROTOCOL_VERSION,
            width: 800,
            height: 600,
            depth: 24,
        };
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let bytes = enc.encode(&hello);
        // Handshake framing is byte-identical to the legacy encoding...
        assert_eq!(bytes, encode_message(&hello));
        // ...so a legacy reader decodes it (pre-negotiation bootstrap)...
        let mut legacy = FrameReader::new();
        legacy.feed(&bytes);
        assert_eq!(legacy.next_message().unwrap(), Some(hello.clone()));
        // ...and an integrity reader accepts it too.
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&bytes);
        assert_eq!(reader.next_message().unwrap(), Some(hello));
        assert_eq!(reader.integrity().frames_verified, 0);
    }

    #[test]
    fn session_resume_stays_legacy_on_integrity_stream() {
        // A resume token is a handshake message: a freshly-restored
        // server must decode it before any negotiation state exists,
        // so it never picks up integrity framing.
        let resume = Message::SessionResume {
            session_id: 42,
            client_id: 7,
            last_seq: 1000,
            store_digest: 0xABCD,
        };
        let mut enc = FrameEncoder::with_revision(WIRE_REV_CACHE);
        let bytes = enc.encode(&resume);
        assert_eq!(bytes, encode_message(&resume));
        assert_eq!(enc.next_seq(), 0, "handshake frames consume no seq");
        let mut legacy = FrameReader::new();
        legacy.feed(&bytes);
        assert_eq!(legacy.next_message().unwrap(), Some(resume.clone()));
        let mut reader = FrameReader::with_revision(WIRE_REV_CACHE);
        reader.feed(&bytes);
        assert_eq!(reader.next_message().unwrap(), Some(resume));
        assert_eq!(reader.integrity().frames_verified, 0);
    }

    #[test]
    fn encoder_seq_adoption_avoids_rollback_and_gap() {
        // A restored server adopting last_seq+1 produces a frame the
        // client's reader accepts as the exact next in sequence.
        let msg = Message::Ping {
            seq: 1,
            timestamp_us: 2,
        };
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&encode_message_seq(&msg, 41));
        assert!(reader.next_message().unwrap().is_some());
        assert_eq!(reader.last_seq(), Some(41));
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        enc.set_next_seq(reader.last_seq().unwrap().wrapping_add(1));
        reader.feed(&enc.encode(&msg));
        assert!(reader.next_message().unwrap().is_some());
        let c = reader.integrity();
        assert_eq!(c.seq_gap, 0);
        assert_eq!(c.seq_dup, 0);
        assert!(!reader.take_seq_break());
    }

    #[test]
    fn encoder_negotiation_clamps_to_supported_range() {
        let mut enc = FrameEncoder::new();
        assert_eq!(enc.revision(), WIRE_REV_LEGACY);
        enc.negotiate(0);
        assert_eq!(enc.revision(), WIRE_REV_LEGACY);
        enc.negotiate(u16::MAX);
        assert_eq!(enc.revision(), crate::PROTOCOL_VERSION);
        enc.negotiate(WIRE_REV_INTEGRITY);
        assert_eq!(enc.revision(), WIRE_REV_INTEGRITY);
    }

    #[test]
    fn cache_messages_are_compact_and_integrity_framed() {
        let msg = Message::CacheRef { hash: u64::MAX };
        // 5-byte header + 8-byte hash: a ref replaces a payload of any
        // size with 13 bytes.
        assert_eq!(encode_message(&msg).len(), LEGACY_HEADER_LEN + 8);
        // Revision 3 reuses revision-2 framing for every message.
        let mut enc = FrameEncoder::with_revision(WIRE_REV_CACHE);
        let framed = enc.encode(&msg);
        assert_eq!(framed.len(), INTEGRITY_HEADER_LEN + 8);
        let mut reader = FrameReader::with_revision(WIRE_REV_CACHE);
        reader.feed(&framed);
        assert_eq!(reader.next_message().unwrap(), Some(msg));
    }

    #[test]
    fn revision3_negotiation_and_fallback_to_older_peers() {
        // A rev-3 endpoint against a rev-3 peer lands on 3...
        let mut enc = FrameEncoder::new();
        enc.negotiate(WIRE_REV_CACHE);
        assert_eq!(enc.revision(), WIRE_REV_CACHE);
        // ...against a rev-2 peer on 2, and a rev-1 peer on 1, so the
        // cache capability is cleanly withheld from older clients.
        enc.negotiate(WIRE_REV_INTEGRITY);
        assert_eq!(enc.revision(), WIRE_REV_INTEGRITY);
        enc.negotiate(WIRE_REV_LEGACY);
        assert_eq!(enc.revision(), WIRE_REV_LEGACY);
    }

    #[test]
    fn corrupted_frame_reports_checksum_and_resync_recovers() {
        let msgs = non_handshake_samples();
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let frames: Vec<Vec<u8>> = msgs.iter().map(|m| enc.encode(m)).collect();
        // Flip a payload byte in the first frame.
        let mut stream = Vec::new();
        let mut bad = frames[0].clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        stream.extend_from_slice(&bad);
        for f in &frames[1..] {
            stream.extend_from_slice(f);
        }
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&stream);
        let mut decoded = Vec::new();
        let mut guard = 0;
        loop {
            match reader.next_message() {
                Ok(Some(msg)) => decoded.push(msg),
                // Stream over: pending bytes mean a false boundary
                // declared a length past the end of input — skip it,
                // like the client's stalled-framing path does.
                Ok(None) => {
                    if reader.pending_bytes() == 0 || reader.resync() == 0 {
                        break;
                    }
                }
                Err(_) => {
                    assert!(reader.resync() > 0);
                }
            }
            guard += 1;
            assert!(guard < 10_000, "resync loop stalled");
        }
        // The damaged frame never decodes into a wrong message; the
        // survivors all come through intact.
        assert!(reader.integrity().crc_fail >= 1);
        for msg in &decoded {
            assert!(msgs.contains(msg), "decoded a message never sent: {msg:?}");
        }
        assert!(decoded.len() >= msgs.len() - 1);
    }

    #[test]
    fn sequence_gap_delivers_and_latches() {
        let msgs = non_handshake_samples();
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let frames: Vec<Vec<u8>> = msgs.iter().map(|m| enc.encode(m)).collect();
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&frames[0]);
        // Drop frame 1 entirely; frame 2 arrives next.
        reader.feed(&frames[2]);
        assert_eq!(reader.next_message().unwrap(), Some(msgs[0].clone()));
        assert!(!reader.take_seq_break());
        assert_eq!(reader.next_message().unwrap(), Some(msgs[2].clone()));
        assert!(reader.take_seq_break(), "gap should latch");
        assert!(!reader.take_seq_break(), "latch clears after take");
        let c = reader.integrity();
        assert_eq!(c.seq_gap, 1);
        assert_eq!(c.gap_frames, 1);
    }

    #[test]
    fn duplicate_and_rollback_frames_are_dropped() {
        let msgs = non_handshake_samples();
        let mut enc = FrameEncoder::with_revision(WIRE_REV_INTEGRITY);
        let frames: Vec<Vec<u8>> = msgs.iter().map(|m| enc.encode(m)).collect();
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        // Deliver 0, 1, then 1 again (duplicate), then 0 (rollback),
        // then 2.
        for f in [&frames[0], &frames[1], &frames[1], &frames[0], &frames[2]] {
            reader.feed(f);
        }
        let mut decoded = Vec::new();
        while let Some(msg) = reader.next_message().expect("dups are silent") {
            decoded.push(msg);
        }
        assert_eq!(decoded, msgs[..3].to_vec());
        assert_eq!(reader.integrity().seq_dup, 2);
        assert!(!reader.take_seq_break(), "dups are not gaps");
    }

    #[test]
    fn sequence_wraps_without_false_gap() {
        let msg = Message::Ping {
            seq: 9,
            timestamp_us: 1,
        };
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&encode_message_seq(&msg, u32::MAX));
        reader.feed(&encode_message_seq(&msg, 0));
        assert!(reader.next_message().unwrap().is_some());
        assert!(reader.next_message().unwrap().is_some());
        assert_eq!(reader.integrity().seq_gap, 0);
        assert!(!reader.take_seq_break());
    }

    #[test]
    fn set_revision_resets_sequence_state() {
        let msg = Message::Ping {
            seq: 1,
            timestamp_us: 2,
        };
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&encode_message_seq(&msg, 7));
        assert!(reader.next_message().unwrap().is_some());
        // Simulate a reconnect: same revision object rebuilt.
        let counters = reader.integrity();
        let mut fresh = FrameReader::with_revision(reader.revision());
        fresh.feed(&encode_message_seq(&msg, 1_000_000));
        assert!(fresh.next_message().unwrap().is_some());
        assert_eq!(fresh.integrity().seq_gap, 0, "fresh reader accepts any seq");
        assert_eq!(counters.frames_verified, 1);
    }

    #[test]
    fn integrity_boundary_exact_limit_frame() {
        let payload_budget = MAX_FRAME_PAYLOAD as usize;
        // A Raw display command whose encoded payload hits the limit
        // exactly: header fields inside the payload take 27 bytes
        // (1 cmd + 16 rect + 1 encoding + 4 len + data... compute from
        // encode), so build then pad via data length arithmetic.
        let probe = Message::Display(DisplayCommand::Raw {
            rect: Rect::new(0, 0, 1, 1),
            encoding: RawEncoding::PngLike,
            data: Vec::new().into(),
        });
        let overhead = encode_message(&probe).len() - LEGACY_HEADER_LEN;
        let data_len = payload_budget - overhead;
        let msg = Message::Display(DisplayCommand::Raw {
            rect: Rect::new(0, 0, 1, 1),
            encoding: RawEncoding::PngLike,
            data: vec![0xA5; data_len].into(),
        });
        let bytes = encode_message_seq(&msg, 0);
        assert_eq!(bytes.len(), INTEGRITY_HEADER_LEN + payload_budget);
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        reader.feed(&bytes);
        assert_eq!(reader.next_message().unwrap(), Some(msg));
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn integrity_boundary_over_limit_rejected_before_buffering() {
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        let mut header = vec![MSG_DISPLAY];
        header.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        reader.feed(&header);
        assert!(matches!(
            reader.next_message(),
            Err(DecodeError::FrameTooLarge(n)) if n == MAX_FRAME_PAYLOAD + 1
        ));
    }

    #[test]
    fn integrity_boundary_truncated_header_mid_crc_waits() {
        let msg = Message::Ping {
            seq: 3,
            timestamp_us: 4,
        };
        let bytes = encode_message_seq(&msg, 5);
        let mut reader = FrameReader::with_revision(WIRE_REV_INTEGRITY);
        // 11 bytes: tag + len + seq + 2 of the 4 CRC bytes.
        reader.feed(&bytes[..11]);
        assert_eq!(reader.next_message().unwrap(), None, "mid-CRC header waits");
        assert_eq!(reader.integrity().crc_fail, 0);
        reader.feed(&bytes[11..]);
        assert_eq!(reader.next_message().unwrap(), Some(msg));
    }

    #[test]
    fn legacy_reader_unaffected_by_revision_constants() {
        // encode_message output is byte-identical to what a
        // FrameEncoder produces before negotiation.
        let msgs = sample_messages();
        let mut enc = FrameEncoder::new();
        for msg in &msgs {
            assert_eq!(enc.encode(msg), encode_message(msg));
        }
    }
}
