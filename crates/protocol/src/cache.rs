//! The content-addressed tile cache (protocol revision 3).
//!
//! Revision 3 lets the server replace a display payload the client
//! already holds with a 13-byte [`Message::CacheRef`] carrying the
//! payload's 64-bit content hash ([`crate::hash`]). Both ends keep a
//! byte-budgeted LRU over the same key space:
//!
//! - the **server ledger** maps hash → full message for every
//!   cacheable payload it has actually sent, so a ref is only ever
//!   emitted for content the client was given, and a
//!   [`Message::CacheMiss`] can be answered with the byte-exact
//!   original;
//! - the **client store** maps hash → full message for every
//!   cacheable payload it has received, so a ref resolves locally
//!   without touching the network.
//!
//! Because both sides insert the same entries, in the same order, with
//! the same sizes, under the same budget, the two LRUs evict in
//! lockstep; divergence (loss, a fresh client against a warm ledger)
//! is repaired by the miss → full-payload fallback path. The
//! consistency argument and its property tests live in
//! `docs/CACHE.md`.

use std::collections::{HashMap, VecDeque};

use crate::message::Message;

/// Default cache byte budget used by both the server ledger and the
/// client store (4 MiB — a few screenfuls of compressed tiles).
///
/// The eviction mirror between ledger and store depends on both sides
/// using the *same* budget; deployments that change one side must
/// change the other, or pay for the divergence in miss round trips.
pub const DEFAULT_CACHE_BUDGET: u64 = 4 * 1024 * 1024;

/// Minimum encoded message size worth caching, in bytes.
///
/// A `CacheRef` costs 13 payload bytes on the wire; referencing
/// anything smaller than this floor would save little and churn the
/// LRU. Both sides apply the same floor via [`cache_key`], keeping
/// their notion of "cacheable" identical.
pub const CACHE_MIN_PAYLOAD: usize = 64;

/// The cache key for `msg` given its encoded (revision-1 framed)
/// bytes, or `None` if the message is not cacheable.
///
/// Only pixel-bearing display commands are cacheable — `RAW`, `PFILL`
/// and `BITMAP` — and only when the encoded message meets
/// [`CACHE_MIN_PAYLOAD`]. `COPY` and `SFILL` are already near-minimal
/// on the wire, and non-display traffic (video, audio, control) has
/// its own delivery semantics. The hash covers the *final* encoded
/// bytes, after any RAW compression, so the server's flush-time view
/// and the client's receive-time view agree byte-for-byte.
pub fn cache_key(msg: &Message, encoded: &[u8]) -> Option<u64> {
    use crate::commands::DisplayCommand;
    let candidate = matches!(
        msg,
        Message::Display(
            DisplayCommand::Raw { .. }
                | DisplayCommand::Pfill { .. }
                | DisplayCommand::Bitmap { .. }
        )
    );
    if candidate && encoded.len() >= CACHE_MIN_PAYLOAD {
        Some(crate::hash::fnv64(encoded))
    } else {
        None
    }
}

/// FNV-1a digest over a sorted key set, used by the session-resume
/// handshake to prove ledger/store coherence.
///
/// The client computes this over its store's sorted keys and carries
/// it in `MSG_SESSION_RESUME`; the server computes the same digest
/// over the checkpointed ledger's sorted keys. A match means the
/// mirrored-LRU invariant survived the failover and cache refs can
/// keep flowing; a mismatch forces the cold-reconnect path, which
/// clears both sides. `keys` must already be sorted ascending (the
/// order [`CacheLru::keys`] returns).
pub fn store_digest(sorted_keys: &[u64]) -> u64 {
    let mut state = crate::hash::fnv64(&[]);
    for k in sorted_keys {
        state = crate::hash::fnv64_update(state, &k.to_le_bytes());
    }
    state
}

/// A byte-budgeted LRU keyed by 64-bit content hash.
///
/// Used as both the server-side per-client ledger and the client-side
/// store, parameterized by the value kept per entry. Eviction is
/// strictly deterministic — least-recently-used first, driven only by
/// the insert/touch sequence — which is what lets the two sides stay
/// mirrored without any coordination traffic.
#[derive(Debug, Clone, Default)]
pub struct CacheLru<V> {
    budget: u64,
    used: u64,
    /// Keys from least- (front) to most-recently-used (back).
    order: VecDeque<u64>,
    entries: HashMap<u64, (u64, V)>,
    evictions: u64,
}

impl<V> CacheLru<V> {
    /// An empty cache with the given byte budget.
    pub fn new(budget: u64) -> Self {
        Self {
            budget,
            used: 0,
            order: VecDeque::new(),
            entries: HashMap::new(),
            evictions: 0,
        }
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently accounted to entries.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is held (does not touch LRU order).
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Total entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, bumping it to most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        if self.entries.contains_key(&key) {
            self.bump(key);
        }
        self.entries.get(&key).map(|(_, v)| v)
    }

    /// Looks up `key` without touching LRU order.
    pub fn peek(&self, key: u64) -> Option<&V> {
        self.entries.get(&key).map(|(_, v)| v)
    }

    /// Bumps `key` to most-recently-used; returns whether it was held.
    pub fn touch(&mut self, key: u64) -> bool {
        if self.entries.contains_key(&key) {
            self.bump(key);
            true
        } else {
            false
        }
    }

    /// Inserts (or refreshes) `key` at `size` bytes, evicting
    /// least-recently-used entries as needed to stay within budget.
    /// Returns the number of entries evicted. An entry larger than the
    /// whole budget is not inserted at all (both sides apply the same
    /// rule, so neither ever expects the other to hold it).
    pub fn insert(&mut self, key: u64, size: u64, value: V) -> u64 {
        if size > self.budget {
            return 0;
        }
        if let Some((old_size, _)) = self.entries.remove(&key) {
            self.used -= old_size;
            self.order.retain(|&k| k != key);
        }
        let mut evicted = 0;
        while self.used + size > self.budget {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if let Some((victim_size, _)) = self.entries.remove(&victim) {
                self.used -= victim_size;
                self.evictions += 1;
                evicted += 1;
            }
        }
        self.used += size;
        self.order.push_back(key);
        self.entries.insert(key, (size, value));
        evicted
    }

    /// Every held key, sorted ascending (not LRU order). The stable
    /// ordering lets two mirrored caches — the server's per-client
    /// ledger and the client's store — be compared for coherence.
    pub fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Every held entry from least- to most-recently-used, as
    /// `(key, size, value)`.
    ///
    /// This is the serialization order for checkpoints: replaying the
    /// iteration through [`insert`](Self::insert) reconstructs not
    /// just the key set but the exact eviction order, so a restored
    /// ledger keeps evicting in lockstep with the live client store.
    pub fn iter_lru(&self) -> impl Iterator<Item = (u64, u64, &V)> + '_ {
        self.order.iter().filter_map(move |&k| {
            self.entries.get(&k).map(|(size, v)| (k, *size, v))
        })
    }

    /// Drops every entry (budget and lifetime eviction count remain).
    pub fn clear(&mut self) {
        self.used = 0;
        self.order.clear();
        self.entries.clear();
    }

    fn bump(&mut self, key: u64) {
        self.order.retain(|&k| k != key);
        self.order.push_back(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{DisplayCommand, RawEncoding};
    use thinc_raster::{Color, Rect};

    #[test]
    fn insert_get_touch() {
        let mut c: CacheLru<u32> = CacheLru::new(100);
        assert_eq!(c.insert(1, 40, 10), 0);
        assert_eq!(c.insert(2, 40, 20), 0);
        assert_eq!(c.get(1), Some(&10));
        assert!(c.contains(2));
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c: CacheLru<u32> = CacheLru::new(100);
        c.insert(1, 40, 10);
        c.insert(2, 40, 20);
        // Touch 1 so 2 becomes LRU.
        assert!(c.touch(1));
        assert_eq!(c.insert(3, 40, 30), 1);
        assert!(c.contains(1));
        assert!(!c.contains(2), "LRU entry evicted");
        assert!(c.contains(3));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn oversized_entry_never_inserted() {
        let mut c: CacheLru<u32> = CacheLru::new(100);
        c.insert(1, 40, 10);
        assert_eq!(c.insert(2, 101, 20), 0);
        assert!(!c.contains(2));
        assert!(c.contains(1), "oversized insert evicts nothing");
    }

    #[test]
    fn reinsert_updates_size_without_leak() {
        let mut c: CacheLru<u32> = CacheLru::new(100);
        c.insert(1, 60, 10);
        c.insert(1, 30, 11);
        assert_eq!(c.used_bytes(), 30);
        assert_eq!(c.get(1), Some(&11));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn mirrored_sequences_stay_mirrored() {
        // The consistency model in one test: identical insert/touch
        // sequences against identical budgets hold identical key sets.
        let ops: Vec<(u64, u64)> = (0..200).map(|i| (i % 37, 64 + (i % 7) * 32)).collect();
        let mut a: CacheLru<()> = CacheLru::new(2048);
        let mut b: CacheLru<()> = CacheLru::new(2048);
        for &(key, size) in &ops {
            a.insert(key, size, ());
            b.insert(key, size, ());
            assert_eq!(a.used_bytes(), b.used_bytes());
            assert_eq!(a.evictions(), b.evictions());
            for probe in 0..37 {
                assert_eq!(a.contains(probe), b.contains(probe));
            }
        }
    }

    #[test]
    fn iter_lru_replay_reconstructs_eviction_order() {
        let mut original: CacheLru<u32> = CacheLru::new(200);
        original.insert(1, 50, 10);
        original.insert(2, 50, 20);
        original.insert(3, 50, 30);
        original.touch(1); // LRU order is now 2, 3, 1.
        let mut replayed: CacheLru<u32> = CacheLru::new(original.budget());
        for (k, size, v) in original.iter_lru() {
            replayed.insert(k, size, *v);
        }
        assert_eq!(replayed.keys(), original.keys());
        assert_eq!(replayed.used_bytes(), original.used_bytes());
        // Same eviction order: one more insert evicts the same victim.
        original.insert(4, 120, 40);
        replayed.insert(4, 120, 40);
        assert_eq!(replayed.keys(), original.keys());
    }

    #[test]
    fn cache_key_selects_pixel_bearing_commands_over_the_floor() {
        let raw = Message::Display(DisplayCommand::Raw {
            rect: Rect::new(0, 0, 8, 8),
            encoding: RawEncoding::None,
            data: vec![7; 8 * 8 * 3].into(),
        });
        let enc = crate::wire::encode_message(&raw);
        assert!(cache_key(&raw, &enc).is_some());
        // Deterministic: same bytes, same key.
        assert_eq!(cache_key(&raw, &enc), cache_key(&raw, &enc));

        let tiny = Message::Display(DisplayCommand::Raw {
            rect: Rect::new(0, 0, 2, 2),
            encoding: RawEncoding::None,
            data: vec![7; 12].into(),
        });
        let enc = crate::wire::encode_message(&tiny);
        assert!(cache_key(&tiny, &enc).is_none(), "below the size floor");

        let sfill = Message::Display(DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 1024, 768),
            color: Color::WHITE,
        });
        let enc = crate::wire::encode_message(&sfill);
        assert!(cache_key(&sfill, &enc).is_none(), "SFILL is never cached");
    }
}
