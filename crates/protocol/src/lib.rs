#![warn(missing_docs)]
//! The THINC remote display protocol.
//!
//! THINC encodes all display updates with five low-level commands
//! (Table 1 of the paper) that mirror the video-driver interface and
//! map directly onto client 2D hardware:
//!
//! | Command  | Description                                        |
//! |----------|----------------------------------------------------|
//! | `RAW`    | Display raw pixel data at a given location         |
//! | `COPY`   | Copy frame buffer area to specified coordinates    |
//! | `SFILL`  | Fill an area with a given pixel color value        |
//! | `PFILL`  | Tile an area with a given pixel pattern            |
//! | `BITMAP` | Fill a region using a bitmap image                 |
//!
//! All commands carry 24-bit color plus alpha. `RAW` is the only
//! command that may be compressed. Additional message types carry
//! video streams (YUV data for the client's hardware scaler), audio,
//! input events, and session control (handshake, viewport resize).
//!
//! - [`commands`]: the display command objects and their wire sizes,
//! - [`message`]: the full protocol message set,
//! - [`wire`]: binary encoding/decoding with length-prefixed framing,
//! - [`telemetry`]: classification of messages for per-command
//!   metrics (`thinc-telemetry`).

pub mod commands;
pub mod message;
pub mod telemetry;
pub mod wire;

pub use commands::{DisplayCommand, RawEncoding, Tile};
pub use message::{Message, ProtocolInput};
pub use wire::{decode_message, encode_message, DecodeError, FrameReader};

/// Protocol version implemented by this crate.
pub const PROTOCOL_VERSION: u16 = 1;
