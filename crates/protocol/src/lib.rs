#![warn(missing_docs)]
//! The THINC remote display protocol.
//!
//! THINC encodes all display updates with five low-level commands
//! (Table 1 of the paper) that mirror the video-driver interface and
//! map directly onto client 2D hardware:
//!
//! | Command  | Description                                        |
//! |----------|----------------------------------------------------|
//! | `RAW`    | Display raw pixel data at a given location         |
//! | `COPY`   | Copy frame buffer area to specified coordinates    |
//! | `SFILL`  | Fill an area with a given pixel color value        |
//! | `PFILL`  | Tile an area with a given pixel pattern            |
//! | `BITMAP` | Fill a region using a bitmap image                 |
//!
//! All commands carry 24-bit color plus alpha. `RAW` is the only
//! command that may be compressed. Additional message types carry
//! video streams (YUV data for the client's hardware scaler), audio,
//! input events, and session control (handshake, viewport resize).
//!
//! - [`commands`]: the display command objects and their wire sizes,
//! - [`message`]: the full protocol message set,
//! - [`wire`]: binary encoding/decoding with length-prefixed framing,
//! - [`hash`]: the hand-rolled FNV-1a 64 content hash,
//! - [`cache`]: the content-addressed tile cache (revision 3) — the
//!   shared LRU used as server ledger and client store,
//! - [`telemetry`]: classification of messages for per-command
//!   metrics (`thinc-telemetry`).
//!
//! The wire-format reference is `docs/PROTOCOL.md`; the cache design
//! doc is `docs/CACHE.md`.

pub mod cache;
pub mod commands;
pub mod hash;
pub mod message;
pub mod payload;
pub mod telemetry;
pub mod wire;

pub use cache::{store_digest, CacheLru, CACHE_MIN_PAYLOAD, DEFAULT_CACHE_BUDGET};
pub use commands::{DisplayCommand, RawEncoding, Tile};
pub use payload::Bytes;
pub use hash::fnv64;
pub use message::{Message, ProtocolInput};
pub use wire::{
    crc32, decode_message, encode_message, encode_message_seq, DecodeError, FrameEncoder,
    FrameReader, IntegrityCounters, WIRE_REV_CACHE, WIRE_REV_INTEGRITY, WIRE_REV_LEGACY,
};

/// Protocol version implemented by this crate.
///
/// Version 2 added the integrity wire framing: every non-handshake
/// frame carries a sequence number and CRC32 in an extended header
/// (see [`wire`]). Version 3 keeps that framing byte-for-byte and adds
/// the content-addressed cache capability (see [`cache`]): a server
/// may replace a display payload the client already holds with a
/// compact [`Message::CacheRef`], and the client may answer an
/// unresolved reference with [`Message::CacheMiss`]. Handshake frames
/// keep version-1 framing at every revision so negotiation itself
/// never depends on the outcome of negotiation.
pub const PROTOCOL_VERSION: u16 = 3;
