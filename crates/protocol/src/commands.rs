//! THINC display command objects.
//!
//! These are the five protocol commands of Table 1. Each knows its
//! wire size — the quantity THINC's Shortest-Remaining-Size-First
//! scheduler sorts on ("the size of a command refers to its size in
//! bytes, not its size in terms of the number of pixels it updates",
//! §5) — and its destination rectangle, which the command queues use
//! for overlap analysis.

use crate::payload::Bytes;
use thinc_raster::{Color, Rect};

/// How a `RAW` command's pixel payload is encoded on the wire.
///
/// `RAW` "is the only command that may be compressed to mitigate its
/// impact on the network" (§3); the prototype uses PNG (§7), modeled
/// here by the from-scratch PNG-like pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RawEncoding {
    /// Uncompressed pixels.
    None,
    /// PNG-like (filter + LZSS) compressed pixels.
    PngLike,
}

/// A pixel tile for `PFILL`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Tile width in pixels.
    pub width: u32,
    /// Tile height in pixels.
    pub height: u32,
    /// Tightly packed pixel bytes in the session pixel format.
    pub pixels: Vec<u8>,
}

/// One THINC protocol display command.
#[derive(Debug, Clone, PartialEq)]
pub enum DisplayCommand {
    /// Display raw pixel data at a given location.
    Raw {
        /// Destination rectangle.
        rect: Rect,
        /// Payload encoding.
        encoding: RawEncoding,
        /// Pixel payload (possibly compressed), `Arc`-shared so a
        /// broadcast fan-out clones references, not bytes.
        data: Bytes,
    },
    /// Copy a framebuffer area to the specified coordinates — pure
    /// client-side operation, nearly free on the wire.
    Copy {
        /// Source rectangle in the client's framebuffer.
        src_rect: Rect,
        /// Destination origin x.
        dst_x: i32,
        /// Destination origin y.
        dst_y: i32,
    },
    /// Fill an area with a single color.
    Sfill {
        /// Destination rectangle.
        rect: Rect,
        /// Fill color (24-bit + alpha).
        color: Color,
    },
    /// Tile an area with a pixel pattern.
    Pfill {
        /// Destination rectangle.
        rect: Rect,
        /// The pattern to replicate.
        tile: Tile,
    },
    /// Fill a region through a 1-bit stipple with fg/bg colors.
    Bitmap {
        /// Destination rectangle.
        rect: Rect,
        /// Row-major bitmap, rows padded to bytes, MSB leftmost.
        bits: Vec<u8>,
        /// Color for 1 bits.
        fg: Color,
        /// Color for 0 bits; `None` = transparent (leave destination).
        bg: Option<Color>,
    },
}

/// Fixed per-command header overhead on the wire (message type byte +
/// length prefix + command type byte).
pub const COMMAND_HEADER_BYTES: u64 = 6;

/// Bytes of a serialized rectangle.
const RECT_BYTES: u64 = 16;
/// Bytes of a serialized color.
const COLOR_BYTES: u64 = 4;

impl DisplayCommand {
    /// The on-screen rectangle this command writes.
    pub fn dest_rect(&self) -> Rect {
        match self {
            DisplayCommand::Raw { rect, .. }
            | DisplayCommand::Sfill { rect, .. }
            | DisplayCommand::Pfill { rect, .. }
            | DisplayCommand::Bitmap { rect, .. } => *rect,
            DisplayCommand::Copy {
                src_rect,
                dst_x,
                dst_y,
            } => Rect::new(*dst_x, *dst_y, src_rect.w, src_rect.h),
        }
    }

    /// The wire size of the command in bytes — the SRSF scheduling key.
    pub fn wire_size(&self) -> u64 {
        COMMAND_HEADER_BYTES
            + match self {
                DisplayCommand::Raw { data, .. } => RECT_BYTES + 1 + 4 + data.len() as u64,
                DisplayCommand::Copy { .. } => RECT_BYTES + 8,
                DisplayCommand::Sfill { .. } => RECT_BYTES + COLOR_BYTES,
                DisplayCommand::Pfill { tile, .. } => {
                    RECT_BYTES + 8 + 4 + tile.pixels.len() as u64
                }
                DisplayCommand::Bitmap { bits, bg, .. } => {
                    RECT_BYTES + COLOR_BYTES + 1 + bg.map_or(0, |_| COLOR_BYTES) + 4 + bits.len() as u64
                }
            }
    }

    /// Short command name, for traces and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DisplayCommand::Raw { .. } => "RAW",
            DisplayCommand::Copy { .. } => "COPY",
            DisplayCommand::Sfill { .. } => "SFILL",
            DisplayCommand::Pfill { .. } => "PFILL",
            DisplayCommand::Bitmap { .. } => "BITMAP",
        }
    }

    /// Translates the command's destination by `(dx, dy)` — used when
    /// offscreen command queues are copied between regions (§4.1).
    pub fn translate(&mut self, dx: i32, dy: i32) {
        match self {
            DisplayCommand::Raw { rect, .. }
            | DisplayCommand::Sfill { rect, .. }
            | DisplayCommand::Pfill { rect, .. }
            | DisplayCommand::Bitmap { rect, .. } => *rect = rect.translated(dx, dy),
            DisplayCommand::Copy {
                src_rect,
                dst_x,
                dst_y,
            } => {
                *src_rect = src_rect.translated(dx, dy);
                *dst_x += dx;
                *dst_y += dy;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(w: u32, h: u32) -> DisplayCommand {
        DisplayCommand::Raw {
            rect: Rect::new(0, 0, w, h),
            encoding: RawEncoding::None,
            data: vec![0; (w * h * 3) as usize].into(),
        }
    }

    #[test]
    fn dest_rects() {
        assert_eq!(raw(4, 4).dest_rect(), Rect::new(0, 0, 4, 4));
        let copy = DisplayCommand::Copy {
            src_rect: Rect::new(10, 10, 5, 6),
            dst_x: 20,
            dst_y: 30,
        };
        assert_eq!(copy.dest_rect(), Rect::new(20, 30, 5, 6));
    }

    #[test]
    fn wire_sizes_ordering() {
        // SFILL and COPY are tiny; RAW scales with payload.
        let sfill = DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 1000, 1000),
            color: Color::WHITE,
        };
        let copy = DisplayCommand::Copy {
            src_rect: Rect::new(0, 0, 1000, 1000),
            dst_x: 0,
            dst_y: 0,
        };
        let big_raw = raw(100, 100);
        assert!(sfill.wire_size() < 40);
        assert!(copy.wire_size() < 40);
        assert!(big_raw.wire_size() > 30_000);
        // A fullscreen SFILL is cheaper than a 10x10 RAW.
        assert!(sfill.wire_size() < raw(10, 10).wire_size());
    }

    #[test]
    fn bitmap_wire_size_counts_bits_not_pixels() {
        let bm = DisplayCommand::Bitmap {
            rect: Rect::new(0, 0, 64, 8),
            bits: vec![0; 64],
            fg: Color::BLACK,
            bg: None,
        };
        // 64x8 = 512 pixels would be 1536 RAW bytes; bitmap is ~90.
        assert!(bm.wire_size() < 100);
    }

    #[test]
    fn names() {
        assert_eq!(raw(1, 1).name(), "RAW");
        assert_eq!(
            DisplayCommand::Pfill {
                rect: Rect::new(0, 0, 2, 2),
                tile: Tile {
                    width: 1,
                    height: 1,
                    pixels: vec![0, 0, 0]
                }
            }
            .name(),
            "PFILL"
        );
    }

    #[test]
    fn translate_moves_dest() {
        let mut c = raw(4, 4);
        c.translate(10, 20);
        assert_eq!(c.dest_rect(), Rect::new(10, 20, 4, 4));
        let mut copy = DisplayCommand::Copy {
            src_rect: Rect::new(0, 0, 2, 2),
            dst_x: 5,
            dst_y: 5,
        };
        copy.translate(1, 1);
        assert_eq!(copy.dest_rect(), Rect::new(6, 6, 2, 2));
    }
}
