//! Property tests: every codec round-trips arbitrary byte strings,
//! and RC4 en/decryption is an involution at matching stream offsets.

use proptest::prelude::*;
use thinc_compress::{Codec, Rc4};

fn codecs(bpp: usize, stride: usize) -> Vec<Codec> {
    vec![
        Codec::None,
        Codec::Rle,
        Codec::PixelRle { bpp },
        Codec::Lzss,
        Codec::PngLike { bpp, stride },
        Codec::Huffman,
        Codec::DeflateLike { bpp, stride },
    ]
}

proptest! {
    #[test]
    fn codecs_round_trip_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        for codec in codecs(3, 60) {
            let compressed = codec.compress(&data);
            let restored = codec.decompress(&compressed);
            prop_assert_eq!(restored.as_deref(), Some(&data[..]), "{:?}", codec);
        }
    }

    #[test]
    fn codecs_round_trip_runny_bytes(
        runs in prop::collection::vec((any::<u8>(), 1usize..300), 1..20)
    ) {
        let data: Vec<u8> = runs
            .iter()
            .flat_map(|&(b, n)| std::iter::repeat(b).take(n))
            .collect();
        for codec in codecs(4, 128) {
            let compressed = codec.compress(&data);
            let restored = codec.decompress(&compressed);
            prop_assert_eq!(restored.as_deref(), Some(&data[..]), "{:?}", codec);
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        for codec in codecs(3, 48) {
            // Any result is fine; panics and hangs are not.
            let _ = codec.decompress(&garbage);
        }
    }

    #[test]
    fn rc4_involution(key in prop::collection::vec(any::<u8>(), 1..64),
                      msg in prop::collection::vec(any::<u8>(), 0..1024),
                      prefix in 0usize..256) {
        let mut enc = Rc4::new(&key);
        let mut dec = Rc4::new(&key);
        // Advance both streams by the same prefix.
        let mut skip = vec![0u8; prefix];
        enc.apply(&mut skip);
        let mut skip2 = vec![0u8; prefix];
        dec.apply(&mut skip2);
        let mut buf = msg.clone();
        enc.apply(&mut buf);
        dec.apply(&mut buf);
        prop_assert_eq!(buf, msg);
    }

    #[test]
    fn rc4_keystream_is_key_dependent(msg in prop::collection::vec(1u8..255, 16..64)) {
        let a = Rc4::new(b"key-a").process(&msg);
        let b = Rc4::new(b"key-b").process(&msg);
        prop_assert_ne!(a, b);
    }
}
