//! Encoder equality: the word-scanning RLE/LZSS encoders must emit
//! **identical bytes** to the retained byte-at-a-time references in
//! `thinc_compress::reference` (not merely a stream that decodes to
//! the same input), and the scratch-buffer API must match the
//! allocating API for every codec.

use proptest::prelude::*;
use thinc_compress::{lzss, pnglike, reference, rle, Codec, Scratch};

/// Mixed content: random runs plus literal noise, the worst case for
/// a run scanner's boundary conditions.
fn runny_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        (any::<u8>(), 1usize..40, any::<bool>()),
        0..40,
    )
    .prop_map(|chunks| {
        let mut out = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for (b, n, run) in chunks {
            if run {
                out.extend(std::iter::repeat_n(b, n));
            } else {
                for _ in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    out.push((x >> 33) as u8);
                }
            }
        }
        out
    })
}

proptest! {
    #[test]
    fn rle_encoder_matches_reference(data in runny_bytes()) {
        prop_assert_eq!(rle::compress(&data), reference::rle_compress(&data));
    }

    #[test]
    fn rle_encoder_matches_reference_random(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(rle::compress(&data), reference::rle_compress(&data));
    }

    #[test]
    fn symbol_rle_encoder_matches_reference(data in runny_bytes(), sym in 1usize..6) {
        prop_assert_eq!(
            rle::compress_symbols(&data, sym),
            reference::rle_compress_symbols(&data, sym)
        );
    }

    #[test]
    fn lzss_encoder_matches_reference(data in runny_bytes()) {
        prop_assert_eq!(lzss::compress(&data), reference::lzss_compress(&data));
    }

    #[test]
    fn lzss_encoder_matches_reference_random(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(lzss::compress(&data), reference::lzss_compress(&data));
    }

    #[test]
    fn pnglike_encoder_matches_reference(data in runny_bytes()) {
        prop_assert_eq!(
            pnglike::compress(&data, 3, 60),
            reference::pnglike_compress(&data, 3, 60)
        );
    }

    #[test]
    fn scratch_api_matches_allocating_api(data in prop::collection::vec(any::<u8>(), 0..1536)) {
        // One scratch reused across all codecs and inputs — exactly the
        // flush-path usage pattern.
        let mut scratch = Scratch::new();
        for codec in [
            Codec::None,
            Codec::Rle,
            Codec::PixelRle { bpp: 3 },
            Codec::Lzss,
            Codec::PngLike { bpp: 3, stride: 60 },
            Codec::Huffman,
            Codec::DeflateLike { bpp: 3, stride: 60 },
        ] {
            let alloc = codec.compress(&data);
            let scratched = codec.compress_with(&data, &mut scratch);
            prop_assert_eq!(&alloc[..], scratched, "{:?}", codec);
            // And the stream still round-trips.
            prop_assert_eq!(codec.decompress(&alloc).as_deref(), Some(&data[..]), "{:?}", codec);
        }
    }
}
