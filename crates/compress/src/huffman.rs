//! Canonical Huffman coding over bytes.
//!
//! Together with [`crate::lzss`] and [`crate::filter`], this
//! completes a DEFLATE-class pipeline (dictionary coder + entropy
//! coder + predictive filters) — the "better compression algorithms
//! such as used in NX" that §8.3 credits for large-image pages.
//!
//! Format: a 257-entry code-length table (for bytes 0–255 plus an
//! end-of-block symbol), 4 bits per entry, followed by the MSB-first
//! bitstream terminated by the EOB code. Code lengths are limited to
//! 15 bits by iterative frequency flattening; codes are canonical, so
//! the table fully determines them.

/// End-of-block symbol index.
const EOB: usize = 256;
/// Number of symbols (bytes + EOB).
const SYMBOLS: usize = 257;
/// Maximum code length (fits the 4-bit table entries).
const MAX_BITS: usize = 15;

/// Computes code lengths with a heap-built Huffman tree, flattening
/// frequencies until every code fits in [`MAX_BITS`].
fn code_lengths(freqs: &[u64; SYMBOLS]) -> [u8; SYMBOLS] {
    let mut f = *freqs;
    loop {
        let lens = tree_lengths(&f);
        if lens.iter().all(|&l| (l as usize) <= MAX_BITS) {
            return lens;
        }
        // Flatten: halving (and flooring at 1) reduces depth spread.
        for v in f.iter_mut() {
            if *v > 0 {
                *v = v.div_ceil(2);
            }
        }
    }
}

fn tree_lengths(freqs: &[u64; SYMBOLS]) -> [u8; SYMBOLS] {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(Clone)]
    enum Node {
        Leaf(usize),
        Internal(Box<Node>, Box<Node>),
    }
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let mut nodes: Vec<Node> = Vec::new();
    for (sym, &fr) in freqs.iter().enumerate() {
        if fr > 0 {
            nodes.push(Node::Leaf(sym));
            heap.push(Reverse((fr, sym, nodes.len() - 1)));
        }
    }
    let mut lens = [0u8; SYMBOLS];
    match heap.len() {
        0 => return lens,
        1 => {
            let Reverse((_, sym, _)) = heap.peek().copied().expect("one element");
            lens[sym] = 1;
            return lens;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let Reverse((fa, ta, ia)) = heap.pop().expect("len > 1");
        let Reverse((fb, _tb, ib)) = heap.pop().expect("len > 1");
        let merged = Node::Internal(
            Box::new(nodes[ia].clone()),
            Box::new(nodes[ib].clone()),
        );
        nodes.push(merged);
        heap.push(Reverse((fa + fb, ta, nodes.len() - 1)));
    }
    let Reverse((_, _, root)) = heap.pop().expect("root");
    // Walk the tree to assign depths.
    fn walk(node: &Node, depth: u8, lens: &mut [u8; SYMBOLS]) {
        match node {
            Node::Leaf(sym) => lens[*sym] = depth.max(1),
            Node::Internal(a, b) => {
                walk(a, depth + 1, lens);
                walk(b, depth + 1, lens);
            }
        }
    }
    walk(&nodes[root], 0, &mut lens);
    lens
}

/// Assigns canonical codes (symbol order within each length).
fn canonical_codes(lens: &[u8; SYMBOLS]) -> [u32; SYMBOLS] {
    let mut bl_count = [0u32; MAX_BITS + 1];
    for &l in lens.iter() {
        bl_count[l as usize] += 1;
    }
    bl_count[0] = 0;
    let mut next_code = [0u32; MAX_BITS + 2];
    let mut code = 0u32;
    for bits in 1..=MAX_BITS {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = [0u32; SYMBOLS];
    for (sym, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[sym] = next_code[l as usize];
            next_code[l as usize] += 1;
        }
    }
    codes
}

struct BitWriter {
    out: Vec<u8>,
    bit: u8,
}

impl BitWriter {
    fn new(out: Vec<u8>) -> Self {
        Self { out, bit: 0 }
    }
    fn put(&mut self, code: u32, len: u8) {
        for i in (0..len).rev() {
            if self.bit == 0 {
                self.out.push(0);
            }
            let byte = self.out.last_mut().expect("pushed above");
            if (code >> i) & 1 == 1 {
                *byte |= 0x80 >> self.bit;
            }
            self.bit = (self.bit + 1) % 8;
        }
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, bit: 0 }
    }
    fn next(&mut self) -> Option<bool> {
        let byte = *self.data.get(self.pos)?;
        let v = (byte >> (7 - self.bit)) & 1 == 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Some(v)
    }
}

/// Compresses `data` with canonical Huffman coding.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; SYMBOLS];
    for &b in data {
        freqs[b as usize] += 1;
    }
    freqs[EOB] = 1;
    let lens = code_lengths(&freqs);
    let codes = canonical_codes(&lens);
    // Header: 257 nibbles of code lengths.
    let mut out = Vec::with_capacity(SYMBOLS / 2 + data.len() / 2 + 8);
    let mut i = 0;
    while i < SYMBOLS {
        let hi = lens[i] & 0xF;
        let lo = if i + 1 < SYMBOLS { lens[i + 1] & 0xF } else { 0 };
        out.push((hi << 4) | lo);
        i += 2;
    }
    let mut w = BitWriter::new(out);
    for &b in data {
        w.put(codes[b as usize], lens[b as usize]);
    }
    w.put(codes[EOB], lens[EOB]);
    w.out
}

/// Decompresses Huffman data; returns `None` on malformed input.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    let header_bytes = SYMBOLS.div_ceil(2);
    if data.len() < header_bytes {
        return None;
    }
    let mut lens = [0u8; SYMBOLS];
    for i in 0..SYMBOLS {
        let byte = data[i / 2];
        lens[i] = if i % 2 == 0 { byte >> 4 } else { byte & 0xF };
    }
    if lens[EOB] == 0 {
        return None;
    }
    let codes = canonical_codes(&lens);
    // Decode bit by bit against (code, len) pairs via a length-indexed
    // lookup: for each length, the canonical code range and the first
    // symbol index in canonical order.
    let mut by_len: Vec<Vec<(u32, usize)>> = vec![Vec::new(); MAX_BITS + 1];
    for sym in 0..SYMBOLS {
        if lens[sym] > 0 {
            by_len[lens[sym] as usize].push((codes[sym], sym));
        }
    }
    for v in by_len.iter_mut() {
        v.sort_unstable();
    }
    let mut r = BitReader::new(&data[header_bytes..]);
    let mut out = Vec::new();
    loop {
        let mut code = 0u32;
        let mut len = 0usize;
        let sym = loop {
            let bit = r.next()?;
            code = (code << 1) | bit as u32;
            len += 1;
            if len > MAX_BITS {
                return None;
            }
            if let Ok(idx) = by_len[len].binary_search_by_key(&code, |&(c, _)| c) {
                break by_len[len][idx].1;
            }
        };
        if sym == EOB {
            return Some(out);
        }
        out.push(sym as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_text() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(10);
        let c = compress(&data);
        assert!(c.len() < data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn round_trip_empty_and_tiny() {
        for d in [&b""[..], b"a", b"ab", b"\x00\xff"] {
            assert_eq!(decompress(&compress(d)).unwrap(), d);
        }
    }

    #[test]
    fn round_trip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(2000).collect();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn skewed_distribution_compresses_hard() {
        // 95% zeros: entropy ~0.3 bits/byte.
        let mut data = vec![0u8; 10_000];
        for i in (0..data.len()).step_by(20) {
            data[i] = (i % 255) as u8;
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 3, "{} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn uniform_random_barely_expands() {
        let mut x = 9u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        // Header (129 B) + ~8 bits/byte.
        assert!(c.len() < data.len() + 200);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_input_rejected() {
        let c = compress(b"hello world hello world");
        assert_eq!(decompress(&c[..50]), None);
        assert_eq!(decompress(&[]), None);
    }

    #[test]
    fn garbage_does_not_panic() {
        let mut x = 77u64;
        for len in [0usize, 1, 128, 129, 200, 400] {
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) as u8
                })
                .collect();
            let _ = decompress(&garbage);
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freqs = [0u64; SYMBOLS];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = (i as u64 % 17) + 1;
        }
        let lens = code_lengths(&freqs);
        let codes = canonical_codes(&lens);
        for a in 0..SYMBOLS {
            for b in 0..SYMBOLS {
                if a == b || lens[a] == 0 || lens[b] == 0 || lens[a] > lens[b] {
                    continue;
                }
                let prefix = codes[b] >> (lens[b] - lens[a]);
                assert!(
                    !(prefix == codes[a]),
                    "code {a} is a prefix of {b}"
                );
            }
        }
    }
}
