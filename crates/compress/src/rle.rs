//! Byte-wise run-length coding.
//!
//! Format: a stream of chunks. Each chunk starts with a control byte
//! `c`. If `c < 0x80`, the next `c + 1` bytes are literals. If
//! `c >= 0x80`, the next byte repeats `c - 0x80 + 2` times (runs of
//! length 1 are encoded as literals, so a run chunk always saves space).

/// Compresses `data` as runs of `sym`-byte symbols (pixel-level RLE,
/// as in VNC's RRE/hextile encodings: a solid color row is one run
/// even though its R, G, B bytes differ). A trailing partial symbol
/// is emitted as literals.
///
/// # Panics
///
/// Panics if `sym` is zero.
pub fn compress_symbols(data: &[u8], sym: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    compress_symbols_into(data, sym, &mut out);
    out
}

/// Symbol-RLE [`compress_symbols`] into a caller-owned buffer (cleared
/// first) so repeated encodes reuse the allocation.
///
/// # Panics
///
/// Panics if `sym` is zero.
pub fn compress_symbols_into(data: &[u8], sym: usize, out: &mut Vec<u8>) {
    assert!(sym > 0, "symbol size must be positive");
    if sym == 1 {
        compress_into(data, out);
        return;
    }
    out.clear();
    let n = data.len() / sym;
    let mut i = 0;
    while i < n {
        let cur = &data[i * sym..(i + 1) * sym];
        // A run of equal symbols is a self-overlapping match at
        // distance `sym`; measure it word-at-a-time.
        let ml = crate::eq_len(
            data,
            i * sym,
            (i + 1) * sym,
            ((n - i - 1) * sym).min(128 * sym),
        );
        let run = 1 + ml / sym;
        if run >= 2 {
            out.push(0x80 + (run - 2) as u8);
            out.extend_from_slice(cur);
            i += run;
        } else {
            // Collect literal symbols until the next run of >= 2.
            let start = i;
            let mut lits = 0;
            while i < n && lits < 128 / sym.max(1) + 1 {
                if i + 1 < n && data[i * sym..(i + 1) * sym] == data[(i + 1) * sym..(i + 2) * sym]
                {
                    break;
                }
                i += 1;
                lits += 1;
            }
            out.push((lits - 1) as u8);
            out.extend_from_slice(&data[start * sym..(start + lits) * sym]);
        }
    }
    // Trailing partial symbol.
    let tail = &data[n * sym..];
    if !tail.is_empty() {
        out.push((tail.len() - 1) as u8);
        out.extend_from_slice(tail);
    }
}

/// Decompresses symbol-RLE data produced by [`compress_symbols`].
pub fn decompress_symbols(data: &[u8], sym: usize) -> Option<Vec<u8>> {
    assert!(sym > 0, "symbol size must be positive");
    if sym == 1 {
        return decompress(data);
    }
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c < 0x80 {
            // Literal count: symbols, except a final partial-symbol
            // chunk which is raw bytes. Distinguish by remaining len.
            let n_syms = c as usize + 1;
            let byte_len = n_syms * sym;
            if i + byte_len <= data.len() {
                out.extend_from_slice(&data[i..i + byte_len]);
                i += byte_len;
            } else {
                let rest = data.len() - i;
                if rest != c as usize + 1 {
                    return None;
                }
                out.extend_from_slice(&data[i..]);
                i = data.len();
            }
        } else {
            let n = (c - 0x80) as usize + 2;
            if i + sym > data.len() {
                return None;
            }
            let symbol = &data[i..i + sym];
            i += sym;
            for _ in 0..n {
                out.extend_from_slice(symbol);
            }
        }
    }
    Some(out)
}

/// Length of the run of bytes equal to `data[i]` starting at `i`,
/// capped at `cap`, measured a machine word at a time.
#[inline]
fn run_len(data: &[u8], i: usize, cap: usize) -> usize {
    let b = data[i];
    let limit = data.len().min(i + cap);
    let mut j = i + 1;
    let splat = u64::from_le_bytes([b; 8]);
    while j + 8 <= limit {
        let w = u64::from_le_bytes(data[j..j + 8].try_into().unwrap());
        let x = w ^ splat;
        if x != 0 {
            // First differing byte within the word (LE load: memory
            // order == significance order).
            return j - i + (x.trailing_zeros() / 8) as usize;
        }
        j += 8;
    }
    while j < limit && data[j] == b {
        j += 1;
    }
    j - i
}

/// Compresses `data` with RLE.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    compress_into(data, &mut out);
    out
}

/// Compresses `data` with RLE, appending to a caller-owned buffer
/// (cleared first) so repeated encodes reuse the allocation.
pub fn compress_into(data: &[u8], out: &mut Vec<u8>) {
    out.clear();
    let mut i = 0;
    while i < data.len() {
        // Measure the run starting at i, a word at a time.
        let run = run_len(data, i, 129);
        if run >= 2 {
            out.push(0x80 + (run - 2) as u8);
            out.push(data[i]);
            i += run;
        } else {
            // Collect literals until the next run of >= 3 (a run of 2
            // inside literals is not worth breaking the chunk for).
            let start = i;
            let mut lits = 0;
            while i < data.len() && lits < 128 {
                if run_len(data, i, 3) >= 3 {
                    break;
                }
                i += 1;
                lits += 1;
            }
            out.push((lits - 1) as u8);
            out.extend_from_slice(&data[start..start + lits]);
        }
    }
}

/// Decompresses RLE data; returns `None` on truncation.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c < 0x80 {
            let n = c as usize + 1;
            if i + n > data.len() {
                return None;
            }
            out.extend_from_slice(&data[i..i + n]);
            i += n;
        } else {
            let n = (c - 0x80) as usize + 2;
            let b = *data.get(i)?;
            i += 1;
            out.extend(std::iter::repeat_n(b, n));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let data = b"aaabbbcccabcabc";
        assert_eq!(decompress(&compress(data)).unwrap(), data);
    }

    #[test]
    fn round_trip_empty_and_single() {
        assert_eq!(decompress(&compress(b"")).unwrap(), b"");
        assert_eq!(decompress(&compress(b"x")).unwrap(), b"x");
    }

    #[test]
    fn long_run_compresses() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert!(c.len() < 20);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_overhead_is_bounded() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 128 + 2);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(decompress(&[0x05, 1, 2]), None); // Wants 6 literals.
        assert_eq!(decompress(&[0x80]), None); // Run missing its byte.
    }

    #[test]
    fn run_of_two_handled() {
        let data = b"aab";
        assert_eq!(decompress(&compress(data)).unwrap(), data);
    }

    #[test]
    fn max_run_boundary() {
        // 129 is the longest run a single chunk can encode.
        for n in [128usize, 129, 130, 257, 258] {
            let data = vec![9u8; n];
            assert_eq!(decompress(&compress(&data)).unwrap(), data, "n={n}");
        }
    }

    #[test]
    fn pixel_rle_round_trips() {
        // Solid-color pixels with distinct channel bytes: byte RLE
        // fails, pixel RLE collapses.
        let px = [230u8, 215, 224];
        let mut data = Vec::new();
        for _ in 0..1000 {
            data.extend_from_slice(&px);
        }
        let c = compress_symbols(&data, 3);
        assert!(c.len() < 100, "{} bytes", c.len());
        assert_eq!(decompress_symbols(&c, 3).unwrap(), data);
        // Byte RLE, by contrast, cannot compress this at all.
        assert!(compress(&data).len() > data.len() / 2);
    }

    #[test]
    fn pixel_rle_mixed_content() {
        let mut data = Vec::new();
        for i in 0..500u32 {
            let px = if i % 7 < 4 {
                [10u8, 20, 30]
            } else {
                [(i % 251) as u8, (i % 13) as u8, (i % 17) as u8]
            };
            data.extend_from_slice(&px);
        }
        let c = compress_symbols(&data, 3);
        assert_eq!(decompress_symbols(&c, 3).unwrap(), data);
    }

    #[test]
    fn pixel_rle_partial_tail() {
        // Length not a multiple of the pixel size.
        let data: Vec<u8> = (0..32).collect();
        let c = compress_symbols(&data, 3);
        assert_eq!(decompress_symbols(&c, 3).unwrap(), data);
    }

    #[test]
    fn pixel_rle_empty_and_tiny() {
        for d in [&[][..], &[1u8][..], &[1u8, 2][..], &[1u8, 2, 3][..]] {
            let c = compress_symbols(d, 3);
            assert_eq!(decompress_symbols(&c, 3).unwrap(), d);
        }
    }

    #[test]
    fn pixel_rle_sym1_equals_byte_rle() {
        let data = b"aaabbbcccabc".to_vec();
        assert_eq!(compress_symbols(&data, 1), compress(&data));
    }

    #[test]
    fn max_literal_boundary() {
        for n in [127usize, 128, 129, 256] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            assert_eq!(decompress(&compress(&data)).unwrap(), data, "n={n}");
        }
    }
}
