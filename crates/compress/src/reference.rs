//! Retained naive reference encoders.
//!
//! Byte-at-a-time versions of the RLE and LZSS encoders, kept verbatim
//! from before the word-width scanning rewrite. The optimized encoders
//! are required to produce **identical output bytes** (not merely a
//! decodable stream), so the property tests in `tests/property.rs`
//! assert `optimized == reference` directly, and the `perfgate`
//! harness times the pairs for the committed speedup trajectory.

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 15 + 255 * 3;
const LEN_EXT: usize = 15;
const HASH_BITS: usize = 13;

/// Naive byte RLE encoder ([`crate::rle::compress`] before word-width
/// run scanning).
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut i = 0;
    while i < data.len() {
        // Measure the run starting at i, one byte at a time.
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b && run < 129 {
            run += 1;
        }
        if run >= 2 {
            out.push(0x80 + (run - 2) as u8);
            out.push(b);
            i += run;
        } else {
            let start = i;
            let mut lits = 0;
            while i < data.len() && lits < 128 {
                let b = data[i];
                let mut run = 1;
                while i + run < data.len() && data[i + run] == b && run < 3 {
                    run += 1;
                }
                if run >= 3 {
                    break;
                }
                i += 1;
                lits += 1;
            }
            out.push((lits - 1) as u8);
            out.extend_from_slice(&data[start..start + lits]);
        }
    }
    out
}

/// Naive symbol RLE encoder ([`crate::rle::compress_symbols`] before
/// the scanning rewrite).
///
/// # Panics
///
/// Panics if `sym` is zero.
pub fn rle_compress_symbols(data: &[u8], sym: usize) -> Vec<u8> {
    assert!(sym > 0, "symbol size must be positive");
    if sym == 1 {
        return rle_compress(data);
    }
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let n = data.len() / sym;
    let mut i = 0;
    while i < n {
        let cur = &data[i * sym..(i + 1) * sym];
        let mut run = 1;
        while i + run < n && &data[(i + run) * sym..(i + run + 1) * sym] == cur && run < 129 {
            run += 1;
        }
        if run >= 2 {
            out.push(0x80 + (run - 2) as u8);
            out.extend_from_slice(cur);
            i += run;
        } else {
            let start = i;
            let mut lits = 0;
            while i < n && lits < 128 / sym.max(1) + 1 {
                if i + 1 < n && data[i * sym..(i + 1) * sym] == data[(i + 1) * sym..(i + 2) * sym]
                {
                    break;
                }
                i += 1;
                lits += 1;
            }
            out.push((lits - 1) as u8);
            out.extend_from_slice(&data[start * sym..(start + lits) * sym]);
        }
    }
    let tail = &data[n * sym..];
    if !tail.is_empty() {
        out.push((tail.len() - 1) as u8);
        out.extend_from_slice(tail);
    }
    out
}

fn hash(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(2654435761)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(40503))
        .wrapping_add(data[i + 2] as u32);
    (h as usize) & ((1 << HASH_BITS) - 1)
}

/// Naive LZSS encoder ([`crate::lzss::compress`] with byte-at-a-time
/// match extension).
pub fn lzss_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut i = 0;
    let mut flags_pos = usize::MAX;
    let mut flag_bit = 8;

    let mut push_item = |out: &mut Vec<u8>, is_match: bool, payload: &[u8]| {
        if flag_bit == 8 {
            flags_pos = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_match {
            out[flags_pos] |= 1 << flag_bit;
        }
        flag_bit += 1;
        out.extend_from_slice(payload);
    };

    while i < data.len() {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= data.len() {
            let h = hash(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && cand + WINDOW > i && chain < 32 {
                if cand < i {
                    let max = MAX_MATCH.min(data.len() - i);
                    let mut l = 0;
                    while l < max && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                }
                cand = prev[cand % WINDOW];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let mut extra = best_len - MIN_MATCH;
            let code = extra.min(LEN_EXT);
            let token = (((best_dist - 1) as u16) << 4) | (code as u16);
            let mut payload = token.to_le_bytes().to_vec();
            if code == LEN_EXT {
                extra -= LEN_EXT;
                loop {
                    let b = extra.min(255);
                    payload.push(b as u8);
                    extra -= b;
                    if b < 255 {
                        break;
                    }
                }
            }
            push_item(&mut out, true, &payload);
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash(data, i);
                    prev[i % WINDOW] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            push_item(&mut out, false, &data[i..i + 1]);
            if i + MIN_MATCH <= data.len() {
                let h = hash(data, i);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out
}

/// Naive PNG-like pipeline (filter + naive LZSS), for end-to-end
/// encoder-equality checks.
pub fn pnglike_compress(data: &[u8], bpp: usize, stride: usize) -> Vec<u8> {
    lzss_compress(&crate::filter::apply(data, bpp, stride))
}
