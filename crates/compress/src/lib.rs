#![warn(missing_docs)]
//! Compression and session encryption for THINC.
//!
//! The THINC prototype compresses `RAW` updates (and only `RAW`
//! updates) with PNG, and encrypts all traffic with RC4 (§7 of the
//! paper). This crate implements both from scratch:
//!
//! - [`rle`]: byte-wise run-length coding (the simple scheme used by
//!   the VNC-class baseline's "simple compression strategy"),
//! - [`lzss`]: an LZ77/LZSS dictionary coder,
//! - [`filter`]: PNG-style predictive scanline filters (None/Sub/Up/
//!   Average/Paeth) with per-row heuristic filter selection,
//! - [`huffman`]: canonical Huffman entropy coding,
//! - [`pnglike`]: the composed pipeline (filter + LZSS), this
//!   reproduction's stand-in for libpng,
//! - [`rc4`]: the RC4 stream cipher (educational only — RC4 is broken;
//!   it is here because the paper measures its overhead).
//!
//! [`Codec`] gives the baselines a common interface plus an adaptive
//! selector, modeling the adaptive compression the paper attributes to
//! VNC and Sun Ray.

pub mod filter;
pub mod huffman;
pub mod lzss;
pub mod pnglike;
pub mod rc4;
pub mod reference;
pub mod rle;

pub use rc4::Rc4;

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped
/// at `max`, compared a machine word at a time.
///
/// Overlapping ranges are fine (`data` is only read), which is what
/// turns self-overlapping RLE runs and LZSS matches into word scans.
#[inline]
pub(crate) fn eq_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let max = max.min(data.len() - a.max(b));
    let mut l = 0;
    while l + 8 <= max {
        let wa = u64::from_le_bytes(data[a + l..a + l + 8].try_into().unwrap());
        let wb = u64::from_le_bytes(data[b + l..b + l + 8].try_into().unwrap());
        let x = wa ^ wb;
        if x != 0 {
            // LE load: memory order == significance order, so the
            // first differing byte is the lowest set byte.
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

/// Reusable encode-side scratch buffers.
///
/// The flush path encodes one command after another; with a `Scratch`
/// per pipe the filter intermediate and the output stream are reused
/// across commands instead of being reallocated for each one.
#[derive(Debug, Default)]
pub struct Scratch {
    filtered: Vec<u8>,
    out: Vec<u8>,
}

impl Scratch {
    /// Creates empty scratch buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The filter intermediate and output buffers, for staged pipelines.
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<u8>, &mut Vec<u8>) {
        (&mut self.filtered, &mut self.out)
    }

    /// Read access to the last encoded stream.
    pub fn encoded(&self) -> &[u8] {
        &self.out
    }
}

/// A lossless byte codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// No compression.
    None,
    /// Byte-wise run-length coding.
    Rle,
    /// Pixel-wise run-length coding (runs of whole pixels, as in
    /// VNC's RRE/hextile encodings).
    PixelRle {
        /// Bytes per pixel.
        bpp: usize,
    },
    /// LZSS dictionary coding.
    Lzss,
    /// PNG-style scanline filters + LZSS (needs row geometry).
    PngLike {
        /// Bytes per pixel of the image data.
        bpp: usize,
        /// Bytes per row of the image data.
        stride: usize,
    },
    /// Canonical Huffman entropy coding alone.
    Huffman,
    /// The full DEFLATE-class pipeline: PNG filters + LZSS + Huffman
    /// (the "better compression algorithms such as used in NX", §8.3).
    DeflateLike {
        /// Bytes per pixel of the image data.
        bpp: usize,
        /// Bytes per row of the image data.
        stride: usize,
    },
}

impl Codec {
    /// Compresses `data`. Output framing is self-describing per codec;
    /// use the same codec to decompress.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => data.to_vec(),
            Codec::Rle => rle::compress(data),
            Codec::PixelRle { bpp } => rle::compress_symbols(data, *bpp),
            Codec::Lzss => lzss::compress(data),
            Codec::PngLike { bpp, stride } => pnglike::compress(data, *bpp, *stride),
            Codec::Huffman => huffman::compress(data),
            Codec::DeflateLike { bpp, stride } => {
                huffman::compress(&pnglike::compress(data, *bpp, *stride))
            }
        }
    }

    /// Compresses `data` through caller-owned [`Scratch`] buffers and
    /// returns the encoded bytes as a slice into the scratch.
    ///
    /// Identical output to [`Codec::compress`], without the per-call
    /// allocation: the hot codecs (RLE, pixel RLE, LZSS, PNG-like)
    /// encode straight into the reused buffers; the rare ones fall
    /// back to the allocating path and copy into the scratch.
    pub fn compress_with<'a>(&self, data: &[u8], scratch: &'a mut Scratch) -> &'a [u8] {
        match self {
            Codec::None => {
                scratch.out.clear();
                scratch.out.extend_from_slice(data);
            }
            Codec::Rle => rle::compress_into(data, &mut scratch.out),
            Codec::PixelRle { bpp } => rle::compress_symbols_into(data, *bpp, &mut scratch.out),
            Codec::Lzss => lzss::compress_into(data, &mut scratch.out),
            Codec::PngLike { bpp, stride } => {
                pnglike::compress_with(data, *bpp, *stride, scratch);
            }
            other => {
                let encoded = other.compress(data);
                scratch.out.clear();
                scratch.out.extend_from_slice(&encoded);
            }
        }
        &scratch.out
    }

    /// Decompresses `data` produced by [`Codec::compress`].
    ///
    /// Returns `None` on malformed input.
    pub fn decompress(&self, data: &[u8]) -> Option<Vec<u8>> {
        match self {
            Codec::None => Some(data.to_vec()),
            Codec::Rle => rle::decompress(data),
            Codec::PixelRle { bpp } => rle::decompress_symbols(data, *bpp),
            Codec::Lzss => lzss::decompress(data),
            Codec::PngLike { bpp, stride } => pnglike::decompress(data, *bpp, *stride),
            Codec::Huffman => huffman::decompress(data),
            Codec::DeflateLike { bpp, stride } => {
                pnglike::decompress(&huffman::decompress(data)?, *bpp, *stride)
            }
        }
    }

    /// A rough relative CPU cost factor for simulation purposes
    /// (cycles per input byte, order-of-magnitude).
    pub const fn cost_per_byte(&self) -> u64 {
        match self {
            Codec::None => 1,
            Codec::Rle => 4,
            Codec::PixelRle { .. } => 5,
            Codec::Lzss => 80,
            Codec::PngLike { .. } => 100,
            Codec::Huffman => 30,
            Codec::DeflateLike { .. } => 140,
        }
    }
}

/// Picks a codec by estimated link quality, modeling the adaptive
/// schemes the paper describes for VNC and Sun Ray: cheap coding on
/// fast links, aggressive (CPU-hungry) coding on slow ones.
///
/// `bandwidth_bps` is the available link bandwidth in bits per second.
pub fn adaptive_codec(bandwidth_bps: u64, bpp: usize, stride: usize) -> Codec {
    if bandwidth_bps >= 80_000_000 {
        Codec::PixelRle { bpp }
    } else if bandwidth_bps >= 20_000_000 {
        Codec::Lzss
    } else {
        Codec::PngLike { bpp, stride }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image(len: usize) -> Vec<u8> {
        // Smooth gradient with a repeating texture: compressible but
        // not trivial.
        (0..len)
            .map(|i| ((i / 7) as u8).wrapping_add((i % 13) as u8))
            .collect()
    }

    #[test]
    fn all_codecs_round_trip() {
        let data = sample_image(4096);
        for codec in [
            Codec::None,
            Codec::Rle,
            Codec::Lzss,
            Codec::PngLike { bpp: 4, stride: 256 },
            Codec::Huffman,
            Codec::DeflateLike { bpp: 4, stride: 256 },
        ] {
            let c = codec.compress(&data);
            assert_eq!(codec.decompress(&c).as_deref(), Some(&data[..]), "{codec:?}");
        }
    }

    #[test]
    fn all_codecs_round_trip_empty() {
        for codec in [
            Codec::None,
            Codec::Rle,
            Codec::Lzss,
            Codec::PngLike { bpp: 3, stride: 30 },
            Codec::Huffman,
            Codec::DeflateLike { bpp: 3, stride: 30 },
        ] {
            let c = codec.compress(&[]);
            assert_eq!(codec.decompress(&c).as_deref(), Some(&[][..]), "{codec:?}");
        }
    }

    #[test]
    fn flat_data_compresses_well() {
        let data = vec![0xAAu8; 10_000];
        // LZSS matches cap at 18 bytes, so its flat-data ratio is ~5.9x;
        // RLE and the filtered pipeline collapse much further.
        for (codec, bound) in [
            (Codec::Rle, data.len() / 10),
            (Codec::Lzss, data.len() / 5),
            (Codec::PngLike { bpp: 3, stride: 300 }, data.len() / 10),
        ] {
            let c = codec.compress(&data);
            assert!(c.len() < bound, "{codec:?}: {} not < {}", c.len(), bound);
        }
    }

    #[test]
    fn adaptive_selects_by_bandwidth() {
        assert_eq!(adaptive_codec(100_000_000, 3, 300), Codec::PixelRle { bpp: 3 });
        assert_eq!(adaptive_codec(24_000_000, 3, 300), Codec::Lzss);
        assert_eq!(
            adaptive_codec(1_000_000, 3, 300),
            Codec::PngLike { bpp: 3, stride: 300 }
        );
    }

    #[test]
    fn cost_model_is_monotone_in_strength() {
        assert!(Codec::None.cost_per_byte() < Codec::Rle.cost_per_byte());
        assert!(Codec::Rle.cost_per_byte() < Codec::Lzss.cost_per_byte());
        assert!(
            Codec::Lzss.cost_per_byte() < Codec::PngLike { bpp: 3, stride: 1 }.cost_per_byte()
        );
    }
}
