//! LZSS dictionary coding with a hash-chain match finder.
//!
//! Format: groups of 8 items prefixed by a flag byte (LSB first). Flag
//! bit 0 = literal byte; flag bit 1 = match, encoded as two bytes:
//! 12-bit distance (1..=4096) and a 4-bit length code. Length codes
//! 0..=14 mean length `code + MIN_MATCH`; code 15 is followed by
//! LZ4-style extension bytes (each adds its value; a 255 byte means
//! "continue"), so long runs compress to a handful of bytes. The
//! window is 4 KiB; this is the classic LZSS layout and is
//! deliberately simple — the paper only needs "off-the-shelf
//! compression"-class behaviour, not a state-of-the-art entropy coder.

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
/// Longest match the encoder will emit (bounded to keep extension
/// byte chains short; 3 extension bytes at most).
const MAX_MATCH: usize = MIN_MATCH + 15 + 255 * 3;
const LEN_EXT: usize = 15;
const HASH_BITS: usize = 13;

fn hash(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(2654435761)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(40503))
        .wrapping_add(data[i + 2] as u32);
    (h as usize) & ((1 << HASH_BITS) - 1)
}

/// Compresses `data` with LZSS.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    compress_into(data, &mut out);
    out
}

/// Compresses `data` with LZSS into a caller-owned buffer (cleared
/// first) so repeated encodes reuse the allocation.
///
/// Match candidates come from the hash-chain finder; candidate match
/// lengths are extended a machine word at a time ([`crate::eq_len`]),
/// which is where the encoder spends most of its cycles. Output bytes
/// are identical to [`crate::reference::lzss_compress`].
pub fn compress_into(data: &[u8], out: &mut Vec<u8>) {
    out.clear();
    // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut i = 0;
    let mut flags_pos = usize::MAX;
    let mut flag_bit = 8;

    let mut push_item = |out: &mut Vec<u8>, is_match: bool, payload: &[u8]| {
        if flag_bit == 8 {
            flags_pos = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_match {
            out[flags_pos] |= 1 << flag_bit;
        }
        flag_bit += 1;
        out.extend_from_slice(payload);
    };

    while i < data.len() {
        let mut best_len = 0;
        let mut best_dist = 0;
        if i + MIN_MATCH <= data.len() {
            let h = hash(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && cand + WINDOW > i && chain < 32 {
                if cand < i {
                    let max = MAX_MATCH.min(data.len() - i);
                    let l = crate::eq_len(data, cand, i, max);
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                }
                cand = prev[cand % WINDOW];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let mut extra = best_len - MIN_MATCH;
            let code = extra.min(LEN_EXT);
            let token = (((best_dist - 1) as u16) << 4) | (code as u16);
            let mut payload = token.to_le_bytes().to_vec();
            if code == LEN_EXT {
                extra -= LEN_EXT;
                loop {
                    let b = extra.min(255);
                    payload.push(b as u8);
                    extra -= b;
                    if b < 255 {
                        break;
                    }
                }
            }
            push_item(out, true, &payload);
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash(data, i);
                    prev[i % WINDOW] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            push_item(out, false, &data[i..i + 1]);
            if i + MIN_MATCH <= data.len() {
                let h = hash(data, i);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
}

/// Decompresses LZSS data; returns `None` on malformed input.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if i >= data.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 2 > data.len() {
                    return None;
                }
                let token = u16::from_le_bytes([data[i], data[i + 1]]);
                i += 2;
                let dist = ((token >> 4) as usize) + 1;
                let mut len = ((token & 0xF) as usize) + MIN_MATCH;
                if (token & 0xF) as usize == LEN_EXT {
                    loop {
                        let b = *data.get(i)?;
                        i += 1;
                        len += b as usize;
                        if b < 255 {
                            break;
                        }
                    }
                }
                if dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(data[i]);
                i += 1;
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_text() {
        let data = b"the quick brown fox jumps over the lazy dog, the quick brown fox";
        let c = compress(data);
        assert!(c.len() < data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn round_trip_empty_and_tiny() {
        for d in [&b""[..], b"a", b"ab", b"abc"] {
            assert_eq!(decompress(&compress(d)).unwrap(), d);
        }
    }

    #[test]
    fn long_repetition_compresses_hard() {
        let data = b"abcd".repeat(1000);
        let c = compress(&data);
        assert!(c.len() < data.len() / 5, "{} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_copy() {
        // "aaaa..." forces dist=1 matches that overlap their own output.
        let data = vec![b'a'; 500];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn window_boundary_matches() {
        // Repeat a block at exactly WINDOW distance.
        let block: Vec<u8> = (0..64).map(|i| (i * 37 % 251) as u8).collect();
        let mut data = block.clone();
        data.extend(std::iter::repeat(0u8).take(WINDOW - 64));
        data.extend_from_slice(&block);
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn incompressible_random_round_trips() {
        // LCG noise; should still round trip even if it expands.
        let mut x = 123456789u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn bad_distance_rejected() {
        // Flag says match, token points before start of output.
        let bad = [0x01u8, 0xFF, 0xFF];
        assert_eq!(decompress(&bad), None);
    }

    #[test]
    fn truncated_match_rejected() {
        let bad = [0x01u8, 0x00];
        assert_eq!(decompress(&bad), None);
    }
}
