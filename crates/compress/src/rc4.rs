//! The RC4 stream cipher.
//!
//! THINC encrypts all traffic with RC4 (§7), chosen in 2005 for its
//! low per-byte cost on thin-client traffic. It is implemented here to
//! reproduce that design point and its (negligible) overhead.
//!
//! **RC4 is cryptographically broken. Never use this for real
//! security.** It exists in this repository solely because the paper's
//! system and experiments use it.

/// RC4 keystream generator / stream cipher state.
#[derive(Clone)]
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl std::fmt::Debug for Rc4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key-derived state.
        f.debug_struct("Rc4").finish_non_exhaustive()
    }
}

impl Rc4 {
    /// Initializes the cipher with `key` (1 to 256 bytes; the paper's
    /// experiments use 128-bit keys).
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty or longer than 256 bytes.
    pub fn new(key: &[u8]) -> Self {
        assert!(!key.is_empty() && key.len() <= 256, "RC4 key must be 1..=256 bytes");
        let mut s = [0u8; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as u8;
        }
        let mut j: u8 = 0;
        for i in 0..256 {
            j = j
                .wrapping_add(s[i])
                .wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Self { s, i: 0, j: 0 }
    }

    /// Produces the next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]);
        self.s.swap(self.i as usize, self.j as usize);
        let t = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]);
        self.s[t as usize]
    }

    /// XORs the keystream into `data` in place (encryption and
    /// decryption are the same operation).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next_byte();
        }
    }

    /// Convenience: returns an encrypted/decrypted copy of `data`.
    pub fn process(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc6229_style_known_vector() {
        // Classic test vector: key "Key", plaintext "Plaintext".
        let mut c = Rc4::new(b"Key");
        let ct = c.process(b"Plaintext");
        assert_eq!(ct, [0xBB, 0xF3, 0x16, 0xE8, 0xD9, 0x40, 0xAF, 0x0A, 0xD3]);
    }

    #[test]
    fn known_vector_wiki() {
        let mut c = Rc4::new(b"Wiki");
        let ct = c.process(b"pedia");
        assert_eq!(ct, [0x10, 0x21, 0xBF, 0x04, 0x20]);
    }

    #[test]
    fn known_vector_secret() {
        let mut c = Rc4::new(b"Secret");
        let ct = c.process(b"Attack at dawn");
        assert_eq!(
            ct,
            [0x45, 0xA0, 0x1F, 0x64, 0x5F, 0xC3, 0x5B, 0x38, 0x35, 0x52, 0x54, 0x4B, 0x9B, 0xF5]
        );
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = b"0123456789abcdef"; // 128-bit key as in the paper.
        let msg: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let mut enc = Rc4::new(key);
        let mut dec = Rc4::new(key);
        let ct = enc.process(&msg);
        assert_ne!(ct, msg);
        assert_eq!(dec.process(&ct), msg);
    }

    #[test]
    fn stream_position_matters() {
        let mut a = Rc4::new(b"k1");
        let _ = a.process(b"skip these bytes");
        let ct_late = a.process(b"hello");
        let mut b = Rc4::new(b"k1");
        let ct_early = b.process(b"hello");
        assert_ne!(ct_late, ct_early);
    }

    #[test]
    #[should_panic(expected = "RC4 key")]
    fn empty_key_rejected() {
        let _ = Rc4::new(b"");
    }

    #[test]
    fn debug_does_not_leak_state() {
        let c = Rc4::new(b"topsecret");
        let s = format!("{c:?}");
        assert!(!s.contains("topsecret"));
        assert!(s.contains("Rc4"));
    }
}
