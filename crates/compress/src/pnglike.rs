//! The "PNG-like" pipeline used for THINC `RAW` updates: PNG-style
//! predictive scanline filtering followed by LZSS dictionary coding.
//!
//! The paper's prototype uses libpng for this job (§7); the pipeline
//! here has the same structure (predict, then dictionary-code the
//! residuals) and therefore the same qualitative behaviour: synthetic
//! desktop content (fills, gradients, text) compresses very well,
//! photographic content moderately.

use crate::filter;
use crate::lzss;

/// Compresses image `data` with row geometry (`bpp` bytes per pixel,
/// `stride` bytes per row).
///
/// # Panics
///
/// Panics if `bpp` or `stride` is zero.
pub fn compress(data: &[u8], bpp: usize, stride: usize) -> Vec<u8> {
    let filtered = filter::apply(data, bpp, stride);
    lzss::compress(&filtered)
}

/// [`compress`] through caller-owned scratch buffers: the filtered
/// intermediate goes into `scratch.filtered`, the encoded stream into
/// `scratch.out` (returned as a slice). Encoding many commands with
/// one [`crate::Scratch`] does no per-command allocation once the
/// buffers have grown to the working-set size.
///
/// # Panics
///
/// Panics if `bpp` or `stride` is zero.
pub fn compress_with<'a>(
    data: &[u8],
    bpp: usize,
    stride: usize,
    scratch: &'a mut crate::Scratch,
) -> &'a [u8] {
    let (filtered, out) = scratch.parts_mut();
    filter::apply_into(data, bpp, stride, filtered);
    lzss::compress_into(filtered, out);
    out
}

/// Reverses [`compress`]; returns `None` on malformed input.
pub fn decompress(data: &[u8], bpp: usize, stride: usize) -> Option<Vec<u8>> {
    let filtered = lzss::decompress(data)?;
    filter::unapply(&filtered, bpp, stride)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_desktop_like_content() {
        // Flat background + "window" + "text" speckles.
        let (w, h, bpp) = (64usize, 32usize, 3usize);
        let mut img = vec![200u8; w * h * bpp];
        for y in 4..20 {
            for x in 8..56 {
                let off = (y * w + x) * bpp;
                img[off] = 255;
                img[off + 1] = 255;
                img[off + 2] = 255;
            }
        }
        for i in (0..img.len()).step_by(97) {
            img[i] = 0;
        }
        let c = compress(&img, bpp, w * bpp);
        assert!(c.len() < img.len() / 4, "{} bytes", c.len());
        assert_eq!(decompress(&c, bpp, w * bpp).unwrap(), img);
    }

    #[test]
    fn round_trip_noise() {
        let mut x = 42u64;
        let img: Vec<u8> = (0..3000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let c = compress(&img, 3, 300);
        assert_eq!(decompress(&c, 3, 300).unwrap(), img);
    }

    #[test]
    fn gradient_beats_plain_lzss() {
        // Vertical gradient: rows differ by a constant, so Up-filtering
        // turns the image into near-zeros.
        let (w, h, bpp) = (100usize, 100usize, 3usize);
        let mut img = Vec::with_capacity(w * h * bpp);
        for y in 0..h {
            for _x in 0..w {
                img.extend_from_slice(&[(y % 256) as u8, (y * 2 % 256) as u8, 128]);
            }
        }
        let png = compress(&img, bpp, w * bpp);
        let plain = lzss::compress(&img);
        assert!(png.len() < plain.len(), "png {} vs lzss {}", png.len(), plain.len());
        assert_eq!(decompress(&png, bpp, w * bpp).unwrap(), img);
    }

    #[test]
    fn corrupt_stream_rejected_not_panicking() {
        let img = vec![1u8; 300];
        let mut c = compress(&img, 3, 30);
        // Mangle: any outcome but a panic is acceptable; usually None.
        if !c.is_empty() {
            let last = c.len() - 1;
            c[last] ^= 0xFF;
            c.truncate(c.len().saturating_sub(3));
        }
        let _ = decompress(&c, 3, 30);
    }
}
