//! PNG-style predictive scanline filters.
//!
//! Each image row is transformed by one of five predictors before
//! dictionary coding, exactly as in PNG: `None`, `Sub` (left), `Up`
//! (above), `Average`, and `Paeth`. The encoder picks a filter per row
//! with the standard minimum-sum-of-absolute-differences heuristic.
//!
//! The scoring and writing passes are structured for
//! autovectorization: each filter gets its own flat loop over the row
//! with the `i < bpp` prologue split out, so the inner loops carry no
//! per-byte branching or bounds checks. Two identities remove the
//! remaining special cases: with no previous row, `Paeth` degenerates
//! to `Sub` and `Up` to `None`; within the first `bpp` bytes of a row
//! that has one, `Paeth` degenerates to `Up`. Output is byte-for-byte
//! identical to the straightforward per-byte formulation (the test
//! suite keeps that formulation around and checks).

/// The five PNG filter types, by their PNG tag value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterType {
    /// No prediction.
    None = 0,
    /// Predict from the pixel to the left.
    Sub = 1,
    /// Predict from the pixel above.
    Up = 2,
    /// Predict from the average of left and above.
    Average = 3,
    /// Predict with the Paeth predictor.
    Paeth = 4,
}

impl FilterType {
    fn from_tag(tag: u8) -> Option<FilterType> {
        Some(match tag {
            0 => FilterType::None,
            1 => FilterType::Sub,
            2 => FilterType::Up,
            3 => FilterType::Average,
            4 => FilterType::Paeth,
            _ => return None,
        })
    }
}

#[inline(always)]
fn paeth(a: u8, b: u8, c: u8) -> u8 {
    // a = left, b = above, c = upper-left.
    let p = a as i32 + b as i32 - c as i32;
    let pa = (p - a as i32).abs();
    let pb = (p - b as i32).abs();
    let pc = (p - c as i32).abs();
    if pa <= pb && pa <= pc {
        a
    } else if pb <= pc {
        b
    } else {
        c
    }
}

#[inline(always)]
fn abs_residual(x: u8, pred: u8) -> u64 {
    (x.wrapping_sub(pred) as i8).unsigned_abs() as u64
}

/// Σ |x| — the `None` score, and the `Up` score when there is no
/// previous row.
fn score_none(row: &[u8]) -> u64 {
    row.iter().map(|&x| (x as i8).unsigned_abs() as u64).sum()
}

/// `Sub` score; also the `Paeth` score when there is no previous row
/// (with a = left, b = c = 0, Paeth always picks a).
fn score_sub(row: &[u8], bpp: usize) -> u64 {
    let head: u64 = row[..bpp].iter().map(|&x| (x as i8).unsigned_abs() as u64).sum();
    let tail: u64 = row[bpp..]
        .iter()
        .zip(row.iter())
        .map(|(&x, &a)| abs_residual(x, a))
        .sum();
    head + tail
}

/// `Up` score (previous row present).
fn score_up(row: &[u8], prev: &[u8]) -> u64 {
    row.iter().zip(prev.iter()).map(|(&x, &b)| abs_residual(x, b)).sum()
}

/// `Average` score; `prev` may be empty (first row), where the
/// predictor degenerates to `a / 2` (and `0` in the prologue).
fn score_avg(row: &[u8], prev: &[u8], bpp: usize) -> u64 {
    if prev.is_empty() {
        let head: u64 = row[..bpp].iter().map(|&x| (x as i8).unsigned_abs() as u64).sum();
        let tail: u64 = row[bpp..]
            .iter()
            .zip(row.iter())
            .map(|(&x, &a)| abs_residual(x, a / 2))
            .sum();
        head + tail
    } else {
        let head: u64 = row[..bpp]
            .iter()
            .zip(prev[..bpp].iter())
            .map(|(&x, &b)| abs_residual(x, b / 2))
            .sum();
        let tail: u64 = row[bpp..]
            .iter()
            .zip(prev[bpp..].iter())
            .zip(row.iter())
            .map(|((&x, &b), &a)| abs_residual(x, ((a as u16 + b as u16) / 2) as u8))
            .sum();
        head + tail
    }
}

/// `Paeth` score (previous row present). In the prologue a = c = 0,
/// so the predictor is exactly b (`Up`).
fn score_paeth(row: &[u8], prev: &[u8], bpp: usize) -> u64 {
    let head: u64 = row[..bpp]
        .iter()
        .zip(prev[..bpp].iter())
        .map(|(&x, &b)| abs_residual(x, b))
        .sum();
    let tail: u64 = row[bpp..]
        .iter()
        .zip(prev[bpp..].iter())
        .zip(row.iter().zip(prev.iter()))
        .map(|((&x, &b), (&a, &c))| abs_residual(x, paeth(a, b, c)))
        .sum();
    head + tail
}

fn write_sub(row: &[u8], bpp: usize, dst: &mut [u8]) {
    dst[..bpp].copy_from_slice(&row[..bpp]);
    for ((d, &x), &a) in dst[bpp..].iter_mut().zip(row[bpp..].iter()).zip(row.iter()) {
        *d = x.wrapping_sub(a);
    }
}

fn write_up(row: &[u8], prev: &[u8], dst: &mut [u8]) {
    for ((d, &x), &b) in dst.iter_mut().zip(row.iter()).zip(prev.iter()) {
        *d = x.wrapping_sub(b);
    }
}

fn write_avg(row: &[u8], prev: &[u8], bpp: usize, dst: &mut [u8]) {
    if prev.is_empty() {
        dst[..bpp].copy_from_slice(&row[..bpp]);
        for ((d, &x), &a) in dst[bpp..].iter_mut().zip(row[bpp..].iter()).zip(row.iter()) {
            *d = x.wrapping_sub(a / 2);
        }
    } else {
        for ((d, &x), &b) in
            dst[..bpp].iter_mut().zip(row[..bpp].iter()).zip(prev[..bpp].iter())
        {
            *d = x.wrapping_sub(b / 2);
        }
        for (((d, &x), &b), &a) in dst[bpp..]
            .iter_mut()
            .zip(row[bpp..].iter())
            .zip(prev[bpp..].iter())
            .zip(row.iter())
        {
            *d = x.wrapping_sub(((a as u16 + b as u16) / 2) as u8);
        }
    }
}

fn write_paeth(row: &[u8], prev: &[u8], bpp: usize, dst: &mut [u8]) {
    for ((d, &x), &b) in dst[..bpp].iter_mut().zip(row[..bpp].iter()).zip(prev[..bpp].iter()) {
        *d = x.wrapping_sub(b);
    }
    for (((d, &x), &b), (&a, &c)) in dst[bpp..]
        .iter_mut()
        .zip(row[bpp..].iter())
        .zip(prev[bpp..].iter())
        .zip(row.iter().zip(prev.iter()))
    {
        *d = x.wrapping_sub(paeth(a, b, c));
    }
}

fn unfilter_row(ftype: FilterType, row: &mut [u8], prev: &[u8], bpp: usize) {
    for i in 0..row.len() {
        let a = if i >= bpp { row[i - bpp] } else { 0 };
        let b = if prev.is_empty() { 0 } else { prev[i] };
        let c = if i >= bpp && !prev.is_empty() { prev[i - bpp] } else { 0 };
        let pred = match ftype {
            FilterType::None => 0,
            FilterType::Sub => a,
            FilterType::Up => b,
            FilterType::Average => ((a as u16 + b as u16) / 2) as u8,
            FilterType::Paeth => paeth(a, b, c),
        };
        row[i] = row[i].wrapping_add(pred);
    }
}

/// Applies per-row adaptive filtering. Output is, per row, one filter
/// tag byte followed by the filtered row. A trailing partial row (when
/// `data.len()` is not a multiple of `stride`) is filtered too.
pub fn apply(data: &[u8], bpp: usize, stride: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / stride.max(1) + 1);
    apply_into(data, bpp, stride, &mut out);
    out
}

/// [`apply`] into a caller-owned buffer (cleared first) so repeated
/// filtering reuses the allocation.
///
/// # Panics
///
/// Panics if `bpp` or `stride` is zero.
pub fn apply_into(data: &[u8], bpp: usize, stride: usize, out: &mut Vec<u8>) {
    assert!(bpp > 0 && stride > 0, "bad geometry");
    out.clear();
    out.reserve(data.len() + data.len() / stride + 1);
    let mut prev: &[u8] = &[];
    for row in data.chunks(stride) {
        let p = if prev.len() == row.len() { prev } else { &[] };
        let b = bpp.min(row.len());
        // Candidate scores in tag order; Up without a previous row
        // scores like None and Paeth like Sub (see the score fns), so
        // the strict-< first-minimum scan below reproduces the naive
        // [None, Sub, Up, Average, Paeth] tie-break exactly.
        let s_none = score_none(row);
        let s_sub = score_sub(row, b);
        let scores = [
            s_none,
            s_sub,
            if p.is_empty() { s_none } else { score_up(row, p) },
            score_avg(row, p, b),
            if p.is_empty() { s_sub } else { score_paeth(row, p, b) },
        ];
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            if s < scores[best] {
                best = i;
            }
        }
        out.push(best as u8);
        let start = out.len();
        out.resize(start + row.len(), 0);
        let dst = &mut out[start..];
        match FilterType::from_tag(best as u8).expect("tag in range") {
            FilterType::None => dst.copy_from_slice(row),
            FilterType::Sub => write_sub(row, b, dst),
            FilterType::Up if p.is_empty() => dst.copy_from_slice(row),
            FilterType::Up => write_up(row, p, dst),
            FilterType::Average => write_avg(row, p, b, dst),
            FilterType::Paeth if p.is_empty() => write_sub(row, b, dst),
            FilterType::Paeth => write_paeth(row, p, b, dst),
        }
        prev = row;
    }
}

/// Reverses [`apply`]. Returns `None` on malformed input.
pub fn unapply(data: &[u8], bpp: usize, stride: usize) -> Option<Vec<u8>> {
    if bpp == 0 || stride == 0 {
        return None;
    }
    let mut out: Vec<u8> = Vec::with_capacity(data.len());
    let mut i = 0;
    let mut prev_start: Option<(usize, usize)> = None; // (offset, len) in out.
    while i < data.len() {
        let ftype = FilterType::from_tag(data[i])?;
        i += 1;
        let row_len = stride.min(data.len() - i);
        if row_len == 0 {
            return None;
        }
        let row_start = out.len();
        out.extend_from_slice(&data[i..i + row_len]);
        i += row_len;
        // Split so we can view prev row while mutating this one.
        let (head, tail) = out.split_at_mut(row_start);
        let prev: &[u8] = match prev_start {
            Some((off, len)) if len == row_len => &head[off..off + len],
            _ => &[],
        };
        unfilter_row(ftype, &mut tail[..row_len], prev, bpp);
        prev_start = Some((row_start, row_len));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize, bpp: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(w * h * bpp);
        for y in 0..h {
            for x in 0..w {
                for c in 0..bpp {
                    v.push(((x * 3 + y * 7 + c * 11) % 256) as u8);
                }
            }
        }
        v
    }

    /// The straightforward per-byte formulation the optimized passes
    /// must reproduce byte-for-byte.
    fn reference_filter_row(
        ftype: FilterType,
        row: &[u8],
        prev: &[u8],
        bpp: usize,
        out: &mut Vec<u8>,
    ) {
        for (i, &x) in row.iter().enumerate() {
            let a = if i >= bpp { row[i - bpp] } else { 0 };
            let b = if prev.is_empty() { 0 } else { prev[i] };
            let c = if i >= bpp && !prev.is_empty() { prev[i - bpp] } else { 0 };
            let pred = match ftype {
                FilterType::None => 0,
                FilterType::Sub => a,
                FilterType::Up => b,
                FilterType::Average => ((a as u16 + b as u16) / 2) as u8,
                FilterType::Paeth => paeth(a, b, c),
            };
            out.push(x.wrapping_sub(pred));
        }
    }

    fn reference_apply(data: &[u8], bpp: usize, stride: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut prev: &[u8] = &[];
        let mut scratch = Vec::new();
        for row in data.chunks(stride) {
            let mut best = FilterType::None;
            let mut best_score = u64::MAX;
            for f in [
                FilterType::None,
                FilterType::Sub,
                FilterType::Up,
                FilterType::Average,
                FilterType::Paeth,
            ] {
                scratch.clear();
                let p = if prev.len() == row.len() { prev } else { &[] };
                reference_filter_row(f, row, p, bpp, &mut scratch);
                let score: u64 =
                    scratch.iter().map(|&b| (b as i8).unsigned_abs() as u64).sum();
                if score < best_score {
                    best_score = score;
                    best = f;
                }
            }
            out.push(best as u8);
            let p = if prev.len() == row.len() { prev } else { &[] };
            reference_filter_row(best, row, p, bpp, &mut out);
            prev = row;
        }
        out
    }

    #[test]
    fn optimized_apply_matches_reference_byte_for_byte() {
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..200 {
            let bpp = 1 + (rand() % 4) as usize;
            let w = 1 + (rand() % 37) as usize;
            let h = 1 + (rand() % 9) as usize;
            let stride = w * bpp;
            let mut data: Vec<u8> = (0..stride * h).map(|_| rand() as u8).collect();
            // Half the cases get smooth content so every filter type
            // actually wins somewhere; half stay noisy.
            if case % 2 == 0 {
                for (i, b) in data.iter_mut().enumerate() {
                    *b = ((i / bpp) % 251) as u8;
                }
            }
            // A third of the cases get a ragged trailing row.
            if case % 3 == 0 && data.len() > 3 {
                data.truncate(data.len() - 1 - (rand() as usize % (stride.min(data.len() - 1))));
            }
            assert_eq!(
                apply(&data, bpp, stride),
                reference_apply(&data, bpp, stride),
                "case={case} bpp={bpp} stride={stride} len={}",
                data.len()
            );
        }
    }

    #[test]
    fn round_trip_gradient() {
        let data = gradient(17, 9, 3);
        let stride = 17 * 3;
        let f = apply(&data, 3, stride);
        assert_eq!(unapply(&f, 3, stride).unwrap(), data);
    }

    #[test]
    fn round_trip_all_bpps() {
        for bpp in [1usize, 2, 3, 4] {
            let data = gradient(8, 8, bpp);
            let stride = 8 * bpp;
            let f = apply(&data, bpp, stride);
            assert_eq!(unapply(&f, bpp, stride).unwrap(), data, "bpp={bpp}");
        }
    }

    #[test]
    fn round_trip_partial_last_row() {
        let mut data = gradient(10, 3, 3);
        data.truncate(data.len() - 7);
        let f = apply(&data, 3, 30);
        assert_eq!(unapply(&f, 3, 30).unwrap(), data);
    }

    #[test]
    fn round_trip_empty() {
        let f = apply(&[], 3, 30);
        assert_eq!(unapply(&f, 3, 30).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn gradient_filters_to_near_constant() {
        // A linear gradient becomes tiny residuals under Sub/Paeth,
        // which is the whole point of filtering before LZ coding.
        let data: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        let f = apply(&data, 1, 50);
        // A slope-1 gradient has residual 1 under the Sub filter, so the
        // filtered stream collapses to (almost) a single byte value —
        // which is what makes it trivially dictionary-codable.
        let ones = f.iter().filter(|&&b| b == 1).count();
        assert!(ones > data.len() * 3 / 4, "{ones} constant residuals");
    }

    #[test]
    fn bad_filter_tag_rejected() {
        assert_eq!(unapply(&[9, 1, 2, 3], 1, 3), None);
    }

    #[test]
    fn paeth_predictor_reference_cases() {
        assert_eq!(paeth(0, 0, 0), 0);
        assert_eq!(paeth(10, 20, 10), 20); // p = 20 -> picks b.
        assert_eq!(paeth(20, 10, 10), 20); // p = 20 -> picks a.
        assert_eq!(paeth(100, 100, 100), 100);
    }
}
