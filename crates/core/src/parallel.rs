//! Deterministic scoped-thread parallelism for per-client work.
//!
//! A shared session holds one isolated delivery state per client
//! (buffer, scaler, video streams), so translating and compressing
//! updates for different clients never touches shared mutable state.
//! [`for_each_mut`] exploits that: it runs a closure over every item
//! of a slice on `std::thread::scope` workers, each worker owning a
//! contiguous chunk.
//!
//! **Determinism guarantee:** the closure runs exactly once per item
//! and sees only that item (plus shared read-only captures), so the
//! final state of the slice is identical for every worker count —
//! including `workers == 1`, which runs inline with no threads at
//! all. Callers that collect outputs merge them by slice index, never
//! by completion order.

/// Runs `f(index, item)` for every item of `items`, splitting the
/// slice across at most `workers` scoped threads.
///
/// Items are processed exactly once; `index` is the item's position
/// in `items`. With `workers <= 1` (or a single item) everything runs
/// inline on the caller's thread. Panics in `f` propagate.
///
/// ```
/// let mut totals = [1u64, 2, 3, 4, 5];
/// thinc_core::parallel::for_each_mut(&mut totals, 3, |i, t| *t += i as u64 * 10);
/// assert_eq!(totals, [1, 12, 23, 34, 45]);
/// ```
pub fn for_each_mut<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, part) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, item) in part.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
    });
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(index, item)` for every item like [`for_each_mut`], but
/// contains panics per item instead of propagating them.
///
/// Returns one slot per item: `None` when `f` completed, or
/// `Some(message)` holding the panic payload when it did not. A panic
/// in item `i` never disturbs any other item — the same worker simply
/// moves on to the rest of its chunk — and the slice itself survives,
/// so the caller can quarantine the poisoned item and keep serving
/// the others. An item that panicked may have been mutated partway;
/// callers must treat its state as unspecified.
///
/// ```
/// let mut totals = [1u64, 2, 3];
/// let caught = thinc_core::parallel::try_for_each_mut(&mut totals, 2, |i, t| {
///     if i == 1 {
///         panic!("poisoned");
///     }
///     *t += 10;
/// });
/// assert_eq!(totals, [11, 2, 13]);
/// assert_eq!(caught[1].as_deref(), Some("poisoned"));
/// ```
pub fn try_for_each_mut<T, F>(items: &mut [T], workers: usize, f: F) -> Vec<Option<String>>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let n = items.len();
    let mut caught: Vec<Option<String>> = (0..n).map(|_| None).collect();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                caught[i] = Some(panic_message(p));
            }
        }
        return caught;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for ((ci, part), outs) in items
            .chunks_mut(chunk)
            .enumerate()
            .zip(caught.chunks_mut(chunk))
        {
            let f = &f;
            scope.spawn(move || {
                for ((j, item), out) in part.iter_mut().enumerate().zip(outs.iter_mut()) {
                    if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(ci * chunk + j, item))) {
                        *out = Some(panic_message(p));
                    }
                }
            });
        }
    });
    caught
}

/// Test support: runs `f` with the default panic hook silenced, so
/// deliberate contained panics don't spam stderr. Hook swaps are
/// process-global, so a lock serializes the tests that use this.
#[cfg(test)]
pub(crate) fn silence_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::sync::Mutex;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(hook);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_item_exactly_once_with_correct_index() {
        for workers in [0, 1, 2, 3, 7, 64] {
            let mut items: Vec<u64> = vec![0; 13];
            for_each_mut(&mut items, workers, |i, v| *v += i as u64 + 1);
            let expect: Vec<u64> = (1..=13).collect();
            assert_eq!(items, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut items: Vec<u64> = Vec::new();
        for_each_mut(&mut items, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn try_for_each_contains_panics_per_item() {
        silence_panics(|| {
            for workers in [1, 2, 4, 16] {
                let mut items: Vec<u64> = (0..9).collect();
                let caught = try_for_each_mut(&mut items, workers, |i, v| {
                    if i % 4 == 2 {
                        panic!("poisoned item {i}");
                    }
                    *v += 100;
                });
                for (i, (v, c)) in items.iter().zip(&caught).enumerate() {
                    if i % 4 == 2 {
                        assert_eq!(c.as_deref(), Some(format!("poisoned item {i}").as_str()));
                        assert_eq!(*v, i as u64, "poisoned item untouched, workers={workers}");
                    } else {
                        assert!(c.is_none(), "item {i} must not be flagged");
                        assert_eq!(*v, i as u64 + 100, "workers={workers}");
                    }
                }
            }
        });
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // A stateful per-item computation whose result would expose
        // any cross-item interference or reordering.
        let run = |workers: usize| {
            let mut items: Vec<Vec<u64>> = (0..17).map(|i| vec![i]).collect();
            for_each_mut(&mut items, workers, |i, v| {
                for k in 0..50 {
                    let prev = *v.last().unwrap();
                    v.push(prev.wrapping_mul(6364136223846793005).wrapping_add(i as u64 + k));
                }
            });
            items
        };
        let serial = run(1);
        for workers in [2, 4, 16] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
    }
}
