//! Deterministic scoped-thread parallelism for per-client work.
//!
//! A shared session holds one isolated delivery state per client
//! (buffer, scaler, video streams), so translating and compressing
//! updates for different clients never touches shared mutable state.
//! [`for_each_mut`] exploits that: it runs a closure over every item
//! of a slice on `std::thread::scope` workers, each worker owning a
//! contiguous chunk.
//!
//! **Determinism guarantee:** the closure runs exactly once per item
//! and sees only that item (plus shared read-only captures), so the
//! final state of the slice is identical for every worker count —
//! including `workers == 1`, which runs inline with no threads at
//! all. Callers that collect outputs merge them by slice index, never
//! by completion order.

/// Runs `f(index, item)` for every item of `items`, splitting the
/// slice across at most `workers` scoped threads.
///
/// Items are processed exactly once; `index` is the item's position
/// in `items`. With `workers <= 1` (or a single item) everything runs
/// inline on the caller's thread. Panics in `f` propagate.
///
/// ```
/// let mut totals = [1u64, 2, 3, 4, 5];
/// thinc_core::parallel::for_each_mut(&mut totals, 3, |i, t| *t += i as u64 * 10);
/// assert_eq!(totals, [1, 12, 23, 34, 45]);
/// ```
pub fn for_each_mut<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, part) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, item) in part.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_item_exactly_once_with_correct_index() {
        for workers in [0, 1, 2, 3, 7, 64] {
            let mut items: Vec<u64> = vec![0; 13];
            for_each_mut(&mut items, workers, |i, v| *v += i as u64 + 1);
            let expect: Vec<u64> = (1..=13).collect();
            assert_eq!(items, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut items: Vec<u64> = Vec::new();
        for_each_mut(&mut items, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // A stateful per-item computation whose result would expose
        // any cross-item interference or reordering.
        let run = |workers: usize| {
            let mut items: Vec<Vec<u64>> = (0..17).map(|i| vec![i]).collect();
            for_each_mut(&mut items, workers, |i, v| {
                for k in 0..50 {
                    let prev = *v.last().unwrap();
                    v.push(prev.wrapping_mul(6364136223846793005).wrapping_add(i as u64 + k));
                }
            });
            items
        };
        let serial = run(1);
        for workers in [2, 4, 16] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
    }
}
