//! The multi-queue Shortest-Remaining-Size-First scheduler (§5).
//!
//! Commands are sorted into queues by the number of bytes still
//! needed to deliver them; queues are flushed in increasing size
//! order, so small updates (button feedback, fills) never wait behind
//! bulk pixel data — the SRPT analogue that minimizes mean response
//! time. A separate *real-time* queue holds updates that overlap the
//! region around the most recent input event; it preempts all normal
//! queues.
//!
//! Reordering safety follows the paper's argument: partial commands
//! are clipped so no two overlap; complete commands are small and
//! land in the first queue in arrival order; transparent commands are
//! placed behind their largest dependency, and since queues flush in
//! increasing order every dependency is delivered first.

use thinc_raster::Rect;

/// Number of size-ordered queues ("the current implementation uses 10
/// queues with powers of 2 representing queue size boundaries").
pub const NUM_QUEUES: usize = 10;

/// Upper size bound of queue 0, in bytes; queue `i` holds commands of
/// size `(BASE_SIZE << (i-1), BASE_SIZE << i]`, and the last queue is
/// unbounded.
pub const BASE_SIZE: u64 = 128;

/// Computes the queue index for a command of `size` bytes.
pub fn queue_index(size: u64) -> usize {
    let mut idx = 0;
    let mut bound = BASE_SIZE;
    while size > bound && idx < NUM_QUEUES - 1 {
        bound <<= 1;
        idx += 1;
    }
    idx
}

/// Where an entry lives in the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueSlot {
    /// The preempting real-time queue.
    Realtime,
    /// Normal queue `i` (flushed in increasing order).
    Normal(usize),
}

/// Decides the slot for a new command.
///
/// `size` is the command's wire size; `realtime` marks input-feedback
/// updates; `largest_dep_slot` is the slot of the largest command
/// this one depends on, if any (transparent-command placement, and
/// opaque commands drawing over transparent ones).
pub fn place(size: u64, realtime: bool, largest_dep_slot: Option<QueueSlot>) -> QueueSlot {
    if realtime {
        // Real-time preemption is only safe when nothing in a normal
        // queue must be drawn first: a command cannot jump ahead of
        // content it depends on.
        return match largest_dep_slot {
            None | Some(QueueSlot::Realtime) => QueueSlot::Realtime,
            Some(QueueSlot::Normal(dep_q)) => QueueSlot::Normal(queue_index(size).max(dep_q)),
        };
    }
    let natural = queue_index(size);
    match largest_dep_slot {
        // The dependency is real-time: it will be flushed before any
        // normal queue anyway, so natural placement is safe.
        Some(QueueSlot::Realtime) | None => QueueSlot::Normal(natural),
        Some(QueueSlot::Normal(dep_q)) => QueueSlot::Normal(natural.max(dep_q)),
    }
}

/// Whether two commands' output rectangles create an ordering
/// dependency: one of them must be transparent (opaque pairs are
/// either disjoint after clipping or ordered within a queue).
pub fn creates_dependency(a_transparent: bool, b_transparent: bool, a: &Rect, b: &Rect) -> bool {
    (a_transparent || b_transparent) && a.intersects(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_boundaries_are_powers_of_two() {
        assert_eq!(queue_index(0), 0);
        assert_eq!(queue_index(128), 0);
        assert_eq!(queue_index(129), 1);
        assert_eq!(queue_index(256), 1);
        assert_eq!(queue_index(257), 2);
        assert_eq!(queue_index(1024), 3);
        assert_eq!(queue_index(65_536), 9);
        assert_eq!(queue_index(10_000_000), 9);
    }

    #[test]
    fn ten_queues_cover_sizes() {
        // Largest bounded queue: BASE << 8 = 32 KiB; beyond is q9.
        assert_eq!(queue_index(BASE_SIZE << 8), 8);
        assert_eq!(queue_index((BASE_SIZE << 8) + 1), 9);
    }

    #[test]
    fn realtime_preempts() {
        assert_eq!(place(1_000_000, true, None), QueueSlot::Realtime);
        assert_eq!(
            place(100, true, Some(QueueSlot::Realtime)),
            QueueSlot::Realtime
        );
        // ...but never jumps ahead of a normal-queue dependency.
        assert_eq!(
            place(100, true, Some(QueueSlot::Normal(5))),
            QueueSlot::Normal(5)
        );
    }

    #[test]
    fn natural_placement_without_deps() {
        assert_eq!(place(100, false, None), QueueSlot::Normal(0));
        assert_eq!(place(5_000, false, None), QueueSlot::Normal(6));
    }

    #[test]
    fn dependency_pushes_to_later_queue() {
        // Small command depending on a big one waits behind it.
        assert_eq!(
            place(100, false, Some(QueueSlot::Normal(7))),
            QueueSlot::Normal(7)
        );
        // But a big command never moves earlier than its natural queue.
        assert_eq!(
            place(1_000_000, false, Some(QueueSlot::Normal(2))),
            QueueSlot::Normal(9)
        );
    }

    #[test]
    fn realtime_dependency_allows_natural_placement() {
        assert_eq!(
            place(100, false, Some(QueueSlot::Realtime)),
            QueueSlot::Normal(0)
        );
    }

    #[test]
    fn dependency_requires_transparency_and_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        let c = Rect::new(100, 100, 5, 5);
        assert!(creates_dependency(true, false, &a, &b));
        assert!(creates_dependency(false, true, &a, &b));
        assert!(!creates_dependency(false, false, &a, &b));
        assert!(!creates_dependency(true, true, &a, &c));
    }
}
