//! Adaptive degradation: closing the loop from fault telemetry back
//! into the scheduler.
//!
//! The paper's resilience argument (§3, §7 WAN results) is that a
//! stateless client plus server-held state lets a session *degrade
//! and recover* on bad networks. Measuring faults
//! (`thinc-telemetry`'s resilience group) is only half of that: this
//! module is the controller that acts on them. Each flush epoch the
//! server feeds it an [`EpochSignals`] snapshot — buffer debt,
//! overflow evictions, transport fault counters, whether a fault
//! window is live — and it walks a small hysteretic ladder of
//! [`DegradationLevel`]s. Deeper levels shrink the server-side scale
//! (smaller updates), cap the A/V FIFO harder (drop stale video
//! sooner), tighten the display-buffer byte bound (evict earlier,
//! repay as fresh-screen RAW later) and prefer evicting RAW over the
//! compact SFILL/PFILL commands. When the window clears the ladder
//! climbs back and the server owes the client one full refresh to
//! restore full fidelity.
//!
//! Hysteresis both ways — `degrade_after` consecutive pressured
//! epochs to step down, `promote_after` clear epochs to step up —
//! keeps the controller from oscillating on bursty links.

/// Fidelity rungs, shallowest to deepest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Full fidelity: no adaptation applied.
    Full,
    /// Mild pressure: half-resolution updates, tighter A/V cap.
    Reduced,
    /// Sustained pressure: quarter resolution, RAW evicted first.
    Degraded,
    /// Collapse survival: minimum fidelity that still converges.
    Survival,
}

impl DegradationLevel {
    /// All levels, shallowest first.
    pub const ALL: [DegradationLevel; 4] = [
        DegradationLevel::Full,
        DegradationLevel::Reduced,
        DegradationLevel::Degraded,
        DegradationLevel::Survival,
    ];

    /// Ladder index (0 = full fidelity).
    pub fn index(self) -> usize {
        match self {
            DegradationLevel::Full => 0,
            DegradationLevel::Reduced => 1,
            DegradationLevel::Degraded => 2,
            DegradationLevel::Survival => 3,
        }
    }

    /// Divisor applied to the client viewport for server-side
    /// scaling: deeper levels send smaller updates.
    pub fn scale_divisor(self) -> u32 {
        [1, 2, 4, 8][self.index()]
    }

    /// Divisor applied to the configured A/V FIFO cap.
    pub fn av_divisor(self) -> usize {
        [1, 2, 4, 8][self.index()]
    }

    /// Divisor applied to the display buffer's byte bound.
    pub fn bound_divisor(self) -> u64 {
        [1, 1, 2, 4][self.index()]
    }

    /// Whether overflow eviction should prefer RAW victims over the
    /// compact SFILL/PFILL/COPY commands (the paper's command
    /// hierarchy: RAW is the fallback format and the first to go).
    pub fn raw_first_eviction(self) -> bool {
        self.index() >= 2
    }

    fn deeper(self) -> DegradationLevel {
        Self::ALL[(self.index() + 1).min(Self::ALL.len() - 1)]
    }

    fn shallower(self) -> DegradationLevel {
        Self::ALL[self.index().saturating_sub(1)]
    }
}

/// Controller policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationConfig {
    /// Consecutive pressured epochs before stepping one level deeper.
    pub degrade_after: u32,
    /// Consecutive clear epochs before stepping one level back up.
    pub promote_after: u32,
    /// Fraction of the byte bound at which standing backlog counts as
    /// pressure even without fresh fault events.
    pub pressure_fraction: f64,
    /// Deepest level the ladder may reach.
    pub max_level: DegradationLevel,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            degrade_after: 2,
            promote_after: 4,
            pressure_fraction: 0.5,
            max_level: DegradationLevel::Survival,
        }
    }
}

/// One flush epoch's worth of pressure evidence. Fault counters are
/// cumulative (as the transport and telemetry expose them); the
/// controller differences them against the previous epoch itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochSignals {
    /// Wire bytes waiting in the display buffer.
    pub pending_bytes: u64,
    /// The buffer's configured byte bound, if any.
    pub byte_bound: Option<u64>,
    /// Cumulative overflow evictions.
    pub overflow_evictions: u64,
    /// Cumulative sends deferred by outage windows.
    pub outage_defers: u64,
    /// Cumulative congestion rounds served at collapsed rate.
    pub collapsed_rounds: u64,
    /// Cumulative stale audio/video drops.
    pub stale_av_drops: u64,
    /// Cumulative byte-corruption events observed on the link.
    pub corrupt_events: u64,
    /// Cumulative segments the link delivered out of order.
    pub segments_reordered: u64,
    /// Cumulative segments the link delivered more than once.
    pub segments_duplicated: u64,
    /// Whether the transport reports a fault window live right now
    /// (down, collapsed, corrupting, reordering or duplicating).
    pub link_impaired: bool,
}

/// A level change the controller decided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationTransition {
    /// Level before the step.
    pub from: DegradationLevel,
    /// Level after the step.
    pub to: DegradationLevel,
}

impl DegradationTransition {
    /// Whether this step reduced fidelity.
    pub fn is_demotion(&self) -> bool {
        self.to > self.from
    }
}

/// The hysteretic ladder walker.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationController {
    config: DegradationConfig,
    level: DegradationLevel,
    hot_epochs: u32,
    cool_epochs: u32,
    prev: EpochSignals,
    demotions: u64,
    promotions: u64,
}

impl DegradationController {
    /// A controller at full fidelity.
    pub fn new(config: DegradationConfig) -> Self {
        Self {
            config,
            level: DegradationLevel::Full,
            hot_epochs: 0,
            cool_epochs: 0,
            prev: EpochSignals::default(),
            demotions: 0,
            promotions: 0,
        }
    }

    /// A controller restored at a known fidelity level — used when a
    /// session is rebuilt from a checkpoint. Hysteresis counters and
    /// epoch history restart clean (they are deliberately not part of
    /// the checkpoint: a restored server re-observes pressure from
    /// scratch rather than trusting pre-crash momentum), so the first
    /// post-restore transition takes a full `degrade_after` /
    /// `promote_after` run of epochs, same as a fresh controller.
    pub fn restore(config: DegradationConfig, level: DegradationLevel) -> Self {
        Self {
            level,
            ..Self::new(config)
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> DegradationConfig {
        self.config
    }

    /// The current fidelity level.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Fidelity reductions performed so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Fidelity restorations performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Whether this epoch's signals constitute pressure.
    fn pressured(&self, s: &EpochSignals) -> bool {
        if s.link_impaired {
            return true;
        }
        let fresh_faults = s.overflow_evictions > self.prev.overflow_evictions
            || s.outage_defers > self.prev.outage_defers
            || s.collapsed_rounds > self.prev.collapsed_rounds
            || s.stale_av_drops > self.prev.stale_av_drops
            || s.corrupt_events > self.prev.corrupt_events
            || s.segments_reordered > self.prev.segments_reordered
            || s.segments_duplicated > self.prev.segments_duplicated;
        if fresh_faults {
            return true;
        }
        match s.byte_bound {
            Some(bound) if bound > 0 => {
                s.pending_bytes as f64 >= bound as f64 * self.config.pressure_fraction
            }
            _ => false,
        }
    }

    /// Feeds one epoch of signals; returns the level change, if the
    /// hysteresis thresholds produced one.
    pub fn observe(&mut self, signals: &EpochSignals) -> Option<DegradationTransition> {
        let pressured = self.pressured(signals);
        self.prev = *signals;
        if pressured {
            self.hot_epochs += 1;
            self.cool_epochs = 0;
            if self.hot_epochs >= self.config.degrade_after && self.level < self.config.max_level
            {
                let from = self.level;
                self.level = self.level.deeper().min(self.config.max_level);
                self.hot_epochs = 0;
                self.demotions += 1;
                return Some(DegradationTransition { from, to: self.level });
            }
        } else {
            self.cool_epochs += 1;
            self.hot_epochs = 0;
            if self.cool_epochs >= self.config.promote_after
                && self.level > DegradationLevel::Full
            {
                let from = self.level;
                self.level = self.level.shallower();
                self.cool_epochs = 0;
                self.promotions += 1;
                return Some(DegradationTransition { from, to: self.level });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure(cum: u64) -> EpochSignals {
        EpochSignals {
            overflow_evictions: cum,
            ..EpochSignals::default()
        }
    }

    fn clear() -> EpochSignals {
        EpochSignals::default()
    }

    #[test]
    fn needs_consecutive_pressure_to_demote() {
        let mut c = DegradationController::new(DegradationConfig::default());
        assert_eq!(c.observe(&pressure(1)), None); // 1 hot epoch.
        assert_eq!(c.observe(&clear()), None); // Streak broken.
        assert_eq!(c.observe(&pressure(2)), None);
        let t = c.observe(&pressure(3)).expect("second consecutive hot epoch");
        assert!(t.is_demotion());
        assert_eq!(c.level(), DegradationLevel::Reduced);
        assert_eq!(c.demotions(), 1);
    }

    #[test]
    fn corruption_pressure_counts_like_loss() {
        // Integrity-layer evidence (corruption, reordering,
        // duplication) drives the ladder exactly like loss evidence.
        let mut c = DegradationController::new(DegradationConfig::default());
        let s = |corrupt, reorder, dup| EpochSignals {
            corrupt_events: corrupt,
            segments_reordered: reorder,
            segments_duplicated: dup,
            ..EpochSignals::default()
        };
        assert_eq!(c.observe(&s(1, 0, 0)), None);
        let t = c.observe(&s(1, 1, 0)).expect("fresh reorder sustains the streak");
        assert!(t.is_demotion());
        // Unchanged cumulative values are no longer pressure.
        assert_eq!(c.observe(&s(1, 1, 0)), None);
        assert_eq!(c.observe(&s(1, 1, 1)), None); // dup: 1 hot epoch again
        assert_eq!(c.demotions(), 1);
    }

    #[test]
    fn cumulative_counters_are_differenced() {
        let mut c = DegradationController::new(DegradationConfig::default());
        // The same cumulative value twice is only one fresh event.
        assert_eq!(c.observe(&pressure(5)), None);
        assert_eq!(c.observe(&pressure(5)), None); // No new evictions: clear.
        assert_eq!(c.observe(&pressure(5)), None);
        assert_eq!(c.level(), DegradationLevel::Full);
    }

    #[test]
    fn ladder_descends_to_max_then_recovers() {
        let cfg = DegradationConfig {
            degrade_after: 1,
            promote_after: 2,
            ..DegradationConfig::default()
        };
        let mut c = DegradationController::new(cfg);
        let mut cum = 0;
        for want in [
            DegradationLevel::Reduced,
            DegradationLevel::Degraded,
            DegradationLevel::Survival,
        ] {
            cum += 1;
            let t = c.observe(&pressure(cum)).unwrap();
            assert_eq!(t.to, want);
        }
        // Pinned at the bottom.
        cum += 1;
        assert_eq!(c.observe(&pressure(cum)), None);
        assert_eq!(c.level(), DegradationLevel::Survival);
        // Clear epochs climb back one rung per promote_after.
        let mut promoted = Vec::new();
        for _ in 0..6 {
            if let Some(t) = c.observe(&pressure(cum)) {
                promoted.push(t.to);
            }
        }
        assert_eq!(
            promoted,
            vec![
                DegradationLevel::Degraded,
                DegradationLevel::Reduced,
                DegradationLevel::Full
            ]
        );
        assert_eq!(c.promotions(), 3);
    }

    #[test]
    fn max_level_caps_the_ladder() {
        let cfg = DegradationConfig {
            degrade_after: 1,
            max_level: DegradationLevel::Reduced,
            ..DegradationConfig::default()
        };
        let mut c = DegradationController::new(cfg);
        assert!(c.observe(&pressure(1)).is_some());
        assert_eq!(c.observe(&pressure(2)), None);
        assert_eq!(c.level(), DegradationLevel::Reduced);
    }

    #[test]
    fn standing_backlog_counts_as_pressure() {
        let cfg = DegradationConfig {
            degrade_after: 1,
            ..DegradationConfig::default()
        };
        let mut c = DegradationController::new(cfg);
        let s = EpochSignals {
            pending_bytes: 60,
            byte_bound: Some(100),
            ..EpochSignals::default()
        };
        assert!(c.observe(&s).is_some());
    }

    #[test]
    fn link_impairment_alone_is_pressure() {
        let cfg = DegradationConfig {
            degrade_after: 1,
            ..DegradationConfig::default()
        };
        let mut c = DegradationController::new(cfg);
        let s = EpochSignals {
            link_impaired: true,
            ..EpochSignals::default()
        };
        assert!(c.observe(&s).is_some());
    }

    #[test]
    fn knobs_monotone_along_the_ladder() {
        let mut last = (0, 0, 0);
        for l in DegradationLevel::ALL {
            let k = (l.scale_divisor(), l.av_divisor() as u32, l.bound_divisor() as u32);
            assert!(k.0 >= last.0 && k.1 >= last.1 && k.2 >= last.2, "{l:?}");
            last = k;
        }
        assert!(!DegradationLevel::Full.raw_first_eviction());
        assert!(DegradationLevel::Survival.raw_first_eviction());
    }
}
