//! Video stream objects (§4.2).
//!
//! "THINC's video architecture is built around the notion of video
//! stream objects. Each stream object represents a video being
//! displayed." The server translates XVideo-level frame puts into
//! stream messages: `VideoInit` when a new stream appears, `VideoData`
//! per frame, `VideoMove` when the destination changes, `VideoEnd` on
//! teardown. Frames travel in their native YUV format; the client's
//! hardware does colorspace conversion and scaling, so fullscreen
//! playback costs the same bandwidth as windowed playback.
//!
//! For small viewports the server resamples the YUV planes before
//! transmission (the §8.3 PDA result: full quality at 3.5 Mbps).

use std::collections::HashMap;

use thinc_protocol::message::Message;
use thinc_raster::{Rect, YuvFormat, YuvFrame};

/// One live video stream.
#[derive(Debug, Clone)]
pub struct VideoStream {
    /// Stream id on the wire.
    pub id: u32,
    /// Pixel format of the stream.
    pub format: YuvFormat,
    /// Source frame width (as transmitted).
    pub src_width: u32,
    /// Source frame height.
    pub src_height: u32,
    /// Current on-screen destination.
    pub dst: Rect,
    /// Frames sent.
    pub frames: u32,
}

/// Manages stream lifecycle and frame delivery.
#[derive(Debug, Default)]
pub struct VideoStreamManager {
    streams: HashMap<u32, VideoStream>,
    next_id: u32,
    /// Downscale frames by this ratio before sending (viewport /
    /// session), when server-side scaling is active.
    scale: Option<(u32, u32, u32, u32)>,
}

impl VideoStreamManager {
    /// A manager with no active streams.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables server-side resampling of video data: frames are
    /// scaled by `viewport/session` per axis before transmission.
    pub fn set_scale(&mut self, viewport_w: u32, session_w: u32, viewport_h: u32, session_h: u32) {
        if viewport_w == session_w && viewport_h == session_h {
            self.scale = None;
        } else {
            self.scale = Some((viewport_w, session_w, viewport_h, session_h));
        }
    }

    /// Live streams.
    pub fn streams(&self) -> impl Iterator<Item = &VideoStream> {
        self.streams.values()
    }

    /// Handles one frame displayed at `dst`, producing the protocol
    /// messages to send. `timestamp_us` stamps the frame for A/V
    /// synchronization at the client.
    pub fn display_frame(&mut self, frame: &YuvFrame, dst: Rect, timestamp_us: u64) -> Vec<Message> {
        let mut out = Vec::new();
        // Downscale the payload when a smaller viewport is active.
        let (send_frame, send_dst);
        if let Some((vw, sw, vh, sh)) = self.scale {
            let fw = ((frame.width as u64 * vw as u64 / sw as u64).max(1)) as u32;
            let fh = ((frame.height as u64 * vh as u64 / sh as u64).max(1)) as u32;
            send_frame = scale_yuv(frame, fw, fh);
            send_dst = dst.scaled(vw, sw, vh, sh);
        } else {
            send_frame = frame.clone();
            send_dst = dst;
        }
        // Find a stream with matching geometry/format.
        let existing = self
            .streams
            .values()
            .find(|s| {
                s.format == send_frame.format
                    && s.src_width == send_frame.width
                    && s.src_height == send_frame.height
            })
            .map(|s| s.id);
        let id = match existing {
            Some(id) => {
                let s = self.streams.get_mut(&id).expect("stream exists");
                if s.dst != send_dst {
                    s.dst = send_dst;
                    out.push(Message::VideoMove { id, dst: send_dst });
                }
                id
            }
            None => {
                let id = self.next_id;
                self.next_id += 1;
                self.streams.insert(
                    id,
                    VideoStream {
                        id,
                        format: send_frame.format,
                        src_width: send_frame.width,
                        src_height: send_frame.height,
                        dst: send_dst,
                        frames: 0,
                    },
                );
                out.push(Message::VideoInit {
                    id,
                    format: send_frame.format,
                    src_width: send_frame.width,
                    src_height: send_frame.height,
                    dst: send_dst,
                });
                id
            }
        };
        let s = self.streams.get_mut(&id).expect("stream exists");
        let seq = s.frames;
        s.frames += 1;
        out.push(Message::VideoData {
            id,
            seq,
            timestamp_us,
            data: send_frame.data,
        });
        out
    }

    /// Re-announces every live stream for a resyncing client: a fresh
    /// connection has no stream table, so each stream's `VideoInit`
    /// is re-sent (ids ascending for determinism). Frame sequence
    /// numbers continue — the client only needs the geometry.
    pub fn reannounce(&self) -> Vec<Message> {
        let mut ids: Vec<u32> = self.streams.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                let s = &self.streams[&id];
                Message::VideoInit {
                    id,
                    format: s.format,
                    src_width: s.src_width,
                    src_height: s.src_height,
                    dst: s.dst,
                }
            })
            .collect()
    }

    /// Tears down stream `id`, producing the `VideoEnd` message.
    pub fn end_stream(&mut self, id: u32) -> Option<Message> {
        self.streams.remove(&id).map(|_| Message::VideoEnd { id })
    }

    /// Tears down every stream.
    pub fn end_all(&mut self) -> Vec<Message> {
        let ids: Vec<u32> = self.streams.keys().copied().collect();
        ids.into_iter().filter_map(|id| self.end_stream(id)).collect()
    }
}

/// Resamples a YUV frame to `w`×`h` by nearest-neighbour plane
/// sampling — the cheap server-side video downscale.
pub fn scale_yuv(frame: &YuvFrame, w: u32, h: u32) -> YuvFrame {
    if w == frame.width && h == frame.height {
        return frame.clone();
    }
    let mut out = YuvFrame::new(frame.format, w, h);
    match frame.format {
        YuvFormat::Yv12 => {
            let ow = w as usize;
            let cw = (w as usize).div_ceil(2);
            let ch = (h as usize).div_ceil(2);
            let y_len = ow * h as usize;
            let c_len = cw * ch;
            let scw = (frame.width as usize).div_ceil(2);
            let sch = (frame.height as usize).div_ceil(2);
            let sy_len = frame.width as usize * frame.height as usize;
            let sc_len = scw * sch;
            for y in 0..h as usize {
                let sy = y * frame.height as usize / h as usize;
                for x in 0..ow {
                    let sx = x * frame.width as usize / w as usize;
                    out.data[y * ow + x] = frame.data[sy * frame.width as usize + sx];
                }
            }
            for cy in 0..ch {
                let scy = (cy * sch / ch).min(sch.saturating_sub(1));
                for cx in 0..cw {
                    let scx = (cx * scw / cw).min(scw.saturating_sub(1));
                    out.data[y_len + cy * cw + cx] = frame.data[sy_len + scy * scw + scx];
                    out.data[y_len + c_len + cy * cw + cx] =
                        frame.data[sy_len + sc_len + scy * scw + scx];
                }
            }
        }
        YuvFormat::Yuy2 => {
            let pairs = (w as usize).div_ceil(2);
            let spairs = (frame.width as usize).div_ceil(2);
            for y in 0..h as usize {
                let sy = y * frame.height as usize / h as usize;
                for p in 0..pairs {
                    let sp = p * spairs / pairs;
                    let src = (sy * spairs + sp) * 4;
                    let dst = (y * pairs + p) * 4;
                    out.data[dst..dst + 4].copy_from_slice(&frame.data[src..src + 4]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> YuvFrame {
        YuvFrame::new(YuvFormat::Yv12, 352, 240)
    }

    #[test]
    fn first_frame_inits_stream() {
        let mut m = VideoStreamManager::new();
        let msgs = m.display_frame(&frame(), Rect::new(0, 0, 1024, 768), 0);
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0], Message::VideoInit { .. }));
        assert!(matches!(msgs[1], Message::VideoData { seq: 0, .. }));
    }

    #[test]
    fn subsequent_frames_are_data_only() {
        let mut m = VideoStreamManager::new();
        m.display_frame(&frame(), Rect::new(0, 0, 1024, 768), 0);
        let msgs = m.display_frame(&frame(), Rect::new(0, 0, 1024, 768), 41_667);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], Message::VideoData { seq: 1, timestamp_us: 41_667, .. }));
    }

    #[test]
    fn moving_the_window_emits_video_move() {
        let mut m = VideoStreamManager::new();
        m.display_frame(&frame(), Rect::new(0, 0, 352, 240), 0);
        let msgs = m.display_frame(&frame(), Rect::new(100, 100, 352, 240), 1);
        assert!(matches!(msgs[0], Message::VideoMove { .. }));
        assert!(matches!(msgs[1], Message::VideoData { .. }));
    }

    #[test]
    fn fullscreen_costs_same_bytes_as_windowed() {
        // The headline §4.2 property: hardware scaling decouples
        // network cost from view size.
        let mut m1 = VideoStreamManager::new();
        let small: u64 = m1
            .display_frame(&frame(), Rect::new(0, 0, 352, 240), 0)
            .iter()
            .map(|m| m.wire_size())
            .sum();
        let mut m2 = VideoStreamManager::new();
        let full: u64 = m2
            .display_frame(&frame(), Rect::new(0, 0, 1024, 768), 0)
            .iter()
            .map(|m| m.wire_size())
            .sum();
        assert_eq!(small, full);
    }

    #[test]
    fn end_stream_messages() {
        let mut m = VideoStreamManager::new();
        m.display_frame(&frame(), Rect::new(0, 0, 100, 100), 0);
        let ends = m.end_all();
        assert_eq!(ends.len(), 1);
        assert!(matches!(ends[0], Message::VideoEnd { .. }));
        assert_eq!(m.streams().count(), 0);
    }

    #[test]
    fn pda_scaling_shrinks_payload() {
        let mut m = VideoStreamManager::new();
        m.set_scale(320, 1024, 240, 768);
        let msgs = m.display_frame(&frame(), Rect::new(0, 0, 1024, 768), 0);
        let data_len = msgs
            .iter()
            .find_map(|msg| match msg {
                Message::VideoData { data, .. } => Some(data.len()),
                _ => None,
            })
            .unwrap();
        let full = YuvFormat::Yv12.frame_size(352, 240);
        assert!(data_len * 5 < full, "{data_len} vs {full}");
        // Destination mapped into the viewport.
        match &msgs[0] {
            Message::VideoInit { dst, .. } => {
                assert!(dst.w <= 320 && dst.h <= 240);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scale_yuv_identity() {
        let f = frame();
        let s = scale_yuv(&f, 352, 240);
        assert_eq!(s, f);
    }

    #[test]
    fn scale_yuv_geometry() {
        let f = frame();
        let s = scale_yuv(&f, 110, 75);
        assert_eq!((s.width, s.height), (110, 75));
        assert_eq!(s.data.len(), YuvFormat::Yv12.frame_size(110, 75));
    }

    #[test]
    fn scale_yuy2_geometry() {
        let f = YuvFrame::new(YuvFormat::Yuy2, 64, 32);
        let s = scale_yuv(&f, 16, 8);
        assert_eq!(s.data.len(), YuvFormat::Yuy2.frame_size(16, 8));
    }

    #[test]
    fn distinct_geometries_get_distinct_streams() {
        let mut m = VideoStreamManager::new();
        m.display_frame(&frame(), Rect::new(0, 0, 352, 240), 0);
        let f2 = YuvFrame::new(YuvFormat::Yv12, 176, 120);
        let msgs = m.display_frame(&f2, Rect::new(0, 0, 176, 120), 0);
        assert!(matches!(msgs[0], Message::VideoInit { id: 1, .. }));
        assert_eq!(m.streams().count(), 2);
    }
}
