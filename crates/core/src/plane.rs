//! The encode-once payload plane for broadcast fan-out.
//!
//! A shared session broadcasts the same translated commands to every
//! attached client. Without sharing, each client's flush re-compresses
//! and re-encodes identical `RAW` payloads — O(clients) encode work
//! for one screen update. The payload plane collapses that to O(
//! equivalence classes): commands with the same *payload content* at
//! the same destination and encoding share one compressed wire form,
//! produced once by whichever flush reaches it first and reused by
//! everyone else as an `Arc` bump. Content keying (FNV-1a over the
//! payload, plus length) survives the per-client command queues —
//! clipping and merging reallocate payloads per client, but on a
//! same-screen broadcast they reallocate them to identical bytes.
//! Hashing is linear in the payload but an order of magnitude cheaper
//! than the compression + encoding it replaces.
//!
//! Hash collisions cannot corrupt streams: each slot pins the payload
//! [`Bytes`] it was keyed on, and a lookup whose content does not
//! match the pinned payload byte-for-byte bypasses the plane (the
//! command encodes on the ordinary per-client path). Byte output is
//! therefore unaffected — the plane caches the *result* of the
//! per-client encode pipeline, which is a pure function of the
//! command — so streams stay bit-identical with and without it,
//! across any shard or worker count. A plane is scoped to one flush
//! round (one [`flush_all`] call or one sharded epoch).
//!
//! [`Bytes`]: thinc_protocol::Bytes
//! [`flush_all`]: crate::session::SharedSession::flush_all

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use thinc_protocol::{Bytes, DisplayCommand, Message};
use thinc_raster::Rect;

/// Payloads below this size encode faster than a map lookup under a
/// lock; they stay on the per-client path.
pub const PLANE_MIN_PAYLOAD: usize = 64;

/// Identity of one shared-encoding equivalence class: the payload
/// content (hash + length), plus the geometry and encoding that feed
/// the compression decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlaneKey {
    /// FNV-1a 64 over the payload bytes.
    content: u64,
    /// Payload length (cuts down same-hash accidents cheaply).
    len: usize,
    /// Destination rectangle (its width sets the compression stride).
    rect: (i32, i32, u32, u32),
    /// `RawEncoding` discriminant.
    encoding: u8,
}

fn plane_key(cmd: &DisplayCommand) -> Option<(PlaneKey, &Bytes)> {
    let DisplayCommand::Raw { rect, encoding, data } = cmd else {
        return None;
    };
    if data.len() < PLANE_MIN_PAYLOAD {
        return None;
    }
    Some((
        PlaneKey {
            content: thinc_protocol::fnv64(data),
            len: data.len(),
            rect: rect_key(rect),
            encoding: *encoding as u8,
        },
        data,
    ))
}

fn rect_key(r: &Rect) -> (i32, i32, u32, u32) {
    (r.x, r.y, r.w, r.h)
}

/// The final wire form of a command: the message that goes on the
/// wire, its encoded size, and its rev-3 cache key (when cacheable).
/// A pure function of the command, so whichever client computes it
/// first computes the same bytes every other client would have.
#[derive(Debug, Clone)]
pub struct WireForm {
    /// The emitted message (payload possibly compressed).
    pub msg: Message,
    /// Encoded frame size in bytes.
    pub size: u64,
    /// Content-cache key of the encoded frame, if cacheable.
    pub key: Option<u64>,
}

/// One equivalence class slot: the wire form, produced at most once.
///
/// The slot pins the payload it was keyed on so later lookups can
/// verify content equality byte-for-byte — a hash collision is
/// detected, not silently served.
#[derive(Debug)]
pub struct PlaneSlot {
    form: OnceLock<WireForm>,
    pin: Bytes,
}

impl PlaneSlot {
    fn pinned(pin: Bytes) -> Self {
        Self { form: OnceLock::new(), pin }
    }

    /// The slot's wire form, running `init` exactly once across all
    /// clients (and threads) that reach this slot.
    pub fn form_or_init(&self, init: impl FnOnce() -> WireForm) -> &WireForm {
        self.form.get_or_init(init)
    }
}

/// The per-round shared-encoding table. Cheap to create; create one
/// per flush round and drop it with the round.
#[derive(Debug, Default)]
pub struct WirePlane {
    slots: Mutex<HashMap<PlaneKey, Arc<PlaneSlot>>>,
}

impl WirePlane {
    /// An empty plane for one flush round.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared slot for `cmd`, or `None` when the command is not
    /// shareable (not a `RAW`, payload too small to be worth the
    /// lock, or — vanishingly rarely — a hash collision with an
    /// existing class, which must take the per-client path to keep
    /// the bytes right).
    pub fn slot(&self, cmd: &DisplayCommand) -> Option<Arc<PlaneSlot>> {
        let (key, data) = plane_key(cmd)?;
        let mut slots = self.slots.lock().expect("plane lock poisoned");
        match slots.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let slot = e.get();
                (slot.pin == *data).then(|| Arc::clone(slot))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                Some(Arc::clone(v.insert(Arc::new(PlaneSlot::pinned(data.clone())))))
            }
        }
    }

    /// Number of distinct equivalence classes seen this round.
    pub fn classes(&self) -> usize {
        self.slots.lock().expect("plane lock poisoned").len()
    }
}

/// Deterministic accounting for the encode-once plane, accumulated
/// per client during a flush and merged in client order afterwards.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlaneCounters {
    /// Messages sent whose wire form came from the plane.
    pub shared_sends: u64,
    /// Sum of those messages' full-form sizes (before any per-client
    /// cache-ref substitution) — what every client *would* have
    /// encoded on its own.
    pub shared_bytes: u64,
    /// Wire forms actually produced (one per equivalence class that
    /// reached the wire); independent of shard and worker counts.
    pub encodes: u64,
    /// Bytes of wire forms actually produced.
    pub encoded_bytes: u64,
}

impl PlaneCounters {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &PlaneCounters) {
        self.shared_sends += other.shared_sends;
        self.shared_bytes += other.shared_bytes;
        self.encodes += other.encodes;
        self.encoded_bytes += other.encoded_bytes;
    }

    /// Fraction of plane-served sends that reused an already-produced
    /// wire form (0 when nothing went through the plane).
    pub fn hit_ratio(&self) -> f64 {
        if self.shared_sends == 0 {
            return 0.0;
        }
        (self.shared_sends - self.encodes.min(self.shared_sends)) as f64
            / self.shared_sends as f64
    }

    /// Encode output bytes the plane saved clients from producing
    /// themselves.
    pub fn bytes_amortized(&self) -> u64 {
        self.shared_bytes.saturating_sub(self.encoded_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_protocol::{Bytes, RawEncoding};

    fn raw(data: &Bytes) -> DisplayCommand {
        DisplayCommand::Raw {
            rect: Rect::new(0, 0, 16, 16),
            encoding: RawEncoding::None,
            data: data.clone(),
        }
    }

    #[test]
    fn same_allocation_shares_a_slot() {
        let plane = WirePlane::new();
        let data = Bytes::from(vec![7u8; 768]);
        let a = plane.slot(&raw(&data)).unwrap();
        let b = plane.slot(&raw(&data)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(plane.classes(), 1);
    }

    #[test]
    fn equal_content_in_distinct_allocations_shares_a_slot() {
        // The per-client queues reallocate payloads (clip, merge);
        // content keying must see through that.
        let plane = WirePlane::new();
        let a = Bytes::from(vec![7u8; 768]);
        let b = Bytes::from(vec![7u8; 768]); // Equal content, new Arc.
        let sa = plane.slot(&raw(&a)).unwrap();
        let sb = plane.slot(&raw(&b)).unwrap();
        assert!(Arc::ptr_eq(&sa, &sb));
        assert_eq!(plane.classes(), 1);
    }

    #[test]
    fn distinct_content_gets_distinct_slots() {
        let plane = WirePlane::new();
        let a = Bytes::from(vec![7u8; 768]);
        let b = Bytes::from(vec![9u8; 768]);
        let sa = plane.slot(&raw(&a)).unwrap();
        let sb = plane.slot(&raw(&b)).unwrap();
        assert!(!Arc::ptr_eq(&sa, &sb));
        assert_eq!(plane.classes(), 2);
    }

    #[test]
    fn small_and_non_raw_commands_bypass_the_plane() {
        let plane = WirePlane::new();
        let tiny = Bytes::from(vec![1u8; PLANE_MIN_PAYLOAD - 1]);
        assert!(plane.slot(&raw(&tiny)).is_none());
        let copy = DisplayCommand::Copy {
            src_rect: Rect::new(0, 0, 4, 4),
            dst_x: 1,
            dst_y: 1,
        };
        assert!(plane.slot(&copy).is_none());
    }

    #[test]
    fn form_initializes_exactly_once() {
        let slot = PlaneSlot::pinned(Bytes::from(Vec::new()));
        let mut inits = 0;
        for _ in 0..3 {
            slot.form_or_init(|| {
                inits += 1;
                WireForm { msg: Message::CacheRef { hash: 9 }, size: 14, key: None }
            });
        }
        assert_eq!(inits, 1);
    }

    #[test]
    fn counters_merge_and_ratio() {
        let mut a = PlaneCounters {
            shared_sends: 8,
            shared_bytes: 800,
            encodes: 2,
            encoded_bytes: 200,
        };
        let b = PlaneCounters {
            shared_sends: 2,
            shared_bytes: 200,
            encodes: 0,
            encoded_bytes: 0,
        };
        a.merge(&b);
        assert_eq!(a.shared_sends, 10);
        assert!((a.hit_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(a.bytes_amortized(), 800);
    }
}
