//! The virtual audio driver (§4.2, §7).
//!
//! THINC applies its virtual-driver idea to audio: a virtualized
//! device (an ALSA kernel module in the prototype) intercepts PCM
//! data at the device layer, timestamps it, packetizes it, and sends
//! it to the client. Operating at the device layer makes every audio
//! library work unmodified. Timestamps let the client reproduce the
//! server's A/V synchronization.

use thinc_protocol::message::Message;

/// Packetization target: one audio message per this many bytes.
pub const DEFAULT_PACKET_BYTES: usize = 4096;

/// A virtual audio output device.
#[derive(Debug)]
pub struct VirtualAudioDriver {
    /// Sample rate in Hz.
    sample_rate: u32,
    /// Bytes per sample frame (channels × sample size).
    frame_bytes: u32,
    packet_bytes: usize,
    /// Bytes accepted since the device opened.
    bytes_written: u64,
    next_seq: u32,
    pending: Vec<u8>,
    /// Device-clock origin in microseconds of virtual time.
    start_us: u64,
}

impl VirtualAudioDriver {
    /// Opens a device: `sample_rate` Hz, `channels` × 16-bit samples,
    /// clock origin `start_us`.
    pub fn new(sample_rate: u32, channels: u32, start_us: u64) -> Self {
        Self {
            sample_rate,
            frame_bytes: channels * 2,
            packet_bytes: DEFAULT_PACKET_BYTES,
            bytes_written: 0,
            next_seq: 0,
            pending: Vec::new(),
            start_us,
        }
    }

    /// Overrides the packetization size.
    pub fn with_packet_bytes(mut self, bytes: usize) -> Self {
        self.packet_bytes = bytes.max(1);
        self
    }

    /// Bytes per second of the PCM stream.
    pub fn bytes_per_sec(&self) -> u64 {
        self.sample_rate as u64 * self.frame_bytes as u64
    }

    /// The device-clock timestamp of the byte at `offset`.
    fn timestamp_of(&self, offset: u64) -> u64 {
        self.start_us + offset * 1_000_000 / self.bytes_per_sec()
    }

    /// Applications write PCM data; full packets are returned as
    /// timestamped protocol messages.
    pub fn write(&mut self, pcm: &[u8]) -> Vec<Message> {
        self.pending.extend_from_slice(pcm);
        let mut out = Vec::new();
        while self.pending.len() >= self.packet_bytes {
            let data: Vec<u8> = self.pending.drain(..self.packet_bytes).collect();
            out.push(self.packet(data));
        }
        out
    }

    /// Flushes any buffered remainder as a final (short) packet.
    pub fn drain(&mut self) -> Option<Message> {
        if self.pending.is_empty() {
            return None;
        }
        let data = std::mem::take(&mut self.pending);
        Some(self.packet(data))
    }

    fn packet(&mut self, data: Vec<u8>) -> Message {
        let timestamp_us = self.timestamp_of(self.bytes_written);
        self.bytes_written += data.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        Message::Audio {
            seq,
            timestamp_us,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cd_quality() -> VirtualAudioDriver {
        // 44.1 kHz stereo 16-bit, as the benchmark clip.
        VirtualAudioDriver::new(44_100, 2, 0)
    }

    #[test]
    fn packetizes_at_boundary() {
        let mut d = cd_quality().with_packet_bytes(1000);
        let msgs = d.write(&vec![0u8; 2500]);
        assert_eq!(msgs.len(), 2);
        let tail = d.drain().unwrap();
        match tail {
            Message::Audio { data, seq, .. } => {
                assert_eq!(data.len(), 500);
                assert_eq!(seq, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(d.drain().is_none());
    }

    #[test]
    fn timestamps_follow_device_clock() {
        let mut d = cd_quality().with_packet_bytes(44_100 * 4); // 1 s.
        let msgs = d.write(&vec![0u8; 44_100 * 4 * 2]);
        assert_eq!(msgs.len(), 2);
        let ts: Vec<u64> = msgs
            .iter()
            .map(|m| match m {
                Message::Audio { timestamp_us, .. } => *timestamp_us,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ts[0], 0);
        assert_eq!(ts[1], 1_000_000);
    }

    #[test]
    fn clock_origin_offsets_timestamps() {
        let mut d = VirtualAudioDriver::new(8000, 1, 500_000).with_packet_bytes(16_000);
        let msgs = d.write(&vec![0u8; 16_000]);
        match &msgs[0] {
            Message::Audio { timestamp_us, .. } => assert_eq!(*timestamp_us, 500_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sequence_numbers_increment() {
        let mut d = cd_quality().with_packet_bytes(10);
        let msgs = d.write(&vec![0u8; 35]);
        let seqs: Vec<u32> = msgs
            .iter()
            .map(|m| match m {
                Message::Audio { seq, .. } => *seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn bitrate_math() {
        let d = cd_quality();
        assert_eq!(d.bytes_per_sec(), 176_400);
    }
}
