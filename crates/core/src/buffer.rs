//! The per-client command buffer with SRSF delivery (§5).
//!
//! The buffer combines the command-queue eviction/merge semantics of
//! §4 with the multi-queue scheduler of §5 and the non-blocking flush
//! pipeline: commands are committed to the (simulated) socket only as
//! buffer space allows, large `RAW` updates are split on demand, and
//! everything left over stays buffered — where later drawing may still
//! evict it ("the client buffer ensures that outdated commands are
//! automatically evicted").

use std::collections::VecDeque;

use thinc_net::tcp::TcpPipe;
use thinc_net::time::SimTime;
use thinc_net::trace::{Direction, PacketTrace};
use thinc_protocol::commands::{DisplayCommand, RawEncoding};
use thinc_protocol::message::Message;
use thinc_protocol::wire::encode_message_into;
use thinc_raster::Region;
use thinc_telemetry::{ProtocolMetrics, SchedulerMetrics};

use crate::plane::{PlaneCounters, WireForm, WirePlane};
use crate::queue::{classify, clip_command, OverwriteClass};
use crate::scheduler::{creates_dependency, place, queue_index, QueueSlot, NUM_QUEUES};

/// Server-side per-client content-cache state (protocol revision 3).
///
/// The ledger maps content hash → full message for every cacheable
/// payload this buffer has actually committed to the wire, so a
/// [`Message::CacheRef`] is only ever emitted for content the client
/// was given, and a reported miss can be answered with the byte-exact
/// original. See `docs/CACHE.md` for the consistency model.
#[derive(Debug)]
struct CacheEngine {
    ledger: thinc_protocol::cache::CacheLru<Message>,
    /// Byte-exact full payloads owed to reported misses, delivered
    /// ahead of the command queues at the next flush.
    fallbacks: VecDeque<Message>,
    hits: u64,
    misses: u64,
    bytes_saved: u64,
}

/// Ledger update owed once a flush-time message actually sends.
#[derive(Debug, Clone, Copy)]
enum CacheCommit {
    /// Not cacheable (or cache disabled): nothing owed.
    None,
    /// A reference was substituted: bump the entry, count the hit.
    Hit {
        /// Content hash of the referenced entry.
        key: u64,
        /// Wire bytes the substitution saved.
        saved: u64,
    },
    /// A cacheable full payload went out: the client now holds it.
    Insert {
        /// Content hash of the sent payload.
        key: u64,
    },
}

/// One command waiting in the buffer.
#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    cmd: DisplayCommand,
    class: OverwriteClass,
    visible: Region,
    slot: QueueSlot,
    /// Virtual time the original drawing entered the buffer (split
    /// remainders inherit it, so flush latency spans the whole wait).
    enqueued: SimTime,
}

/// Delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Commands pushed into the buffer.
    pub pushed: u64,
    /// Commands evicted before ever being sent (stale updates).
    pub evicted: u64,
    /// Commands merged into predecessors.
    pub merged: u64,
    /// Protocol messages actually sent.
    pub sent_messages: u64,
    /// Wire bytes actually sent.
    pub sent_bytes: u64,
    /// Times a large command was split to avoid blocking.
    pub splits: u64,
    /// Commands evicted to keep the buffer under its byte bound
    /// (their footprint becomes refresh debt).
    pub overflow_evicted: u64,
}

/// The per-client buffer: eviction + SRSF scheduling + flush.
#[derive(Debug, Default)]
pub struct ClientBuffer {
    entries: Vec<Entry>,
    realtime: VecDeque<u64>,
    queues: [VecDeque<u64>; NUM_QUEUES],
    next_seq: u64,
    stats: BufferStats,
    /// Compress RAW payloads at emission when it helps (bpp of the
    /// session format; `None` disables compression).
    raw_compress_bpp: Option<usize>,
    /// Ablation switch: deliver strictly in arrival order instead of
    /// SRSF (trivially order-safe; used to measure what the
    /// multi-queue scheduler buys).
    fifo: bool,
    /// Virtual time of the latest `set_time` call; stamps entries for
    /// enqueue-to-wire latency.
    clock: SimTime,
    /// Scheduler telemetry: queue depths, merges/evictions/splits,
    /// flush latency.
    scheduler_metrics: SchedulerMetrics,
    /// Per-command wire accounting for the display path.
    protocol_metrics: ProtocolMetrics,
    /// Hard cap on buffered wire bytes (`None` = unbounded). Pushing
    /// past the cap evicts buffered commands, largest-queue first,
    /// recording their footprint as overflow debt.
    byte_bound: Option<u64>,
    /// Screen area owed a refresh because commands covering it were
    /// evicted for overflow. The owner (the server) converts this into
    /// fresh RAW updates from its authoritative screen.
    overflow_debt: Region,
    /// Degradation knob: divisor applied to the byte bound while the
    /// session is degraded (0 behaves as 1 — no tightening).
    degrade_bound_divisor: u64,
    /// Degradation knob: when set, overflow eviction prefers RAW
    /// victims over the compact SFILL/PFILL/COPY commands.
    degrade_raw_first: bool,
    /// Reusable compression buffers: flush-time RAW compression of
    /// one command after another reuses the filter intermediate and
    /// the output stream instead of reallocating per command.
    scratch: thinc_compress::Scratch,
    /// Reusable wire-encoding buffer: sizing and framing one message
    /// after another reuses this allocation instead of building a
    /// fresh `Vec` per message.
    encode_buf: Vec<u8>,
    /// Content-addressed cache ledger (`None` until the handshake
    /// negotiates protocol revision 3 and the owner enables it).
    cache: Option<CacheEngine>,
}

impl ClientBuffer {
    /// An empty buffer with RAW compression disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables PNG-like compression of RAW payloads at emission time
    /// (`bpp` = bytes per pixel of the session pixel format).
    pub fn with_raw_compression(mut self, bpp: usize) -> Self {
        self.raw_compress_bpp = Some(bpp);
        self
    }

    /// Replaces SRSF with strict arrival-order delivery (ablation).
    pub fn with_fifo_scheduling(mut self) -> Self {
        self.fifo = true;
        self
    }

    /// Caps buffered wire bytes at `bytes`. When a push would exceed
    /// the cap, buffered commands are evicted — largest size queue
    /// first, oldest within a queue — and their screen footprint
    /// accumulates as *overflow debt* for the owner to repay with a
    /// fresh-screen refresh ([`take_overflow_debt`]
    /// (Self::take_overflow_debt)). Memory stays bounded no matter how
    /// far the network falls behind; the screen degrades gracefully
    /// (a region refreshes late, with final content) instead of the
    /// session dying or the server bloating.
    pub fn with_byte_bound(mut self, bytes: u64) -> Self {
        self.byte_bound = Some(bytes);
        self
    }

    /// The configured byte cap, if any.
    pub fn byte_bound(&self) -> Option<u64> {
        self.byte_bound
    }

    /// Enables the content-addressed cache ledger (protocol revision
    /// 3) with the given byte budget. Called by the owner once the
    /// handshake lands on a revision that speaks cache references; the
    /// budget must match the client store's for the eviction mirror to
    /// hold (see `docs/CACHE.md`).
    pub fn enable_cache(&mut self, budget: u64) {
        if self.cache.is_none() {
            self.cache = Some(CacheEngine {
                ledger: thinc_protocol::cache::CacheLru::new(budget),
                fallbacks: VecDeque::new(),
                hits: 0,
                misses: 0,
                bytes_saved: 0,
            });
        }
    }

    /// Whether the cache ledger is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Answers a client-reported cache miss: queues the byte-exact
    /// original payload for delivery ahead of the command queues.
    /// Returns `false` when the ledger no longer holds the payload
    /// (both sides evicted it; a ref for it can no longer be emitted,
    /// but one may still be crossing the wire) — the owner escalates
    /// to a screen refresh so the client reconverges regardless.
    pub fn satisfy_cache_miss(&mut self, hash: u64) -> bool {
        let Some(cache) = self.cache.as_mut() else {
            return false;
        };
        cache.misses += 1;
        // LRU order is deliberately not touched here: the ledger must
        // mirror the client store, and the client only re-ranks the
        // entry when the fallback payload actually arrives — which is
        // when the flush path re-inserts it on this side too.
        if let Some(msg) = cache.ledger.peek(hash) {
            cache.fallbacks.push_back(msg.clone());
            true
        } else {
            false
        }
    }

    /// Every key the cache ledger currently holds, sorted ascending
    /// (empty when the cache is disabled). Lets a harness verify the
    /// ledger mirrors the client store entry-for-entry.
    pub fn cache_keys(&self) -> Vec<u64> {
        match &self.cache {
            Some(c) => c.ledger.keys(),
            None => Vec::new(),
        }
    }

    /// Miss fallbacks queued but not yet delivered.
    pub fn fallbacks_pending(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.fallbacks.len())
    }

    /// Cache counters: `(hits, misses, evictions, bytes_saved)`.
    pub fn cache_counts(&self) -> (u64, u64, u64, u64) {
        match &self.cache {
            Some(c) => (c.hits, c.misses, c.ledger.evictions(), c.bytes_saved),
            None => (0, 0, 0, 0),
        }
    }

    /// The byte cap currently enforced: the configured bound divided
    /// by the degradation divisor (never below one wire message's
    /// practical floor of 1 byte).
    pub fn effective_byte_bound(&self) -> Option<u64> {
        self.byte_bound
            .map(|b| (b / self.degrade_bound_divisor.max(1)).max(1))
    }

    /// Applies (or releases) degradation pressure: `bound_divisor`
    /// tightens the byte bound, `raw_first` switches overflow
    /// eviction to prefer RAW victims. A tightened bound is enforced
    /// immediately — standing backlog over the new cap becomes
    /// refresh debt right away.
    pub fn set_degradation(&mut self, bound_divisor: u64, raw_first: bool) {
        self.degrade_bound_divisor = bound_divisor.max(1);
        self.degrade_raw_first = raw_first;
        self.enforce_byte_bound();
    }

    /// Takes the screen region owed a refresh by overflow evictions,
    /// leaving it empty. The owner converts it into RAW updates from
    /// the authoritative screen content.
    pub fn take_overflow_debt(&mut self) -> Region {
        std::mem::take(&mut self.overflow_debt)
    }

    /// Whether overflow evictions have left unpaid refresh debt.
    pub fn has_overflow_debt(&self) -> bool {
        !self.overflow_debt.is_empty()
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Advances the buffer's notion of virtual time. Commands pushed
    /// after this call are stamped with `now` for enqueue-to-wire
    /// latency accounting.
    pub fn set_time(&mut self, now: SimTime) {
        if now > self.clock {
            self.clock = now;
        }
    }

    /// Scheduler telemetry: per-band queue depths, merge/eviction
    /// counts, flush latency.
    pub fn scheduler_metrics(&self) -> &SchedulerMetrics {
        &self.scheduler_metrics
    }

    /// Per-command wire accounting for display messages sent by this
    /// buffer.
    pub fn protocol_metrics(&self) -> &ProtocolMetrics {
        &self.protocol_metrics
    }

    /// Number of commands waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total buffered wire bytes (uncompressed estimate).
    pub fn pending_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.cmd.wire_size()).sum()
    }

    fn entry_pos(&self, seq: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.seq == seq)
    }

    /// Pushes a display command for delivery, then enforces the byte
    /// bound (if configured) by evicting overflow into refresh debt.
    pub fn push(&mut self, cmd: DisplayCommand, realtime: bool) {
        self.push_unbounded(cmd, realtime);
        self.enforce_byte_bound();
    }

    /// Pushes without bound enforcement. Used for refresh commands
    /// that *repay* overflow debt: evicting those for overflow again
    /// would loop; their total is bounded by one screenful anyway.
    pub(crate) fn push_unbounded(&mut self, cmd: DisplayCommand, realtime: bool) {
        self.stats.pushed += 1;
        let class = classify(&cmd);
        let dest = cmd.dest_rect();
        // Regions still *read* by queued COPY commands must not be
        // evicted or clipped out from under them: the copy needs its
        // source content delivered first (the overwriter is ordered
        // after the copy by the dependency rule below, so keeping the
        // full command is correct, merely unclipped).
        let mut protected = Region::new();
        for e in &self.entries {
            if let DisplayCommand::Copy { src_rect, .. } = &e.cmd {
                protected.union_rect(src_rect);
            }
        }
        // Eviction pass (opaque newcomers overwrite).
        if matches!(class, OverwriteClass::Complete | OverwriteClass::Partial) && !dest.is_empty()
        {
            let mut cover = Region::from_rect(dest);
            cover.subtract(&protected);
            let mut dead = Vec::new();
            for e in &mut self.entries {
                // Any exactly-clippable opaque command — partial by
                // class, or a solid fill — is clipped to its still-
                // visible remainder; everything else is only evicted
                // when fully covered (unclippable survivors are kept
                // ordered by the dependency rule below).
                let clippable = matches!(e.class, OverwriteClass::Partial)
                    || (e.class == OverwriteClass::Complete
                        && crate::queue::exactly_clippable(&e.cmd));
                if clippable {
                    e.visible.subtract(&cover);
                    if e.visible.is_empty() {
                        dead.push(e.seq);
                    }
                } else if cover.contains_rect(&e.cmd.dest_rect()) {
                    dead.push(e.seq);
                }
            }
            for seq in dead {
                self.remove_entry(seq);
                self.stats.evicted += 1;
                self.scheduler_metrics.record_eviction();
            }
        }
        // Merge with the newest live entry when compatible and in the
        // same delivery class.
        if let Some(last) = self.entries.last_mut() {
            let same_rt = matches!(last.slot, QueueSlot::Realtime) == realtime;
            if same_rt {
                if let Some(merged) = crate::queue::merge_commands(&last.cmd, &cmd) {
                    self.stats.merged += 1;
                    self.scheduler_metrics.record_merge();
                    let old_slot = last.slot;
                    last.cmd = merged;
                    last.visible = Region::from_rect(last.cmd.dest_rect());
                    last.class = classify(&last.cmd);
                    // Re-slot for the (larger) merged size.
                    let seq = last.seq;
                    let new_slot = match old_slot {
                        QueueSlot::Realtime => QueueSlot::Realtime,
                        QueueSlot::Normal(q) => {
                            QueueSlot::Normal(q.max(queue_index(last.cmd.wire_size())))
                        }
                    };
                    if new_slot != old_slot {
                        last.slot = new_slot;
                        self.requeue(seq, old_slot, new_slot);
                    }
                    return;
                }
            }
        }
        // Dependency placement. Overlap is computed over the
        // commands' dependency regions (destination, plus COPY's
        // source), so an overwriter of a copy's source is ordered
        // behind the copy, and a copy is ordered behind whatever drew
        // its source.
        let transparent = class == OverwriteClass::Transparent;
        let my_rects = crate::queue::dependency_rects(&cmd);
        // A dependency may itself sit in a later queue than its size
        // suggests (it was displaced by its own dependencies), so the
        // placement bound is the maximum dependency *slot*, which is
        // at least as late as the paper's largest-dependency rule.
        let mut max_dep_slot: Option<QueueSlot> = None;
        for e in &self.entries {
            let e_transparent = e.class == OverwriteClass::Transparent;
            let e_rects = crate::queue::dependency_rects(&e.cmd);
            // Two conditions force ordering:
            // 1. the paper's transparent rule, over dependency regions
            //    (destination plus COPY source);
            // 2. the earlier entry *still draws* pixels this command
            //    touches or reads — true for unclippable opaque
            //    commands and for partial commands whose footprint was
            //    kept alive by COPY-source protection. Fully clipped
            //    entries have disjoint output, so reordering is safe.
            let depends = my_rects.iter().any(|a| {
                e_rects
                    .iter()
                    .any(|b| creates_dependency(transparent, e_transparent, a, b))
                    || e.visible.intersects_rect(a)
            });
            if depends {
                max_dep_slot = Some(match (max_dep_slot, e.slot) {
                    (None, s) => s,
                    (Some(QueueSlot::Realtime), s) | (Some(s), QueueSlot::Realtime) => s,
                    (Some(QueueSlot::Normal(a)), QueueSlot::Normal(b)) => {
                        QueueSlot::Normal(a.max(b))
                    }
                });
            }
        }
        let slot = if self.fifo {
            // Single queue, strict arrival order.
            QueueSlot::Normal(NUM_QUEUES - 1)
        } else {
            place(cmd.wire_size(), realtime, max_dep_slot)
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Entry {
            seq,
            cmd,
            class,
            visible: Region::from_rect(dest),
            slot,
            enqueued: self.clock,
        });
        match slot {
            QueueSlot::Realtime => self.realtime.push_back(seq),
            QueueSlot::Normal(q) => self.queues[q].push_back(seq),
        }
        match slot {
            QueueSlot::Normal(q) => {
                self.scheduler_metrics
                    .sample_depth(q, self.queues[q].len(), self.realtime.len());
            }
            QueueSlot::Realtime => {
                self.scheduler_metrics
                    .sample_realtime_depth(self.realtime.len());
            }
        }
    }

    /// Drops every pending command, returning the union of their
    /// still-visible destination footprints — in the coordinate space
    /// the commands were pushed in. Used when the scale policy
    /// changes mid-flight: buffered commands target the outgoing
    /// space (and scaling may even have rewritten their overwrite
    /// class, e.g. an opaque BITMAP resampled into RAW), so flushing
    /// them under the new scale would paint the wrong regions. The
    /// caller converts the returned footprint into refresh debt.
    pub(crate) fn drop_pending_for_rescale(&mut self) -> Region {
        let mut footprint = Region::new();
        for e in &self.entries {
            footprint.union(&e.visible);
        }
        self.entries.clear();
        // Queue deques are cleaned lazily at pop time.
        //
        // Queued miss fallbacks are dropped too: they carry payloads
        // captured in the outgoing coordinate space, and unlike the
        // command queues they would otherwise survive the rescale and
        // ship wrong-space pixels after it. Dropping is safe on both
        // axes: the client never blocks on an unanswered miss (the
        // refresh owed by the rescale repaints the content), and the
        // ledger/store mirror is untouched because the ledger insert
        // for a fallback happens only when it is actually sent.
        if let Some(cache) = self.cache.as_mut() {
            cache.fallbacks.clear();
        }
        footprint
    }

    fn remove_entry(&mut self, seq: u64) {
        if let Some(pos) = self.entry_pos(seq) {
            self.entries.remove(pos);
        }
        // Queue deques are cleaned lazily at pop time.
    }

    /// Evicts buffered commands until pending bytes fit the bound,
    /// converting every evicted footprint into overflow debt.
    fn enforce_byte_bound(&mut self) {
        let Some(bound) = self.effective_byte_bound() else {
            return;
        };
        while self.pending_bytes() > bound {
            let Some(seq) = self.overflow_victim() else {
                break;
            };
            self.evict_for_overflow(seq);
        }
    }

    /// Picks the next overflow victim: the *oldest* buffered command
    /// (stale content is the least valuable — it has waited longest
    /// and is the most likely to be overdrawn again before delivery);
    /// realtime entries only when nothing else is left. Under
    /// raw-first degradation, oldest RAW first — RAW is the bulky
    /// fallback format, and evicting it preserves the compact
    /// SFILL/PFILL/COPY commands the degraded link can still afford.
    fn overflow_victim(&self) -> Option<u64> {
        if self.degrade_raw_first {
            if let Some(e) = self
                .entries
                .iter()
                .filter(|e| {
                    !matches!(e.slot, QueueSlot::Realtime)
                        && matches!(e.cmd, DisplayCommand::Raw { .. })
                })
                .min_by_key(|e| e.seq)
            {
                return Some(e.seq);
            }
        }
        self.entries
            .iter()
            .filter(|e| !matches!(e.slot, QueueSlot::Realtime))
            .min_by_key(|e| e.seq)
            .or_else(|| self.entries.iter().min_by_key(|e| e.seq))
            .map(|e| e.seq)
    }

    /// Removes `seq` for overflow, recording its footprint as refresh
    /// debt. Any queued COPY reading from the debt region can no
    /// longer trust its source pixels, so it cascades: the COPY is
    /// evicted too and its destination joins the debt (which the
    /// refresh repays with final content, restoring correctness).
    fn evict_for_overflow(&mut self, seq: u64) {
        let Some(pos) = self.entry_pos(seq) else { return };
        let mut debt = self.entries[pos].visible.clone();
        debt.union_rect(&self.entries[pos].cmd.dest_rect());
        self.entries.remove(pos);
        self.stats.overflow_evicted += 1;
        self.scheduler_metrics.record_eviction();
        loop {
            let dependent = self.entries.iter().find_map(|e| match &e.cmd {
                DisplayCommand::Copy { src_rect, .. } if debt.intersects_rect(src_rect) => {
                    Some(e.seq)
                }
                _ => None,
            });
            let Some(dep) = dependent else { break };
            let p = self.entry_pos(dep).expect("entry just found");
            debt.union_rect(&self.entries[p].cmd.dest_rect());
            self.entries.remove(p);
            self.stats.overflow_evicted += 1;
            self.scheduler_metrics.record_eviction();
        }
        self.overflow_debt.union(&debt);
    }

    fn requeue(&mut self, seq: u64, old: QueueSlot, new: QueueSlot) {
        let deque = match old {
            QueueSlot::Realtime => &mut self.realtime,
            QueueSlot::Normal(q) => &mut self.queues[q],
        };
        if let Some(pos) = deque.iter().position(|&s| s == seq) {
            deque.remove(pos);
        }
        match new {
            QueueSlot::Realtime => self.realtime.push_back(seq),
            QueueSlot::Normal(q) => self.queues[q].push_back(seq),
        }
    }

    /// Encodes a command into its final wire message, applying RAW
    /// compression lazily at emission ("commands are not broken up
    /// [or encoded] in advance ... to adapt to changing conditions").
    fn emit_message(&mut self, cmd: DisplayCommand) -> Message {
        if let (Some(bpp), DisplayCommand::Raw { rect, encoding: RawEncoding::None, data }) =
            (self.raw_compress_bpp, &cmd)
        {
            if data.len() >= 1024 {
                let stride = rect.w as usize * bpp;
                let packed =
                    thinc_compress::pnglike::compress_with(data, bpp, stride, &mut self.scratch);
                if packed.len() < data.len() {
                    return Message::Display(DisplayCommand::Raw {
                        rect: *rect,
                        encoding: RawEncoding::PngLike,
                        data: packed.to_vec().into(),
                    });
                }
            }
        }
        Message::Display(cmd)
    }

    /// Computes the final wire message, its size, and the cache action
    /// owed for a command at flush time: either the full payload (with
    /// a ledger insert owed if cacheable) or, when the ledger says the
    /// client already holds these exact bytes, a compact
    /// [`Message::CacheRef`] substitute. Pure lookup — counters and
    /// LRU order move only in [`Self::cache_commit`] once the frame is
    /// actually committed to the pipe, so a blocked flush attempt has
    /// no side effects.
    fn prepare_wire(
        &mut self,
        cmd: DisplayCommand,
        plane: Option<&WirePlane>,
        counters: &mut PlaneCounters,
    ) -> (Message, u64, CacheCommit, Option<u64>) {
        let (full, full_size, key, shared) = match plane.and_then(|p| p.slot(&cmd)) {
            Some(slot) => {
                let mut fresh = false;
                let form = slot.form_or_init(|| {
                    fresh = true;
                    self.compute_form(cmd)
                });
                let (msg, size, key) = (form.msg.clone(), form.size, form.key);
                if fresh {
                    counters.encodes += 1;
                    counters.encoded_bytes += size;
                }
                (msg, size, key, Some(size))
            }
            None => {
                let form = self.compute_form(cmd);
                (form.msg, form.size, form.key, None)
            }
        };
        let Some(cache) = &self.cache else {
            return (full, full_size, CacheCommit::None, shared);
        };
        let Some(key) = key else {
            return (full, full_size, CacheCommit::None, shared);
        };
        if cache.ledger.contains(key) {
            let reference = Message::CacheRef { hash: key };
            encode_message_into(&reference, &mut self.encode_buf);
            let ref_size = self.encode_buf.len() as u64;
            (
                reference,
                ref_size,
                CacheCommit::Hit {
                    key,
                    saved: full_size - ref_size,
                },
                shared,
            )
        } else {
            (full, full_size, CacheCommit::Insert { key }, shared)
        }
    }

    /// The full wire form of a command: emitted message, encoded frame
    /// size, cache key. A pure function of the command (the scratch
    /// buffers only provide storage), which is what lets a
    /// [`WirePlane`] share the result across clients.
    fn compute_form(&mut self, cmd: DisplayCommand) -> WireForm {
        let full = self.emit_message(cmd);
        encode_message_into(&full, &mut self.encode_buf);
        let size = self.encode_buf.len() as u64;
        let key = thinc_protocol::cache::cache_key(&full, &self.encode_buf);
        WireForm { msg: full, size, key }
    }

    /// Applies the ledger update owed for a message just sent: bump
    /// and count a reference hit, or register a full payload the
    /// client now holds. Insertion order here matches the client
    /// store's receive order, which is what keeps the two LRUs
    /// mirrored.
    fn cache_commit(&mut self, msg: &Message, size: u64, commit: CacheCommit) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        match commit {
            CacheCommit::None => {}
            CacheCommit::Hit { key, saved } => {
                cache.ledger.touch(key);
                cache.hits += 1;
                cache.bytes_saved += saved;
            }
            CacheCommit::Insert { key } => {
                cache.ledger.insert(key, size, msg.clone());
            }
        }
    }

    /// Splits `cmd`'s visible output into exactly-clipped sub-commands
    /// (partial commands must not overlap later commands once the
    /// scheduler reorders; §5's correctness invariant).
    fn materialize(entry: &Entry) -> Vec<DisplayCommand> {
        let dest = entry.cmd.dest_rect();
        if entry.visible.contains_rect(&dest) {
            return vec![entry.cmd.clone()];
        }
        let mut out = Vec::new();
        for r in entry.visible.rects() {
            if let Some(c) = clip_command(&entry.cmd, r) {
                out.push(c);
            } else {
                // Not exactly clippable: fall back to the full command
                // (correct but larger; only unreachable kinds hit this).
                return vec![entry.cmd.clone()];
            }
        }
        out
    }

    /// Flushes as much as possible without blocking, in SRSF order:
    /// the real-time queue first, then size queues in increasing
    /// order. Returns `(arrival_time, message)` pairs for the client.
    ///
    /// Large uncompressed `RAW` commands are split to fill exactly the
    /// available socket space; the unsent remainder is reformatted and
    /// left at the head of its queue.
    pub fn flush(
        &mut self,
        now: SimTime,
        pipe: &mut TcpPipe,
        trace: &mut PacketTrace,
    ) -> Vec<(SimTime, Message)> {
        self.flush_shared(now, pipe, trace, None, &mut PlaneCounters::default())
    }

    /// [`flush`](Self::flush) against a shared encode-once
    /// [`WirePlane`]: eligible commands take their wire form from the
    /// plane (producing it if this client is first), and the plane
    /// traffic is accounted into `counters`. Output bytes are
    /// identical to the plain flush.
    pub fn flush_shared(
        &mut self,
        now: SimTime,
        pipe: &mut TcpPipe,
        trace: &mut PacketTrace,
        plane: Option<&WirePlane>,
        counters: &mut PlaneCounters,
    ) -> Vec<(SimTime, Message)> {
        let mut out = Vec::new();
        // Owed miss fallbacks ship before the command queues: a client
        // waiting on an unresolved reference is blocked on exactly
        // this payload.
        while let Some(msg) = self.cache.as_ref().and_then(|c| c.fallbacks.front()) {
            encode_message_into(msg, &mut self.encode_buf);
            let size = self.encode_buf.len() as u64;
            let key = thinc_protocol::cache::cache_key(msg, &self.encode_buf);
            if pipe.would_block(now, size) {
                return out;
            }
            let msg = self
                .cache
                .as_mut()
                .and_then(|c| c.fallbacks.pop_front())
                .expect("fallback peeked above");
            let (_, arrival) = pipe.send(now, size);
            trace.record(now, arrival, size, Direction::Down, "cache");
            self.stats.sent_messages += 1;
            self.stats.sent_bytes += size;
            thinc_protocol::telemetry::record_message(&mut self.protocol_metrics, &msg);
            if let Some(key) = key {
                self.cache_commit(&msg, size, CacheCommit::Insert { key });
            }
            out.push((arrival, msg));
        }
        // Realtime queue, then normal queues in increasing order.
        for qi in 0..=NUM_QUEUES {
            loop {
                let deque = if qi == 0 {
                    &mut self.realtime
                } else {
                    &mut self.queues[qi - 1]
                };
                let Some(&seq) = deque.front() else { break };
                let Some(pos) = self.entries.iter().position(|e| e.seq == seq) else {
                    // Evicted earlier; drop the stale queue slot.
                    deque.pop_front();
                    continue;
                };
                let parts = Self::materialize(&self.entries[pos]);
                let enqueued = self.entries[pos].enqueued;
                let wait_us = now.0.saturating_sub(enqueued.0);
                let mut sent_all = true;
                let mut leftover: Vec<DisplayCommand> = Vec::new();
                for (i, part) in parts.iter().enumerate() {
                    let (msg, size, commit, shared) =
                        self.prepare_wire(part.clone(), plane, counters);
                    if pipe.would_block(now, size) {
                        // Try splitting an uncompressed RAW to fit.
                        let writable = pipe.writable_bytes(now);
                        if let Some((head, tail)) = split_raw(part, writable) {
                            let (head_msg, head_size, head_commit, head_shared) =
                                self.prepare_wire(head, plane, counters);
                            if !pipe.would_block(now, head_size) {
                                let (_, arrival) = pipe.send(now, head_size);
                                trace.record(now, arrival, head_size, Direction::Down, "update");
                                self.stats.sent_messages += 1;
                                self.stats.sent_bytes += head_size;
                                self.stats.splits += 1;
                                self.scheduler_metrics.record_split();
                                self.scheduler_metrics.record_flush_latency_us(wait_us);
                                thinc_protocol::telemetry::record_message(
                                    &mut self.protocol_metrics,
                                    &head_msg,
                                );
                                if let Some(full) = head_shared {
                                    counters.shared_sends += 1;
                                    counters.shared_bytes += full;
                                }
                                self.cache_commit(&head_msg, head_size, head_commit);
                                out.push((arrival, head_msg));
                                leftover.push(tail);
                                leftover.extend(parts[i + 1..].iter().cloned());
                                sent_all = false;
                                break;
                            }
                        }
                        leftover.extend(parts[i..].iter().cloned());
                        sent_all = false;
                        break;
                    }
                    let (_, arrival) = pipe.send(now, size);
                    trace.record(now, arrival, size, Direction::Down, "update");
                    self.stats.sent_messages += 1;
                    self.stats.sent_bytes += size;
                    self.scheduler_metrics.record_flush_latency_us(wait_us);
                    thinc_protocol::telemetry::record_message(&mut self.protocol_metrics, &msg);
                    if let Some(full) = shared {
                        counters.shared_sends += 1;
                        counters.shared_bytes += full;
                    }
                    self.cache_commit(&msg, size, commit);
                    out.push((arrival, msg));
                }
                // Remove the consumed entry and its queue slot.
                let slot = self.entries[pos].slot;
                self.entries.remove(pos);
                let deque = if qi == 0 {
                    &mut self.realtime
                } else {
                    &mut self.queues[qi - 1]
                };
                deque.pop_front();
                if !sent_all {
                    // Reinsert the remainder at the head of the same
                    // queue, preserving order, and stop flushing.
                    for cmd in leftover.into_iter().rev() {
                        let class = classify(&cmd);
                        let dest = cmd.dest_rect();
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.entries.push(Entry {
                            seq,
                            cmd,
                            class,
                            visible: Region::from_rect(dest),
                            slot,
                            enqueued,
                        });
                        let deque = if qi == 0 {
                            &mut self.realtime
                        } else {
                            &mut self.queues[qi - 1]
                        };
                        deque.push_front(seq);
                    }
                    return out;
                }
            }
        }
        out
    }

    /// Adds `region` to the overflow/refresh debt the owner repays
    /// from the authoritative screen. Used by the warm-resume path to
    /// schedule exactly the tiles that changed while the session was
    /// checkpointed.
    pub(crate) fn owe_refresh_region(&mut self, region: &Region) {
        self.overflow_debt.union(region);
    }

    /// Drops the cache ledger's entries and any queued miss fallbacks
    /// (lifetime counters survive). Cold reconnect clears the client's
    /// store, so the mirrored-LRU invariant only holds if the ledger
    /// is cleared in the same breath.
    pub fn reset_cache(&mut self) {
        if let Some(cache) = self.cache.as_mut() {
            cache.ledger.clear();
            cache.fallbacks.clear();
        }
    }

    /// Serializes the buffer's full delivery state into `w`.
    ///
    /// Entries are written with their *internal* state — exact clipped
    /// visible regions, scheduler slots, deque orders, sequence
    /// numbers — rather than being replayed through [`push`]
    /// (Self::push) at restore time. Replaying would re-run the
    /// merge/evict pass against an empty buffer and produce different
    /// entries (breaking byte-exact re-checkpointing), and an entry
    /// whose visibility was clipped by a later-flushed command would
    /// repaint stale pixels if restored unclipped.
    ///
    /// Deliberately not serialized (documented losses, identical on
    /// every re-checkpoint): scheduler/protocol telemetry and the
    /// ledger's lifetime eviction count restart at zero; the scratch
    /// compression buffers are pure caches.
    pub(crate) fn encode_checkpoint(&self, w: &mut crate::checkpoint::Writer) {
        w.u64(self.next_seq);
        w.u64(self.clock.0);
        w.u64(self.stats.pushed);
        w.u64(self.stats.evicted);
        w.u64(self.stats.merged);
        w.u64(self.stats.sent_messages);
        w.u64(self.stats.sent_bytes);
        w.u64(self.stats.splits);
        w.u64(self.stats.overflow_evicted);
        w.opt_u64(self.raw_compress_bpp.map(|b| b as u64));
        w.bool(self.fifo);
        w.opt_u64(self.byte_bound);
        w.u64(self.degrade_bound_divisor);
        w.bool(self.degrade_raw_first);
        w.region(&self.overflow_debt);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u64(e.seq);
            w.u8(match e.slot {
                QueueSlot::Realtime => 0xFF,
                QueueSlot::Normal(q) => q as u8,
            });
            w.u64(e.enqueued.0);
            w.region(&e.visible);
            w.bytes(&thinc_protocol::wire::encode_message(&Message::Display(
                e.cmd.clone(),
            )));
        }
        // Deque orders are serialized separately from the entries:
        // flush-split leftovers go to the *front* of their deque with
        // fresh sequence numbers, so deque order is not derivable from
        // entry order. Stale slots (evicted entries, cleaned lazily at
        // pop) are filtered out here so a restored buffer re-encodes
        // byte-identically.
        let live = |seq: &&u64| self.entries.iter().any(|e| e.seq == **seq);
        let rt: Vec<u64> = self.realtime.iter().filter(live).copied().collect();
        w.u32(rt.len() as u32);
        for seq in rt {
            w.u64(seq);
        }
        for q in &self.queues {
            let qs: Vec<u64> = q.iter().filter(live).copied().collect();
            w.u32(qs.len() as u32);
            for seq in qs {
                w.u64(seq);
            }
        }
        match &self.cache {
            None => w.u8(0),
            Some(c) => {
                w.u8(1);
                w.u64(c.ledger.budget());
                w.u64(c.hits);
                w.u64(c.misses);
                w.u64(c.bytes_saved);
                w.u32(c.fallbacks.len() as u32);
                for msg in &c.fallbacks {
                    w.bytes(&thinc_protocol::wire::encode_message(msg));
                }
                // LRU order, least-recent first: replaying through
                // `insert` reconstructs the exact eviction order (the
                // held total fits the budget, so replay never evicts).
                let ledger: Vec<(u64, u64, Vec<u8>)> = c
                    .ledger
                    .iter_lru()
                    .map(|(k, size, v)| (k, size, thinc_protocol::wire::encode_message(v)))
                    .collect();
                w.u32(ledger.len() as u32);
                for (key, size, enc) in ledger {
                    w.u64(key);
                    w.u64(size);
                    w.bytes(&enc);
                }
            }
        }
    }

    /// Rebuilds a buffer from [`encode_checkpoint`]
    /// (Self::encode_checkpoint) output. Every length, tag, and
    /// message payload is validated — corrupt input yields a typed
    /// error, never a panic or an out-of-invariant buffer.
    pub(crate) fn decode_checkpoint(
        r: &mut crate::checkpoint::Reader<'_>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let mut buf = ClientBuffer::new();
        buf.next_seq = r.u64()?;
        buf.clock = SimTime(r.u64()?);
        buf.stats.pushed = r.u64()?;
        buf.stats.evicted = r.u64()?;
        buf.stats.merged = r.u64()?;
        buf.stats.sent_messages = r.u64()?;
        buf.stats.sent_bytes = r.u64()?;
        buf.stats.splits = r.u64()?;
        buf.stats.overflow_evicted = r.u64()?;
        buf.raw_compress_bpp = r.opt_u64()?.map(|b| b as usize);
        buf.fifo = r.bool()?;
        buf.byte_bound = r.opt_u64()?;
        buf.degrade_bound_divisor = r.u64()?;
        buf.degrade_raw_first = r.bool()?;
        buf.overflow_debt = r.region()?;
        let n_entries = r.u32()?;
        for _ in 0..n_entries {
            let seq = r.u64()?;
            let slot = match r.u8()? {
                0xFF => QueueSlot::Realtime,
                q if (q as usize) < NUM_QUEUES => QueueSlot::Normal(q as usize),
                _ => return Err(CheckpointError::Malformed("entry queue slot")),
            };
            let enqueued = SimTime(r.u64()?);
            let visible = r.region()?;
            let Message::Display(cmd) = decode_checkpoint_message(r.bytes()?)? else {
                return Err(CheckpointError::Malformed("entry is not a display command"));
            };
            buf.entries.push(Entry {
                seq,
                class: classify(&cmd),
                cmd,
                visible,
                slot,
                enqueued,
            });
        }
        let n_rt = r.u32()?;
        for _ in 0..n_rt {
            buf.realtime.push_back(r.u64()?);
        }
        for q in 0..NUM_QUEUES {
            let n = r.u32()?;
            for _ in 0..n {
                buf.queues[q].push_back(r.u64()?);
            }
        }
        match r.u8()? {
            0 => {}
            1 => {
                let budget = r.u64()?;
                let mut cache = CacheEngine {
                    ledger: thinc_protocol::cache::CacheLru::new(budget),
                    fallbacks: VecDeque::new(),
                    hits: r.u64()?,
                    misses: r.u64()?,
                    bytes_saved: r.u64()?,
                };
                let n_fallbacks = r.u32()?;
                for _ in 0..n_fallbacks {
                    cache.fallbacks.push_back(decode_checkpoint_message(r.bytes()?)?);
                }
                let n_ledger = r.u32()?;
                for _ in 0..n_ledger {
                    let key = r.u64()?;
                    let size = r.u64()?;
                    let msg = decode_checkpoint_message(r.bytes()?)?;
                    cache.ledger.insert(key, size, msg);
                }
                buf.cache = Some(cache);
            }
            _ => return Err(CheckpointError::Malformed("cache presence tag")),
        }
        Ok(buf)
    }
}

/// Decodes one revision-1-framed protocol message embedded in a
/// checkpoint, rejecting trailing garbage inside the length-prefixed
/// slot.
pub(crate) fn decode_checkpoint_message(
    data: &[u8],
) -> Result<Message, crate::checkpoint::CheckpointError> {
    match thinc_protocol::wire::decode_message(data) {
        Ok((msg, used)) if used == data.len() => Ok(msg),
        Ok(_) => Err(crate::checkpoint::CheckpointError::Malformed(
            "trailing bytes inside embedded message",
        )),
        Err(_) => Err(crate::checkpoint::CheckpointError::Malformed(
            "embedded message does not decode",
        )),
    }
}

/// Splits an uncompressed RAW command into a head that fits in
/// `budget` wire bytes and the remaining tail. Returns `None` when the
/// command is not a splittable RAW or not even one row fits.
fn split_raw(cmd: &DisplayCommand, budget: u64) -> Option<(DisplayCommand, DisplayCommand)> {
    let DisplayCommand::Raw {
        rect,
        encoding: RawEncoding::None,
        data,
    } = cmd
    else {
        return None;
    };
    if rect.h <= 1 || rect.area() == 0 || data.len() % rect.area() as usize != 0 {
        return None;
    }
    let bpp = data.len() / rect.area() as usize;
    let row_bytes = rect.w as u64 * bpp as u64;
    let header = thinc_protocol::commands::COMMAND_HEADER_BYTES + 16 + 1 + 4;
    if budget <= header + row_bytes {
        return None;
    }
    let rows = (((budget - header) / row_bytes) as u32).min(rect.h - 1);
    if rows == 0 {
        return None;
    }
    let split_at = rows as usize * row_bytes as usize;
    let head = DisplayCommand::Raw {
        rect: thinc_raster::Rect::new(rect.x, rect.y, rect.w, rows),
        encoding: RawEncoding::None,
        data: data[..split_at].to_vec().into(),
    };
    let tail = DisplayCommand::Raw {
        rect: thinc_raster::Rect::new(rect.x, rect.y + rows as i32, rect.w, rect.h - rows),
        encoding: RawEncoding::None,
        data: data[split_at..].to_vec().into(),
    };
    Some((head, tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_net::tcp::TcpParams;
    use thinc_net::time::SimDuration;
    use thinc_protocol::wire::encode_message;
    use thinc_raster::{Color, Rect};

    fn pipe() -> TcpPipe {
        TcpPipe::new(TcpParams {
            bandwidth_bps: 100_000_000,
            rtt: SimDuration::from_micros(200),
            rwnd_bytes: 1024 * 1024,
            ..TcpParams::default()
        })
    }

    fn sfill(x: i32, y: i32, w: u32, h: u32, v: u8) -> DisplayCommand {
        DisplayCommand::Sfill {
            rect: Rect::new(x, y, w, h),
            color: Color::rgb(v, v, v),
        }
    }

    fn raw(x: i32, y: i32, w: u32, h: u32) -> DisplayCommand {
        DisplayCommand::Raw {
            rect: Rect::new(x, y, w, h),
            encoding: RawEncoding::None,
            data: vec![7; (w * h * 3) as usize].into(),
        }
    }

    fn drain_all(buf: &mut ClientBuffer) -> Vec<Message> {
        let mut pipe = pipe();
        let mut trace = PacketTrace::new();
        let mut msgs = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let batch = buf.flush(now, &mut pipe, &mut trace);
            for (_, m) in batch {
                msgs.push(m);
            }
            if buf.is_empty() {
                break;
            }
            now = pipe.tx_free_at();
        }
        assert!(buf.is_empty(), "buffer did not drain");
        msgs
    }

    #[test]
    fn small_before_large() {
        let mut buf = ClientBuffer::new();
        buf.push(raw(100, 0, 100, 100), false); // Large, q9-ish.
        buf.push(sfill(0, 0, 10, 10, 1), false); // Tiny, q0.
        let msgs = drain_all(&mut buf);
        assert!(matches!(
            &msgs[0],
            Message::Display(DisplayCommand::Sfill { .. })
        ));
    }

    #[test]
    fn realtime_preempts_everything() {
        let mut buf = ClientBuffer::new();
        buf.push(sfill(0, 0, 10, 10, 1), false);
        buf.push(raw(300, 300, 50, 50), true); // Realtime but larger.
        let msgs = drain_all(&mut buf);
        assert!(matches!(&msgs[0], Message::Display(DisplayCommand::Raw { .. })));
    }

    #[test]
    fn stale_commands_evicted_before_send() {
        let mut buf = ClientBuffer::new();
        buf.push(raw(0, 0, 50, 50), false);
        buf.push(sfill(0, 0, 50, 50, 1), false); // Fully covers the RAW.
        assert_eq!(buf.stats().evicted, 1);
        let msgs = drain_all(&mut buf);
        assert_eq!(msgs.len(), 1);
    }

    #[test]
    fn partial_overwrite_sends_clipped_remainder() {
        let mut buf = ClientBuffer::new();
        buf.push(raw(0, 0, 10, 10), false);
        buf.push(sfill(0, 5, 10, 5, 1), false); // Covers bottom half.
        let msgs = drain_all(&mut buf);
        // SFILL (small) first, then the RAW clipped to the top half.
        let raw_msgs: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::Display(DisplayCommand::Raw { rect, .. }) => Some(*rect),
                _ => None,
            })
            .collect();
        assert_eq!(raw_msgs, vec![Rect::new(0, 0, 10, 5)]);
    }

    #[test]
    fn transparent_follows_dependency() {
        let mut buf = ClientBuffer::new();
        // Big RAW base, then a transparent bitmap over it.
        buf.push(raw(0, 0, 100, 100), false);
        buf.push(
            DisplayCommand::Bitmap {
                rect: Rect::new(10, 10, 16, 8),
                bits: vec![0xFF; 16],
                fg: Color::BLACK,
                bg: None,
            },
            false,
        );
        // And an unrelated small fill that may jump the queue.
        buf.push(sfill(500, 500, 5, 5, 2), false);
        let msgs = drain_all(&mut buf);
        let idx_raw = msgs
            .iter()
            .position(|m| matches!(m, Message::Display(DisplayCommand::Raw { .. })))
            .unwrap();
        let idx_bm = msgs
            .iter()
            .position(|m| matches!(m, Message::Display(DisplayCommand::Bitmap { .. })))
            .unwrap();
        assert!(idx_raw < idx_bm, "bitmap must follow its base");
    }

    #[test]
    fn opaque_over_transparent_keeps_order() {
        let mut buf = ClientBuffer::new();
        // Transparent text placed behind a big dependency...
        buf.push(raw(0, 0, 100, 100), false);
        buf.push(
            DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 16, 8),
                bits: vec![0xFF; 16],
                fg: Color::BLACK,
                bg: None,
            },
            false,
        );
        // ...then a small opaque fill partially over the text (a full
        // cover would simply evict it): must not be reordered before.
        buf.push(sfill(8, 0, 16, 8, 9), false);
        let msgs = drain_all(&mut buf);
        let idx_bm = msgs
            .iter()
            .position(|m| matches!(m, Message::Display(DisplayCommand::Bitmap { .. })))
            .unwrap();
        let idx_fill = msgs
            .iter()
            .position(|m| {
                matches!(m, Message::Display(DisplayCommand::Sfill { rect, .. }) if rect.w == 16)
            })
            .unwrap();
        assert!(idx_bm < idx_fill);
    }

    #[test]
    fn nonblocking_flush_splits_large_raw() {
        // Tiny socket buffer forces splitting.
        let mut p = TcpPipe::new(TcpParams {
            bandwidth_bps: 1_000_000,
            rtt: SimDuration::from_millis(50),
            rwnd_bytes: 16 * 1024,
            sndbuf_bytes: 8 * 1024,
            ..TcpParams::default()
        });
        let mut trace = PacketTrace::new();
        let mut buf = ClientBuffer::new();
        buf.push(raw(0, 0, 200, 100), false); // 60 KB.
        let first = buf.flush(SimTime::ZERO, &mut p, &mut trace);
        assert!(!first.is_empty());
        assert!(!buf.is_empty(), "remainder must stay buffered");
        assert!(buf.stats().splits >= 1);
        // Drain over time.
        let mut now = p.tx_free_at();
        let mut rows = 0u32;
        for (_, m) in &first {
            if let Message::Display(DisplayCommand::Raw { rect, .. }) = m {
                rows += rect.h;
            }
        }
        for _ in 0..10_000 {
            if buf.is_empty() {
                break;
            }
            for (_, m) in buf.flush(now, &mut p, &mut trace) {
                if let Message::Display(DisplayCommand::Raw { rect, .. }) = m {
                    rows += rect.h;
                }
            }
            now = p.tx_free_at().max(now + SimDuration::from_millis(5));
        }
        assert!(buf.is_empty());
        assert_eq!(rows, 100, "all rows delivered exactly once");
    }

    #[test]
    fn eviction_works_after_partial_flush() {
        let mut p = TcpPipe::new(TcpParams {
            bandwidth_bps: 1_000_000,
            rtt: SimDuration::from_millis(50),
            sndbuf_bytes: 8 * 1024,
            ..TcpParams::default()
        });
        let mut trace = PacketTrace::new();
        let mut buf = ClientBuffer::new();
        buf.push(raw(0, 0, 200, 100), false);
        buf.flush(SimTime::ZERO, &mut p, &mut trace);
        assert!(!buf.is_empty());
        // New fill covers everything: the unsent tail is evicted.
        buf.push(sfill(0, 0, 200, 100, 1), false);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn raw_compression_shrinks_flat_payloads() {
        let mut buf = ClientBuffer::new().with_raw_compression(3);
        buf.push(raw(0, 0, 100, 100), false); // All-sevens payload.
        let mut p = pipe();
        let mut trace = PacketTrace::new();
        let msgs = buf.flush(SimTime::ZERO, &mut p, &mut trace);
        assert_eq!(msgs.len(), 1);
        match &msgs[0].1 {
            Message::Display(DisplayCommand::Raw { encoding, data, .. }) => {
                assert_eq!(*encoding, RawEncoding::PngLike);
                assert!(data.len() < 1000, "{} bytes", data.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merges_scanlines_in_buffer() {
        let mut buf = ClientBuffer::new();
        for y in 0..32 {
            buf.push(raw(0, y, 64, 1), false);
        }
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.stats().merged, 31);
    }

    #[test]
    fn pending_bytes_tracks_content() {
        let mut buf = ClientBuffer::new();
        assert_eq!(buf.pending_bytes(), 0);
        buf.push(sfill(0, 0, 10, 10, 1), false);
        assert!(buf.pending_bytes() > 0);
    }

    #[test]
    fn byte_bound_never_exceeded_and_debt_accumulates() {
        let bound = 50_000u64;
        let mut buf = ClientBuffer::new().with_byte_bound(bound);
        // Push far more than the bound in disjoint RAWs (no merging).
        for i in 0..20 {
            buf.push(raw(0, i * 110, 100, 100), false); // ~30 KB each.
            assert!(
                buf.pending_bytes() <= bound,
                "bound violated: {} > {bound}",
                buf.pending_bytes()
            );
        }
        assert!(buf.stats().overflow_evicted > 0);
        assert!(buf.has_overflow_debt());
        let debt = buf.take_overflow_debt();
        assert!(!debt.is_empty());
        assert!(!buf.has_overflow_debt(), "debt is taken once");
        // What survives still drains normally.
        drain_all(&mut buf);
    }

    #[test]
    fn overflow_eviction_cascades_to_dependent_copies() {
        let mut buf = ClientBuffer::new().with_byte_bound(40_000);
        // A big RAW draws the region a COPY will read.
        buf.push(raw(0, 0, 100, 100), false);
        buf.push(
            DisplayCommand::Copy {
                src_rect: Rect::new(0, 0, 50, 50),
                dst_x: 200,
                dst_y: 200,
                },
            false,
        );
        // Overflow forces the RAW out; the COPY reading it must go
        // too, and both footprints become debt.
        buf.push(raw(0, 200, 120, 100), false);
        assert!(buf.stats().overflow_evicted >= 2);
        let debt = buf.take_overflow_debt();
        assert!(debt.intersects_rect(&Rect::new(0, 0, 100, 100)));
        assert!(debt.intersects_rect(&Rect::new(200, 200, 50, 50)));
    }

    #[test]
    fn degradation_tightens_the_bound_immediately() {
        let bound = 100_000u64;
        let mut buf = ClientBuffer::new().with_byte_bound(bound);
        for i in 0..3 {
            buf.push(raw(0, i * 110, 100, 100), false); // ~30 KB each.
        }
        assert_eq!(buf.stats().overflow_evicted, 0);
        // Halving the bound makes the standing backlog overweight:
        // enforcement runs at once, not at the next push.
        buf.set_degradation(2, false);
        assert_eq!(buf.effective_byte_bound(), Some(bound / 2));
        assert!(buf.pending_bytes() <= bound / 2);
        assert!(buf.stats().overflow_evicted > 0);
        assert!(buf.has_overflow_debt());
        // Releasing the pressure restores the configured cap.
        buf.set_degradation(1, false);
        assert_eq!(buf.effective_byte_bound(), Some(bound));
    }

    #[test]
    fn raw_first_eviction_spares_compact_commands() {
        let mut buf = ClientBuffer::new().with_byte_bound(40_000);
        buf.set_degradation(1, true);
        // An old compact SFILL, then enough RAW to overflow. Under
        // raw-first the SFILL survives even though it is oldest.
        buf.push(sfill(0, 500, 10, 10, 3), false);
        for i in 0..3 {
            buf.push(raw(0, i * 110, 100, 100), false);
        }
        assert!(buf.stats().overflow_evicted > 0);
        let msgs = drain_all(&mut buf);
        assert!(
            msgs.iter().any(|m| matches!(
                m,
                Message::Display(DisplayCommand::Sfill { rect, .. }) if rect.y == 500
            )),
            "compact command should outlive raw-first eviction"
        );
    }

    #[test]
    fn unbounded_buffer_never_evicts_for_overflow() {
        let mut buf = ClientBuffer::new();
        for i in 0..20 {
            buf.push(raw(0, i * 110, 100, 100), false);
        }
        assert_eq!(buf.stats().overflow_evicted, 0);
        assert!(!buf.has_overflow_debt());
    }

    // ---- content-addressed cache (protocol revision 3) ----

    #[test]
    fn repeated_payload_substitutes_cache_reference() {
        let mut buf = ClientBuffer::new();
        buf.enable_cache(thinc_protocol::DEFAULT_CACHE_BUDGET);
        buf.push(raw(0, 0, 8, 8), false);
        let first = drain_all(&mut buf);
        assert!(
            matches!(&first[0], Message::Display(DisplayCommand::Raw { .. })),
            "first send carries the full payload"
        );
        let full_size = first[0].wire_size();
        // Same content again (scroll-back, window switch).
        buf.push(raw(0, 0, 8, 8), false);
        let second = drain_all(&mut buf);
        let Message::CacheRef { hash } = &second[0] else {
            panic!("repeat should substitute a reference, got {:?}", second[0]);
        };
        assert_eq!(Some(*hash), first[0].cache_key());
        let (hits, misses, _, saved) = buf.cache_counts();
        assert_eq!(hits, 1);
        assert_eq!(misses, 0);
        assert_eq!(saved, full_size - second[0].wire_size());
    }

    #[test]
    fn cache_disabled_never_substitutes() {
        let mut buf = ClientBuffer::new();
        assert!(!buf.cache_enabled());
        buf.push(raw(0, 0, 8, 8), false);
        drain_all(&mut buf);
        buf.push(raw(0, 0, 8, 8), false);
        let msgs = drain_all(&mut buf);
        assert!(
            msgs.iter().all(|m| !matches!(m, Message::CacheRef { .. })),
            "rev-2 and rev-1 peers must never see cache messages"
        );
        assert_eq!(buf.cache_counts(), (0, 0, 0, 0));
    }

    #[test]
    fn miss_fallback_resends_byte_exact_payload() {
        let mut buf = ClientBuffer::new();
        buf.enable_cache(thinc_protocol::DEFAULT_CACHE_BUDGET);
        buf.push(raw(0, 0, 8, 8), false);
        let first = drain_all(&mut buf);
        let hash = first[0].cache_key().unwrap();
        // The client reports it cannot resolve the hash (fresh store
        // after reconnect, say): the fallback is the byte-exact
        // original, delivered ahead of queued work.
        assert!(buf.satisfy_cache_miss(hash));
        buf.push(sfill(0, 0, 10, 10, 1), false);
        let msgs = drain_all(&mut buf);
        assert_eq!(
            encode_message(&msgs[0]),
            encode_message(&first[0]),
            "fallback must be byte-exact"
        );
        let (_, misses, _, _) = buf.cache_counts();
        assert_eq!(misses, 1);
        // A hash the ledger never held (or evicted) cannot be repaid
        // from cache; the caller escalates to a refresh.
        assert!(!buf.satisfy_cache_miss(0xDEAD_BEEF));
    }

    #[test]
    fn rescale_drops_queued_fallbacks_with_the_pending_commands() {
        // A miss fallback queued before a degradation rescale carries
        // pixels in the outgoing coordinate space. The rescale drop
        // must take the fallback with it (the owed refresh repaints
        // the content), and must do so without touching the ledger —
        // the mirror insert only ever happens at send time.
        let mut buf = ClientBuffer::new();
        buf.enable_cache(thinc_protocol::DEFAULT_CACHE_BUDGET);
        buf.push(raw(0, 0, 8, 8), false);
        let first = drain_all(&mut buf);
        let hash = first[0].cache_key().unwrap();
        let keys_before = buf.cache_keys();
        assert!(buf.satisfy_cache_miss(hash));
        assert_eq!(buf.fallbacks_pending(), 1);
        buf.push(sfill(0, 0, 10, 10, 1), false);
        let footprint = buf.drop_pending_for_rescale();
        assert!(!footprint.is_empty(), "pending commands become debt");
        assert_eq!(buf.fallbacks_pending(), 0, "stale-space fallback dropped");
        assert_eq!(buf.cache_keys(), keys_before, "ledger untouched");
        assert!(drain_all(&mut buf).is_empty());
    }

    #[test]
    fn eviction_never_leaves_dangling_reference() {
        // A budget that holds only a couple of tiles, cycled hard:
        // the server must never emit a ref the mirrored client store
        // cannot resolve.
        let budget = 900;
        let mut buf = ClientBuffer::new();
        buf.enable_cache(budget);
        let mut store: thinc_protocol::CacheLru<Message> = thinc_protocol::CacheLru::new(budget);
        let mut refs = 0u64;
        for round in 0..12u8 {
            // Three stable tiles (repeat every round → refs) plus one
            // unique tile per round (→ churn and LRU evictions).
            let mut round_cmds = Vec::new();
            for tile in 0..3u8 {
                round_cmds.push(DisplayCommand::Raw {
                    rect: Rect::new(i32::from(tile) * 8, 0, 8, 8),
                    encoding: RawEncoding::None,
                    data: vec![tile; 8 * 8 * 3].into(),
                });
            }
            round_cmds.push(DisplayCommand::Raw {
                rect: Rect::new(24, 0, 8, 8),
                encoding: RawEncoding::None,
                data: vec![100 + round; 8 * 8 * 3].into(),
            });
            for cmd in round_cmds {
                buf.push(cmd, false);
                for msg in drain_all(&mut buf) {
                    match msg {
                        Message::CacheRef { hash } => {
                            assert!(
                                store.get(hash).is_some(),
                                "dangling reference: client store cannot resolve {hash:#x}"
                            );
                            refs += 1;
                        }
                        m => {
                            if let Some(key) = m.cache_key() {
                                store.insert(key, m.wire_size(), m.clone());
                            }
                        }
                    }
                }
            }
        }
        let (_, _, evictions, _) = buf.cache_counts();
        assert!(evictions > 0, "budget was meant to force evictions");
        assert!(refs > 0, "repeated rounds were meant to produce refs");
    }

    // ---- checkpoint / restore ----

    #[test]
    fn checkpoint_roundtrip_is_byte_exact_and_preserves_delivery() {
        // Build a buffer in a messy mid-flight state: cache ledger
        // populated, a miss fallback queued, a partially-flushed RAW
        // (split remainder re-queued at the deque front with a fresh
        // seq), clipped visibility, and standing overflow debt.
        let mut buf = ClientBuffer::new()
            .with_raw_compression(3)
            .with_byte_bound(200_000);
        buf.enable_cache(thinc_protocol::DEFAULT_CACHE_BUDGET);
        buf.set_time(SimTime(5_000));
        buf.push(raw(0, 0, 8, 8), false);
        let first = drain_all(&mut buf);
        let hash = first[0].cache_key().unwrap();
        assert!(buf.satisfy_cache_miss(hash));
        let mut p = TcpPipe::new(TcpParams {
            bandwidth_bps: 1_000_000,
            rtt: SimDuration::from_millis(50),
            sndbuf_bytes: 8 * 1024,
            ..TcpParams::default()
        });
        let mut trace = PacketTrace::new();
        // Incompressible payload, so the lazy PNG-like pass keeps the
        // full 60 KB and the tiny socket buffer forces a split.
        let mut x = 1u32;
        let noise: Vec<u8> = (0..200 * 100 * 3)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        buf.push(
            DisplayCommand::Raw {
                rect: Rect::new(0, 0, 200, 100),
                encoding: RawEncoding::None,
                data: noise.into(),
            },
            false,
        );
        buf.push(sfill(0, 50, 200, 10, 1), false); // Clips the RAW.
        buf.flush(SimTime(6_000), &mut p, &mut trace); // Partial: splits.
        assert!(!buf.is_empty(), "test wants a mid-flight remainder");
        buf.push(raw(0, 300, 120, 100), true);

        let mut w = crate::checkpoint::Writer::new();
        buf.encode_checkpoint(&mut w);
        let image = w.into_inner();
        let mut r = crate::checkpoint::Reader::new(&image);
        let mut restored = ClientBuffer::decode_checkpoint(&mut r).unwrap();
        assert!(r.exhausted(), "decoder must consume the whole image");

        // Byte-exact re-checkpoint (the failover-fidelity invariant).
        let mut w2 = crate::checkpoint::Writer::new();
        restored.encode_checkpoint(&mut w2);
        assert_eq!(image, w2.into_inner());

        // And the restored buffer delivers the same remaining stream.
        assert_eq!(restored.pending_bytes(), buf.pending_bytes());
        assert_eq!(restored.cache_keys(), buf.cache_keys());
        assert_eq!(restored.stats(), buf.stats());
        let live = drain_all(&mut buf);
        let resumed = drain_all(&mut restored);
        let enc = |msgs: &[Message]| -> Vec<Vec<u8>> {
            msgs.iter().map(encode_message).collect()
        };
        assert_eq!(enc(&live), enc(&resumed));
    }

    #[test]
    fn truncated_buffer_checkpoint_is_a_typed_error() {
        let mut buf = ClientBuffer::new();
        buf.enable_cache(1024);
        buf.push(raw(0, 0, 8, 8), false);
        let mut w = crate::checkpoint::Writer::new();
        buf.encode_checkpoint(&mut w);
        let image = w.into_inner();
        for cut in 0..image.len() {
            let mut r = crate::checkpoint::Reader::new(&image[..cut]);
            assert!(
                ClientBuffer::decode_checkpoint(&mut r).is_err() || !r.exhausted(),
                "truncation at {cut} must not decode cleanly"
            );
        }
    }
}
