#![warn(missing_docs)]
//! The THINC server: the primary contribution of the paper.
//!
//! THINC virtualizes the display at the device-driver interface. This
//! crate implements everything between that interface and the wire:
//!
//! - [`queue`]: protocol command objects with complete / partial /
//!   transparent overwrite semantics, and the command queue that
//!   evicts overwritten commands and merges adjacent ones (§4),
//! - [`translator`]: the translation layer — a [`VideoDriver`]
//!   implementation that maps device-level operations one-to-one onto
//!   protocol commands, with offscreen drawing awareness (per-pixmap
//!   command queues, queue copies mirroring pixmap copies, queue
//!   execution when offscreen data goes onscreen, §4.1),
//! - [`scheduler`]: the multi-queue Shortest-Remaining-Size-First
//!   update scheduler with a real-time queue and transparent-command
//!   dependency placement (§5),
//! - [`buffer`]: the per-client command buffer with non-blocking
//!   flush and command splitting (§5),
//! - [`scaling`]: server-side screen scaling with per-command resize
//!   policy (§6),
//! - [`video`]: video stream objects and YUV delivery (§4.2),
//! - [`audio`]: the virtual audio driver (§4.2, §7),
//! - [`session`]: authentication and multi-client screen sharing
//!   (§7),
//! - [`server`]: the [`server::ThincServer`] façade tying everything
//!   together, including RAW compression and RC4 session encryption
//!   (§7).
//!
//! The hot path is instrumented with `thinc-telemetry`: the command
//! buffer owns the scheduler metrics (queue depths, merges,
//! evictions, splits, enqueue-to-wire latency) and the per-command
//! wire accounting; the translator owns its own translation counters.
//! [`server::ThincServer::protocol_metrics`] merges the display and
//! audio/video paths into one per-command breakdown. See
//! `docs/TELEMETRY.md`.
//!
//! [`VideoDriver`]: thinc_display::driver::VideoDriver

pub mod audio;
pub mod buffer;
pub mod checkpoint;
pub mod degradation;
pub mod liveness;
pub mod parallel;
pub mod plane;
pub mod queue;
pub mod scaling;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod shard;
pub mod translator;
pub mod video;

pub use buffer::ClientBuffer;
pub use checkpoint::{cache_digest, CheckpointError, ResumeOutcome, TileDigests};
pub use degradation::{
    DegradationConfig, DegradationController, DegradationLevel, EpochSignals,
};
pub use liveness::{LivenessConfig, LivenessTracker, LivenessVerdict};
pub use plane::{PlaneCounters, WirePlane};
pub use queue::{classify, CommandQueue, OverwriteClass};
pub use scaling::ScalePolicy;
pub use server::{ServerConfig, ThincServer};
pub use session::{Credentials, SessionAuth, SharedSession};
pub use shard::{shard_index, ShardedManager};
pub use translator::Translator;
