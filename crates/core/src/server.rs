//! The THINC server façade.
//!
//! [`ThincServer`] is the virtual display driver: it plugs into the
//! window server below the device abstraction (implementing
//! [`VideoDriver`]), feeds every operation through the translation
//! layer, schedules the resulting protocol commands in the per-client
//! buffer, and flushes them over a (simulated) connection with
//! server-push, non-blocking delivery. It also owns the video stream
//! manager, the virtual audio device, the input tracker that marks
//! real-time updates, server-side scaling state, and the RC4 session
//! cipher.

use std::collections::VecDeque;

use thinc_compress::Rc4;
use thinc_display::drawable::{DrawableId, DrawableStore};
use thinc_display::driver::VideoDriver;
use thinc_display::input::{InputEvent, InputTracker};
use thinc_net::tcp::TcpPipe;
use thinc_net::time::SimTime;
use thinc_net::trace::{Direction, PacketTrace};
use thinc_protocol::commands::DisplayCommand;
use thinc_protocol::message::{Message, ProtocolInput};
use thinc_protocol::wire::{encode_message, FrameEncoder};
use thinc_protocol::PROTOCOL_VERSION;
use thinc_raster::{Color, Framebuffer, PixelFormat, Point, Rect, YuvFrame};

use crate::audio::VirtualAudioDriver;
use crate::buffer::{BufferStats, ClientBuffer};
use crate::scaling::ScalePolicy;
use crate::translator::{Translator, TranslatorStats};
use crate::video::VideoStreamManager;

/// Server configuration (the ablation switches map to the paper's
/// design choices).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Session framebuffer width.
    pub width: u32,
    /// Session framebuffer height.
    pub height: u32,
    /// Session pixel format (the paper runs 24-bit everywhere).
    pub format: PixelFormat,
    /// Track offscreen drawing (§4.1). Disable to reproduce the
    /// "ignore offscreen, send raw pixels" behaviour.
    pub offscreen_awareness: bool,
    /// Compress RAW payloads with the PNG-like codec (§7).
    pub compress_raw: bool,
    /// Resize updates server-side when the client viewport is smaller
    /// (§6). Disable to reproduce client-side-resize systems.
    pub server_side_scaling: bool,
    /// RC4 session key; `None` disables encryption.
    pub rc4_key: Option<Vec<u8>>,
    /// Byte bound on the per-client display buffer. When the backlog
    /// exceeds it the oldest non-realtime commands are evicted and
    /// their footprint is repaid later as a fresh-screen RAW refresh
    /// — graceful degradation instead of unbounded memory. `None`
    /// leaves the buffer unbounded (the seed behaviour).
    pub buffer_bound_bytes: Option<u64>,
    /// Cap on the audio/video/cursor FIFO depth. Over the cap the
    /// oldest video frames are dropped first, then audio; control
    /// messages (cursor, stream lifecycle, pings) are never dropped.
    pub av_bound: Option<usize>,
    /// Liveness policy: probe silent clients and declare them dead
    /// after the timeout. `None` disables liveness tracking.
    pub liveness: Option<crate::liveness::LivenessConfig>,
    /// Adaptive degradation policy: observe fault telemetry each
    /// flush epoch and walk the fidelity ladder (scale, A/V cap,
    /// buffer bound, eviction preference). `None` keeps full
    /// fidelity unconditionally (the seed behaviour).
    pub degradation: Option<crate::degradation::DegradationConfig>,
    /// Byte budget for the content-addressed cache ledger (protocol
    /// revision 3, see `docs/CACHE.md`). The cache only activates
    /// when the client negotiates protocol version ≥ 3; `None`
    /// disables it even for revision-3 clients.
    pub cache_budget_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            width: 1024,
            height: 768,
            format: PixelFormat::Rgb888,
            offscreen_awareness: true,
            compress_raw: true,
            server_side_scaling: true,
            rc4_key: None,
            buffer_bound_bytes: None,
            av_bound: None,
            liveness: None,
            degradation: None,
            cache_budget_bytes: Some(thinc_protocol::DEFAULT_CACHE_BUDGET),
        }
    }
}

/// Aggregated server statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Translation-layer counters.
    pub translator: TranslatorStats,
    /// Delivery counters.
    pub buffer: BufferStats,
    /// Video messages queued.
    pub video_messages: u64,
    /// Audio messages queued.
    pub audio_messages: u64,
}

/// The THINC server.
pub struct ThincServer {
    config: ServerConfig,
    translator: Translator,
    buffer: ClientBuffer,
    video: VideoStreamManager,
    audio: Option<VirtualAudioDriver>,
    input: InputTracker,
    viewport: (u32, u32),
    scale: ScalePolicy,
    /// Audio/video messages awaiting flush (FIFO; flushed ahead of the
    /// normal display queues, behind nothing — A/V is paced real-time).
    av_fifo: VecDeque<Message>,
    /// Virtual clock used to stamp A/V data.
    now: SimTime,
    cipher: Option<Rc4>,
    video_messages: u64,
    audio_messages: u64,
    /// Last installed cursor image, resent on resync.
    cursor_shape: Option<Message>,
    /// Wire accounting for the audio/video/cursor FIFO (the display
    /// path's accounting lives in the buffer).
    av_metrics: thinc_telemetry::ProtocolMetrics,
    /// Liveness tracking for the attached client (when configured).
    liveness: Option<crate::liveness::LivenessTracker>,
    /// Resilience accounting: liveness events, resyncs, stale A/V
    /// drops. Buffer overflow evictions merge in at read time.
    resilience: thinc_telemetry::ResilienceMetrics,
    /// Adaptive degradation controller (when configured).
    degradation: Option<crate::degradation::DegradationController>,
    /// Session-space screen area owed a fresh-screen refresh because
    /// overflow evictions dropped commands covering it. The buffer
    /// records debt in the coordinate space of the commands it holds
    /// (viewport space while scaling is active); the server unmaps it
    /// into session space the moment it is taken, so the ledger stays
    /// valid across scale changes.
    refresh_debt: thinc_raster::Region,
    /// A full-view refresh is owed (promotion back to full fidelity
    /// left the client with low-resolution content). Repaid by the
    /// next [`enqueue`](Self::enqueue), which has the screen in hand.
    refresh_owed: bool,
    /// A client [`Message::RefreshRequest`] arrived and awaits a
    /// [`resync`](Self::resync) from the harness (which owns the
    /// screen).
    resync_requested: bool,
    /// Outgoing wire framer. Starts legacy; the client's hello
    /// upgrades it to integrity framing (sequence + CRC32) when both
    /// sides speak protocol version ≥ 2.
    encoder: FrameEncoder,
}

impl ThincServer {
    /// Creates a server for `config`.
    pub fn new(config: ServerConfig) -> Self {
        let translator = if config.offscreen_awareness {
            Translator::new()
        } else {
            Translator::without_offscreen_awareness()
        };
        let mut buffer = ClientBuffer::new();
        if config.compress_raw {
            buffer = buffer.with_raw_compression(config.format.bytes_per_pixel());
        }
        if let Some(bound) = config.buffer_bound_bytes {
            buffer = buffer.with_byte_bound(bound);
        }
        let liveness = config
            .liveness
            .map(|c| crate::liveness::LivenessTracker::new(c, SimTime::ZERO));
        let degradation = config
            .degradation
            .map(crate::degradation::DegradationController::new);
        let cipher = config.rc4_key.as_deref().map(Rc4::new);
        let viewport = (config.width, config.height);
        let scale = ScalePolicy::new(config.width, config.height, viewport.0, viewport.1);
        Self {
            config,
            translator,
            buffer,
            video: VideoStreamManager::new(),
            audio: None,
            input: InputTracker::new(),
            viewport,
            scale,
            av_fifo: VecDeque::new(),
            now: SimTime::ZERO,
            cipher,
            video_messages: 0,
            audio_messages: 0,
            cursor_shape: None,
            av_metrics: thinc_telemetry::ProtocolMetrics::new(),
            liveness,
            resilience: thinc_telemetry::ResilienceMetrics::new(),
            degradation,
            refresh_debt: thinc_raster::Region::new(),
            refresh_owed: false,
            resync_requested: false,
            encoder: FrameEncoder::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            translator: self.translator.stats(),
            buffer: self.buffer.stats(),
            video_messages: self.video_messages,
            audio_messages: self.audio_messages,
        }
    }

    /// The greeting sent to a connecting client.
    pub fn hello(&self) -> Message {
        Message::ServerHello {
            version: PROTOCOL_VERSION,
            width: self.config.width,
            height: self.config.height,
            depth: self.config.format.depth() as u8,
        }
    }

    /// Frames `msg` for the wire at the negotiated revision,
    /// stamping revision-2 frames with a sequence number and CRC32.
    /// Harnesses that move real bytes (rather than `Message` values)
    /// must encode through this so the client's integrity
    /// verification has something to verify.
    pub fn encode_frame(&mut self, msg: &Message) -> Vec<u8> {
        self.encoder.encode(msg)
    }

    /// The wire framing revision negotiated with the client
    /// ([`thinc_protocol::WIRE_REV_LEGACY`] until a `ClientHello`
    /// announcing protocol version ≥ 2 arrives).
    pub fn wire_revision(&self) -> u16 {
        self.encoder.revision()
    }

    /// Advances the server's virtual clock (stamps A/V data and the
    /// display buffer's enqueue-latency accounting).
    pub fn set_time(&mut self, now: SimTime) {
        self.now = now;
        self.buffer.set_time(now);
    }

    /// Scheduler telemetry from the display buffer.
    pub fn scheduler_metrics(&self) -> &thinc_telemetry::SchedulerMetrics {
        self.buffer.scheduler_metrics()
    }

    /// Combined per-command wire accounting: display messages from the
    /// buffer plus this server's audio/video/cursor path.
    pub fn protocol_metrics(&self) -> thinc_telemetry::ProtocolMetrics {
        let mut all = self.buffer.protocol_metrics().clone();
        all.merge(&self.av_metrics);
        all
    }

    /// Translation-layer telemetry.
    pub fn translator_metrics(&self) -> &thinc_telemetry::TranslatorMetrics {
        self.translator.metrics()
    }

    /// Current client viewport.
    pub fn viewport(&self) -> (u32, u32) {
        self.viewport
    }

    /// Whether updates are being scaled server-side right now.
    pub fn scaling_active(&self) -> bool {
        self.config.server_side_scaling && !self.scale.is_identity()
    }

    /// The viewport actually targeted by server-side scaling: the
    /// client's reported viewport, shrunk further by the degradation
    /// ladder's scale divisor.
    fn effective_viewport(&self) -> (u32, u32) {
        let div = self
            .degradation
            .as_ref()
            .map(|c| c.level().scale_divisor())
            .unwrap_or(1)
            .max(1);
        ((self.viewport.0 / div).max(1), (self.viewport.1 / div).max(1))
    }

    fn set_viewport(&mut self, w: u32, h: u32) {
        self.viewport = (w.min(self.config.width).max(1), h.min(self.config.height).max(1));
        let (ew, eh) = self.effective_viewport();
        let new_scale = ScalePolicy::new(self.config.width, self.config.height, ew, eh);
        if new_scale != self.scale {
            self.retire_pending_for_scale_change();
            self.scale = new_scale;
        }
        if self.config.server_side_scaling {
            self.video.set_scale(ew, self.config.width, eh, self.config.height);
        }
    }

    /// Converts everything still buffered — overflow debt *and*
    /// pending commands — into session-space refresh debt, using the
    /// scale in force when it was recorded. Must run before the scale
    /// policy changes: buffered commands target the outgoing
    /// coordinate space (scaling may even have rewritten their
    /// overwrite class, e.g. an opaque BITMAP resampled into RAW), so
    /// flushing or unmapping them under the new scale would hit the
    /// wrong regions.
    fn retire_pending_for_scale_change(&mut self) {
        self.absorb_buffer_debt();
        let dropped = self.buffer.drop_pending_for_rescale();
        for rect in dropped.rects() {
            let session_rect = if self.scaling_active() {
                self.scale.unmap_rect(rect)
            } else {
                *rect
            };
            if !session_rect.is_empty() {
                self.refresh_debt.union_rect(&session_rect);
            }
        }
    }

    /// Rebuilds the scale policy for the current effective viewport
    /// while preserving the zoom view (unlike
    /// [`set_viewport`](Self::set_viewport), which resets it). Used by
    /// degradation transitions, which change the divisor but must not
    /// discard a client's zoom.
    fn rebuild_scale(&mut self) {
        let view = self.scale.view;
        let (ew, eh) = self.effective_viewport();
        self.scale =
            ScalePolicy::new(self.config.width, self.config.height, ew, eh).with_view(view);
        if self.config.server_side_scaling {
            self.video.set_scale(ew, self.config.width, eh, self.config.height);
        }
    }

    /// The session-space region currently mapped onto the viewport.
    pub fn view(&self) -> thinc_raster::Rect {
        self.scale.view
    }

    /// Re-sends the current contents of the view as a (scaled) RAW
    /// update. Required after a zoom-in: "the server updates are
    /// necessary when the display size increases, because the client
    /// has only a small-size version of the display" (§6).
    pub fn refresh_view(&mut self, screen: &Framebuffer) {
        let view = self.scale.view;
        let (clip, data) = screen.get_raw(&view);
        if clip.is_empty() {
            return;
        }
        let cmd = DisplayCommand::Raw {
            rect: clip,
            encoding: thinc_protocol::commands::RawEncoding::None,
            data: data.into(),
        };
        self.enqueue(vec![cmd], screen);
    }

    /// Handles a message arriving from the client. Input events are
    /// returned as window-system events for forwarding.
    pub fn handle_message(&mut self, msg: &Message) -> Option<InputEvent> {
        // Client traffic doubles as the heartbeat — except a Pong,
        // which only proves liveness when it answers the latest
        // outstanding probe (a delayed pong surfacing from a
        // recovering link's queue says nothing about the connection
        // now).
        if let Some(t) = self.liveness.as_mut() {
            match msg {
                Message::Pong { seq, .. } => {
                    t.note_pong(*seq, self.now);
                }
                _ => t.note_activity(self.now),
            }
        }
        match msg {
            Message::ClientHello {
                version,
                viewport_width,
                viewport_height,
            } => {
                // Negotiate the wire revision: the session adopts the
                // highest framing both sides speak. A version-1 client
                // keeps the whole stream legacy-framed, so old
                // captures and old clients still decode.
                self.encoder.negotiate(*version);
                // Revision 3 adds the content-addressed cache: only a
                // client that announced it can resolve CacheRef, so
                // the ledger stays off for older peers.
                if self.encoder.revision() >= thinc_protocol::WIRE_REV_CACHE {
                    if let Some(budget) = self.config.cache_budget_bytes {
                        self.buffer.enable_cache(budget);
                    }
                }
                self.set_viewport(*viewport_width, *viewport_height);
                None
            }
            Message::Resize {
                viewport_width,
                viewport_height,
            } => {
                self.set_viewport(*viewport_width, *viewport_height);
                None
            }
            Message::SetView { view } => {
                // Zoom: remap the view; the caller should follow with
                // [`Self::refresh_view`] so the client gets full-detail
                // content for the newly magnified region.
                let (ew, eh) = self.effective_viewport();
                let new_scale = ScalePolicy::new(self.config.width, self.config.height, ew, eh)
                    .with_view(*view);
                if new_scale != self.scale {
                    self.retire_pending_for_scale_change();
                    self.scale = new_scale;
                }
                None
            }
            Message::RefreshRequest { .. } => {
                // The client's reconnect policy is asking for a full
                // resync; latch it for the harness (which owns the
                // screen) to serve via [`Self::resync`].
                self.resync_requested = true;
                None
            }
            Message::CacheMiss { hash } => {
                // The client could not resolve a cache reference.
                // Normally the ledger still holds the payload and a
                // byte-exact fallback is queued; if eviction raced the
                // reference out of both sides, the client skipped an
                // update and the next draw owes a full-view refresh.
                if !self.buffer.satisfy_cache_miss(*hash) {
                    self.refresh_owed = true;
                }
                None
            }
            Message::Input(input) => {
                let ev = match input {
                    ProtocolInput::PointerMove { x, y } => InputEvent::PointerMove(Point::new(*x, *y)),
                    ProtocolInput::ButtonPress { x, y, .. } => {
                        InputEvent::ButtonPress(Point::new(*x, *y))
                    }
                    ProtocolInput::ButtonRelease { x, y, .. } => {
                        InputEvent::ButtonRelease(Point::new(*x, *y))
                    }
                    ProtocolInput::KeyPress { key } => InputEvent::KeyPress(*key),
                    ProtocolInput::KeyRelease { key } => InputEvent::KeyPress(*key),
                };
                self.input.observe(ev);
                // Echo the (possibly warped) cursor position so the
                // client's local overlay tracks the session pointer.
                if let InputEvent::PointerMove(p)
                | InputEvent::ButtonPress(p)
                | InputEvent::ButtonRelease(p) = ev
                {
                    let (vx, vy) = if self.scaling_active() {
                        self.scale.map_point(p.x, p.y)
                    } else {
                        (p.x, p.y)
                    };
                    self.av_fifo.push_back(Message::CursorMove { x: vx, y: vy });
                }
                Some(ev)
            }
            _ => None,
        }
    }

    /// Pushes translated commands through scaling into the buffer.
    fn enqueue(&mut self, cmds: Vec<DisplayCommand>, screen: &Framebuffer) {
        if self.refresh_owed {
            // Promotion back to full fidelity left the client with
            // low-resolution content; the first draw with the screen
            // in hand repays the whole view. Clear the flag before
            // recursing through refresh_view's own enqueue.
            self.refresh_owed = false;
            self.refresh_view(screen);
        }
        for cmd in cmds {
            let realtime = self.input.is_realtime(&cmd.dest_rect());
            if self.scaling_active() {
                if let Some(scaled) = self.scale.transform(&cmd, screen) {
                    self.buffer.push(scaled, realtime);
                }
            } else {
                self.buffer.push(cmd, realtime);
            }
        }
        self.repay_overflow_debt(screen);
    }

    /// Moves the buffer's freshly recorded overflow debt into the
    /// server's session-space refresh ledger. The buffer records debt
    /// in the coordinate space of the commands it holds — viewport
    /// space while scaling is active — so the rects are unmapped with
    /// the scale that produced them. Called immediately after any
    /// operation that can evict and before any scale change, keeping
    /// the ledger valid across viewport and degradation transitions.
    fn absorb_buffer_debt(&mut self) {
        if !self.buffer.has_overflow_debt() {
            return;
        }
        let debt = self.buffer.take_overflow_debt();
        for rect in debt.rects() {
            let session_rect = if self.scaling_active() {
                self.scale.unmap_rect(rect)
            } else {
                *rect
            };
            if !session_rect.is_empty() {
                self.refresh_debt.union_rect(&session_rect);
            }
        }
    }

    /// Converts any overflow-eviction debt into fresh-screen RAW
    /// refreshes. Evicted commands lose intermediate states, but the
    /// screen is authoritative: re-reading the debt region now yields
    /// the final content, so the client converges exactly. The ledger
    /// is session-space (see [`absorb_buffer_debt`]
    /// (Self::absorb_buffer_debt)): each piece is read from the
    /// session-sized screen and then scaled *once* for the viewport —
    /// reading viewport-space rects straight off the screen and
    /// scaling them again (the old behaviour) repainted the wrong
    /// region with doubly-shrunk content whenever scaling was active.
    /// The refresh bypasses the byte bound (`push_unbounded`) so
    /// repaying debt can never re-trigger eviction of itself — but a
    /// piece is only pushed when it fits under the bound (or the
    /// buffer is empty); the rest stays in the ledger until the link
    /// drains, so the bound holds even while debt is being repaid.
    pub fn repay_overflow_debt(&mut self, screen: &Framebuffer) {
        self.absorb_buffer_debt();
        if self.refresh_debt.is_empty() {
            return;
        }
        let debt = std::mem::take(&mut self.refresh_debt);
        for rect in debt.rects() {
            let (clip, data) = screen.get_raw(rect);
            if clip.is_empty() {
                continue;
            }
            let cmd = DisplayCommand::Raw {
                rect: clip,
                encoding: thinc_protocol::commands::RawEncoding::None,
                data: data.into(),
            };
            let cmd = if self.scaling_active() {
                match self.scale.transform(&cmd, screen) {
                    Some(scaled) => scaled,
                    None => continue,
                }
            } else {
                cmd
            };
            let pending = self.buffer.pending_bytes();
            let fits = match self.buffer.effective_byte_bound() {
                Some(bound) => pending == 0 || pending + cmd.wire_size() <= bound,
                None => true,
            };
            if fits {
                self.buffer.push_unbounded(cmd, false);
            } else {
                self.refresh_debt.union_rect(rect);
            }
        }
    }

    /// Installs the session cursor image, forwarded to the client.
    /// The client composites it locally, so pointer motion costs a
    /// few bytes per event instead of display updates.
    pub fn set_cursor(&mut self, width: u32, height: u32, hot_x: i32, hot_y: i32, pixels: Vec<u8>) {
        let shape = Message::CursorShape {
            width,
            height,
            hot_x,
            hot_y,
            pixels,
        };
        self.cursor_shape = Some(shape.clone());
        self.av_fifo.push_back(shape);
    }

    /// Resynchronizes a (re)connecting client: the session's true
    /// state lives entirely on the server ("the client only contains
    /// transient soft state", §2), so mobility is a full-view refresh
    /// plus the session cursor and the live video streams — nothing
    /// else needs to persist at the client. Revives a client the
    /// liveness tracker had declared dead, and cancels any pending
    /// overflow debt (the full refresh repays it wholesale).
    pub fn resync(&mut self, screen: &Framebuffer) {
        self.resilience.record_resync();
        if let Some(t) = self.liveness.as_mut() {
            t.reset(self.now);
        }
        if let Some(shape) = self.cursor_shape.clone() {
            self.av_fifo.push_back(shape);
        }
        let reinit = self.video.reannounce();
        self.video_messages += reinit.len() as u64;
        self.av_fifo.extend(reinit);
        // The full-view refresh below covers every debt region.
        let _ = self.buffer.take_overflow_debt();
        self.refresh_debt = thinc_raster::Region::new();
        self.refresh_owed = false;
        self.resync_requested = false;
        self.refresh_view(screen);
    }

    /// Evaluates client liveness at `now`: a silent client gets a
    /// [`Message::Ping`] probe queued (at most one per interval), and
    /// silence past the timeout declares it dead (latched until the
    /// next [`resync`](Self::resync)). Returns `Alive` when liveness
    /// tracking is not configured.
    pub fn poll_liveness(&mut self, now: SimTime) -> crate::liveness::LivenessVerdict {
        use crate::liveness::LivenessVerdict;
        self.now = now;
        let Some(t) = self.liveness.as_mut() else {
            return LivenessVerdict::Alive;
        };
        let was_dead = t.is_dead();
        let verdict = t.poll(now);
        match verdict {
            LivenessVerdict::SendPing { seq } => {
                self.av_fifo.push_back(Message::Ping {
                    seq,
                    timestamp_us: now.as_micros(),
                });
                self.resilience.record_ping_sent();
            }
            LivenessVerdict::Dead if !was_dead => {
                self.resilience.record_liveness_timeout();
            }
            _ => {}
        }
        verdict
    }

    /// Whether the liveness tracker has declared the client dead.
    pub fn client_dead(&self) -> bool {
        self.liveness.as_ref().is_some_and(|t| t.is_dead())
    }

    /// Resilience accounting: liveness events, resyncs, stale-video
    /// drops, plus the display buffer's overflow evictions and
    /// content-cache counters.
    pub fn resilience_metrics(&self) -> thinc_telemetry::ResilienceMetrics {
        let mut m = self.resilience.clone();
        m.add_overflow_evictions(self.buffer.stats().overflow_evicted);
        let (hits, misses, evictions, saved) = self.buffer.cache_counts();
        m.add_cache_counts(hits, misses, evictions, saved);
        m
    }

    /// Whether the content-addressed cache is active for this client
    /// (requires a revision-3 handshake and a configured budget).
    pub fn cache_enabled(&self) -> bool {
        self.buffer.cache_enabled()
    }

    /// Opens the virtual audio device.
    pub fn open_audio(&mut self, sample_rate: u32, channels: u32) {
        self.audio = Some(VirtualAudioDriver::new(
            sample_rate,
            channels,
            self.now.as_micros(),
        ));
    }

    /// Applications write PCM audio; packets queue for delivery.
    pub fn play_audio(&mut self, pcm: &[u8]) {
        if let Some(drv) = self.audio.as_mut() {
            let msgs = drv.write(pcm);
            self.audio_messages += msgs.len() as u64;
            self.av_fifo.extend(msgs);
            self.enforce_av_bound();
        }
    }

    /// Closes the audio device, flushing buffered samples.
    pub fn close_audio(&mut self) {
        if let Some(mut drv) = self.audio.take() {
            if let Some(m) = drv.drain() {
                self.audio_messages += 1;
                self.av_fifo.push_back(m);
            }
        }
    }

    /// Ends all video streams (session teardown).
    pub fn end_video(&mut self) {
        let msgs = self.video.end_all();
        self.video_messages += msgs.len() as u64;
        self.av_fifo.extend(msgs);
    }

    /// Keeps the A/V FIFO under its configured depth: oldest video
    /// frames go first (a late frame is worthless — the next one
    /// supersedes it), then oldest audio; control messages (cursor,
    /// stream lifecycle, pings) are never dropped.
    fn enforce_av_bound(&mut self) {
        let Some(bound) = self.config.av_bound else {
            return;
        };
        // The degradation ladder tightens the cap: a struggling link
        // gets a shallower A/V FIFO so it carries fresher frames.
        let div = self
            .degradation
            .as_ref()
            .map(|c| c.level().av_divisor())
            .unwrap_or(1)
            .max(1);
        let bound = (bound / div).max(1);
        while self.av_fifo.len() > bound {
            if let Some(idx) = self
                .av_fifo
                .iter()
                .position(|m| matches!(m, Message::VideoData { .. }))
            {
                self.av_fifo.remove(idx);
                self.resilience.record_stale_video_drop();
            } else if let Some(idx) = self
                .av_fifo
                .iter()
                .position(|m| matches!(m, Message::Audio { .. }))
            {
                self.av_fifo.remove(idx);
                self.resilience.record_stale_video_drop();
            } else {
                // Only control messages remain: small, and required
                // for correctness.
                break;
            }
        }
    }

    /// Pending A/V messages not yet flushed.
    pub fn av_backlog(&self) -> usize {
        self.av_fifo.len()
    }

    /// Commands waiting in the display buffer.
    pub fn display_backlog(&self) -> usize {
        self.buffer.len()
    }

    /// Wire bytes waiting in the display buffer (what the byte bound
    /// constrains).
    pub fn display_backlog_bytes(&self) -> u64 {
        self.buffer.pending_bytes()
    }

    /// Whether overflow evictions have left screen regions still
    /// owed a refresh (repaid on the next draw with headroom, or by
    /// [`resync`](Self::resync)).
    pub fn overflow_debt_outstanding(&self) -> bool {
        self.buffer.has_overflow_debt() || !self.refresh_debt.is_empty()
    }

    /// The fidelity level the degradation ladder is currently at
    /// (`Full` when adaptation is not configured).
    pub fn degradation_level(&self) -> crate::degradation::DegradationLevel {
        self.degradation
            .as_ref()
            .map(|c| c.level())
            .unwrap_or(crate::degradation::DegradationLevel::Full)
    }

    /// Consumes a latched client refresh request (see
    /// [`Message::RefreshRequest`]). The harness that owns the screen
    /// should answer `true` with a [`resync`](Self::resync).
    pub fn take_resync_request(&mut self) -> bool {
        std::mem::take(&mut self.resync_requested)
    }

    /// Feeds one flush epoch of fault evidence to the degradation
    /// controller and applies any level change it decides on.
    fn observe_degradation(&mut self, now: SimTime, pipe: &TcpPipe) {
        let transition = {
            let Some(ctrl) = self.degradation.as_mut() else {
                return;
            };
            let fs = pipe.fault_stats();
            let signals = crate::degradation::EpochSignals {
                pending_bytes: self.buffer.pending_bytes(),
                byte_bound: self.buffer.byte_bound(),
                overflow_evictions: self.buffer.stats().overflow_evicted,
                outage_defers: fs.outage_defers,
                collapsed_rounds: fs.collapsed_rounds,
                stale_av_drops: self.resilience.stale_video_dropped(),
                corrupt_events: fs.corrupt_events,
                segments_reordered: fs.segments_reordered,
                segments_duplicated: fs.segments_duplicated,
                link_impaired: pipe.fault_window_active(now),
            };
            ctrl.observe(&signals)
        };
        if let Some(t) = transition {
            self.apply_degradation_transition(t);
        }
    }

    /// Applies a degradation level change: records it in telemetry,
    /// re-aims the scale and the buffer/A-V knobs, and — on the final
    /// promotion back to `Full` — schedules the full-view refresh that
    /// restores byte-exact fidelity.
    fn apply_degradation_transition(&mut self, t: crate::degradation::DegradationTransition) {
        self.resilience
            .record_degradation_step(t.to.index() as u64, t.is_demotion());
        // Everything buffered under the outgoing scale becomes
        // refresh debt before the knobs move the scale.
        self.retire_pending_for_scale_change();
        self.buffer
            .set_degradation(t.to.bound_divisor(), t.to.raw_first_eviction());
        self.rebuild_scale();
        if !t.is_demotion() && t.to == crate::degradation::DegradationLevel::Full {
            self.refresh_owed = true;
        }
    }

    /// Flushes queued updates without blocking: A/V first (paced data
    /// with deadlines), then the SRSF display queues. Returns
    /// `(arrival, message)` pairs for the client side.
    pub fn flush(
        &mut self,
        now: SimTime,
        pipe: &mut TcpPipe,
        trace: &mut PacketTrace,
    ) -> Vec<(SimTime, Message)> {
        self.now = now;
        self.observe_degradation(now, pipe);
        self.enforce_av_bound();
        let mut out = Vec::new();
        while let Some(msg) = self.av_fifo.front() {
            let size = encode_message(msg).len() as u64;
            if pipe.would_block(now, size) {
                // A/V data is only useful fresh: drop stale frames
                // older than ~200 ms instead of letting them pile up
                // ("if updates are not buffered carefully … outdated
                // content is sent to the client").
                let stale = matches!(msg, Message::VideoData { timestamp_us, .. }
                    if now.as_micros() > timestamp_us + 200_000);
                if stale {
                    self.av_fifo.pop_front();
                    self.resilience.record_stale_video_drop();
                    continue;
                }
                return out;
            }
            let msg = self.av_fifo.pop_front().expect("checked front");
            let tag = match &msg {
                Message::Audio { .. } => "audio",
                Message::CursorShape { .. } | Message::CursorMove { .. } => "cursor",
                Message::Ping { .. } | Message::Pong { .. } => "control",
                _ => "video",
            };
            let (_, arrival) = pipe.send(now, size);
            trace.record(now, arrival, size, Direction::Down, tag);
            thinc_protocol::telemetry::record_message(&mut self.av_metrics, &msg);
            out.push((arrival, msg));
        }
        out.extend(self.buffer.flush(now, pipe, trace));
        out
    }

    /// Encrypts bytes with the session cipher (identity when
    /// encryption is off). Encryption is size-preserving, so traces
    /// and scheduling are unaffected; this exists for end-to-end
    /// fidelity tests and CPU-cost accounting.
    pub fn encrypt(&mut self, data: &mut [u8]) {
        if let Some(c) = self.cipher.as_mut() {
            c.apply(data);
        }
    }

    /// Adopts a redialing client's resume token: the outgoing frame
    /// sequence continues right after the last frame the client proved
    /// it received, so its integrity verifier sees an unbroken stream
    /// instead of flagging the failover as a sequence break.
    pub fn adopt_resume_seq(&mut self, last_seq: u32) {
        self.encoder.set_next_seq(last_seq.wrapping_add(1));
    }

    /// Serializes this server into a crash-consistent checkpoint
    /// image (see `docs/ROBUSTNESS.md`). The image captures the full
    /// configuration, the display buffer (raw internal state, down to
    /// queue positions and cache-ledger LRU order), the scaling and
    /// degradation posture, the refresh ledgers, the wire framer
    /// (revision + next sequence number), the installed cursor shape,
    /// and the queued A/V FIFO — everything a standby needs to resume
    /// the session byte-exact. Deliberately *not* captured (rebuilt
    /// fresh at [`restore`](Self::restore)): the translation layer's
    /// offscreen pixmaps (drawing state lives in the window server),
    /// live video/audio stream internals (streams re-announce on
    /// resync), the input halo, telemetry counters, and the liveness
    /// tracker (restarted from config at the checkpointed clock).
    pub fn checkpoint(&self) -> Vec<u8> {
        use crate::checkpoint::{format_to_u8, seal, Writer};
        let mut w = Writer::new();
        w.u32(self.config.width);
        w.u32(self.config.height);
        w.u8(format_to_u8(self.config.format));
        w.bool(self.config.offscreen_awareness);
        w.bool(self.config.compress_raw);
        w.bool(self.config.server_side_scaling);
        match &self.config.rc4_key {
            Some(key) => {
                w.bool(true);
                w.bytes(key);
            }
            None => w.bool(false),
        }
        w.opt_u64(self.config.buffer_bound_bytes);
        w.opt_u64(self.config.av_bound.map(|n| n as u64));
        match self.config.liveness {
            Some(cfg) => {
                w.bool(true);
                w.u64(cfg.timeout.0);
                w.u64(cfg.ping_interval.0);
            }
            None => w.bool(false),
        }
        match self.config.degradation {
            Some(cfg) => {
                w.bool(true);
                w.u32(cfg.degrade_after);
                w.u32(cfg.promote_after);
                w.f64(cfg.pressure_fraction);
                w.u8(cfg.max_level.index() as u8);
            }
            None => w.bool(false),
        }
        w.opt_u64(self.config.cache_budget_bytes);
        w.u64(self.now.0);
        w.u32(self.viewport.0);
        w.u32(self.viewport.1);
        w.rect(&self.scale.view);
        w.u8(match &self.degradation {
            Some(c) => c.level().index() as u8,
            None => 0xFF,
        });
        w.bool(self.refresh_owed);
        w.region(&self.refresh_debt);
        w.bool(self.resync_requested);
        w.u32(self.encoder.revision() as u32);
        w.u32(self.encoder.next_seq());
        match &self.cursor_shape {
            Some(shape) => {
                w.bool(true);
                w.bytes(&encode_message(shape));
            }
            None => w.bool(false),
        }
        w.u32(self.av_fifo.len() as u32);
        for msg in &self.av_fifo {
            w.bytes(&encode_message(msg));
        }
        self.buffer.encode_checkpoint(&mut w);
        seal(w.into_inner())
    }

    /// Rebuilds a server from a [`checkpoint`](Self::checkpoint)
    /// image. Every corruption — truncation, bit flips, stale format
    /// versions, trailing garbage — surfaces as a typed
    /// [`CheckpointError`](crate::checkpoint::CheckpointError); a
    /// partial server is never constructed. The session cipher is
    /// recreated from the restored configuration's key, so the
    /// keystream restarts from position zero (the client re-keys on
    /// reconnect).
    pub fn restore(bytes: &[u8]) -> Result<Self, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{format_from_u8, open, CheckpointError, Reader};
        use crate::session::level_from_u8;
        let payload = open(bytes)?;
        let mut r = Reader::new(payload);
        let width = r.u32()?;
        let height = r.u32()?;
        let format = format_from_u8(r.u8()?)?;
        let offscreen_awareness = r.bool()?;
        let compress_raw = r.bool()?;
        let server_side_scaling = r.bool()?;
        let rc4_key = if r.bool()? { Some(r.bytes()?.to_vec()) } else { None };
        let buffer_bound_bytes = r.opt_u64()?;
        let av_bound = r.opt_u64()?.map(|n| n as usize);
        let liveness = if r.bool()? {
            Some(crate::liveness::LivenessConfig {
                timeout: thinc_net::time::SimDuration(r.u64()?),
                ping_interval: thinc_net::time::SimDuration(r.u64()?),
            })
        } else {
            None
        };
        let degradation = if r.bool()? {
            Some(crate::degradation::DegradationConfig {
                degrade_after: r.u32()?,
                promote_after: r.u32()?,
                pressure_fraction: r.f64()?,
                max_level: level_from_u8(r.u8()?)?,
            })
        } else {
            None
        };
        let cache_budget_bytes = r.opt_u64()?;
        let config = ServerConfig {
            width,
            height,
            format,
            offscreen_awareness,
            compress_raw,
            server_side_scaling,
            rc4_key,
            buffer_bound_bytes,
            av_bound,
            liveness,
            degradation,
            cache_budget_bytes,
        };
        let mut s = Self::new(config);
        s.now = SimTime(r.u64()?);
        let vw = r.u32()?;
        let vh = r.u32()?;
        s.viewport = (vw.clamp(1, width.max(1)), vh.clamp(1, height.max(1)));
        let view = r.rect()?;
        let level_byte = r.u8()?;
        s.degradation = match (s.config.degradation, level_byte) {
            (Some(_), 0xFF) => {
                return Err(CheckpointError::Malformed("missing degradation level"))
            }
            (Some(cfg), b) => Some(crate::degradation::DegradationController::restore(
                cfg,
                level_from_u8(b)?,
            )),
            (None, 0xFF) => None,
            (None, _) => {
                return Err(CheckpointError::Malformed("orphan degradation level"))
            }
        };
        let (ew, eh) = s.effective_viewport();
        s.scale = ScalePolicy::new(width, height, ew, eh).with_view(view);
        if s.config.server_side_scaling {
            s.video.set_scale(ew, width, eh, height);
        }
        s.refresh_owed = r.bool()?;
        s.refresh_debt = r.region()?;
        s.resync_requested = r.bool()?;
        let revision = r.u32()?;
        if revision > u16::MAX as u32 {
            return Err(CheckpointError::Malformed("wire revision"));
        }
        s.encoder = FrameEncoder::with_revision(revision as u16);
        s.encoder.set_next_seq(r.u32()?);
        s.cursor_shape = if r.bool()? {
            Some(crate::buffer::decode_checkpoint_message(r.bytes()?)?)
        } else {
            None
        };
        let av_len = r.u32()?;
        let mut av_fifo = VecDeque::new();
        for _ in 0..av_len {
            av_fifo.push_back(crate::buffer::decode_checkpoint_message(r.bytes()?)?);
        }
        s.av_fifo = av_fifo;
        s.buffer = ClientBuffer::decode_checkpoint(&mut r)?;
        if !r.exhausted() {
            return Err(CheckpointError::Malformed(
                "trailing bytes after checkpoint",
            ));
        }
        s.liveness = s
            .config
            .liveness
            .map(|c| crate::liveness::LivenessTracker::new(c, s.now));
        Ok(s)
    }
}

impl VideoDriver for ThincServer {
    fn create_pixmap(&mut self, _store: &DrawableStore, id: DrawableId, w: u32, h: u32) {
        self.translator.create_pixmap(id, w, h);
    }

    fn free_pixmap(&mut self, _store: &DrawableStore, id: DrawableId) {
        self.translator.free_pixmap(id);
    }

    fn solid_fill(&mut self, store: &DrawableStore, target: DrawableId, rect: Rect, color: Color) {
        let cmds = self.translator.solid_fill(store, target, rect, color);
        self.enqueue(cmds, store.screen());
    }

    fn pattern_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        tile: &Framebuffer,
    ) {
        let cmds = self.translator.pattern_fill(store, target, rect, tile);
        self.enqueue(cmds, store.screen());
    }

    fn stipple_fill(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        bits: &[u8],
        fg: Color,
        bg: Option<Color>,
    ) {
        let cmds = self.translator.stipple_fill(store, target, rect, bits, fg, bg);
        self.enqueue(cmds, store.screen());
    }

    fn copy_area(
        &mut self,
        store: &DrawableStore,
        src: DrawableId,
        dst: DrawableId,
        src_rect: Rect,
        dst_x: i32,
        dst_y: i32,
    ) {
        let cmds = self
            .translator
            .copy_area(store, src, dst, src_rect, dst_x, dst_y);
        self.enqueue(cmds, store.screen());
    }

    fn put_image(&mut self, store: &DrawableStore, target: DrawableId, rect: Rect, data: &[u8]) {
        let cmds = self.translator.put_image(store, target, rect, data);
        self.enqueue(cmds, store.screen());
    }

    fn video_display(&mut self, _store: &DrawableStore, frame: &YuvFrame, dst: Rect) {
        let msgs = self.video.display_frame(frame, dst, self.now.as_micros());
        self.video_messages += msgs.len() as u64;
        self.av_fifo.extend(msgs);
        self.enforce_av_bound();
    }

    fn composite(
        &mut self,
        store: &DrawableStore,
        target: DrawableId,
        rect: Rect,
        _data: &[u8],
        _op: thinc_raster::CompositeOp,
    ) {
        let cmds = self.translator.composite(store, target, rect);
        self.enqueue(cmds, store.screen());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_display::request::DrawRequest;
    use thinc_display::server::WindowServer;
    use thinc_display::SCREEN;
    use thinc_net::link::NetworkConfig;
    use thinc_raster::{YuvFormat, YuvFrame};

    fn system() -> WindowServer<ThincServer> {
        let thinc = ThincServer::new(ServerConfig {
            width: 64,
            height: 64,
            compress_raw: false,
            ..ServerConfig::default()
        });
        WindowServer::new(64, 64, PixelFormat::Rgb888, thinc)
    }

    fn flush_all(ws: &mut WindowServer<ThincServer>) -> Vec<Message> {
        let mut link = NetworkConfig::lan_desktop().connect();
        let mut trace = PacketTrace::new();
        let mut now = SimTime::ZERO;
        let mut msgs = Vec::new();
        for _ in 0..100 {
            let batch = ws.driver_mut().flush(now, &mut link.down, &mut trace);
            msgs.extend(batch.into_iter().map(|(_, m)| m));
            if ws.driver().av_backlog() == 0 && ws.driver().display_backlog() == 0 {
                break;
            }
            now = link.down.tx_free_at();
        }
        msgs
    }

    #[test]
    fn fill_reaches_the_wire_as_sfill() {
        let mut ws = system();
        ws.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 32, 32),
            color: Color::rgb(1, 2, 3),
        });
        let msgs = flush_all(&mut ws);
        assert!(msgs
            .iter()
            .any(|m| matches!(m, Message::Display(DisplayCommand::Sfill { .. }))));
    }

    #[test]
    fn video_frame_reaches_the_wire() {
        let mut ws = system();
        let frame = YuvFrame::new(YuvFormat::Yv12, 16, 16);
        ws.process(DrawRequest::VideoPut {
            frame,
            dst: Rect::new(0, 0, 64, 64),
        });
        let msgs = flush_all(&mut ws);
        assert!(msgs.iter().any(|m| matches!(m, Message::VideoInit { .. })));
        assert!(msgs.iter().any(|m| matches!(m, Message::VideoData { .. })));
    }

    #[test]
    fn audio_write_produces_messages() {
        let mut ws = system();
        ws.driver_mut().open_audio(44_100, 2);
        ws.driver_mut().play_audio(&vec![0u8; 8192]);
        ws.driver_mut().close_audio();
        let msgs = flush_all(&mut ws);
        assert!(msgs.iter().filter(|m| matches!(m, Message::Audio { .. })).count() >= 2);
    }

    #[test]
    fn client_hello_activates_scaling() {
        let mut ws = system();
        ws.driver_mut().handle_message(&Message::ClientHello {
            version: 1,
            viewport_width: 32,
            viewport_height: 32,
        });
        assert!(ws.driver().scaling_active());
        ws.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 64, 64),
            color: Color::WHITE,
        });
        let msgs = flush_all(&mut ws);
        let r = msgs
            .iter()
            .find_map(|m| match m {
                Message::Display(DisplayCommand::Sfill { rect, .. }) => Some(*rect),
                _ => None,
            })
            .unwrap();
        assert_eq!(r, Rect::new(0, 0, 32, 32));
    }

    #[test]
    fn input_marks_updates_realtime() {
        let mut ws = system();
        // Click at (10, 10), then draw feedback there and bulk far away.
        let ev = ws.driver_mut().handle_message(&Message::Input(ProtocolInput::ButtonPress {
            x: 10,
            y: 10,
            button: 1,
        }));
        assert!(matches!(ev, Some(InputEvent::ButtonPress(_))));
        // Bulk data outside the 32-pixel input halo around (10, 10).
        ws.process(DrawRequest::PutImage {
            target: SCREEN,
            rect: Rect::new(45, 45, 15, 15),
            data: vec![3; 15 * 15 * 3],
        });
        ws.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(8, 8, 4, 4),
            color: Color::WHITE,
        });
        let msgs = flush_all(&mut ws);
        // The button feedback (realtime) is the first *display*
        // update delivered even though it arrived second (cursor
        // control messages precede it in the priority FIFO).
        let first_display = msgs
            .iter()
            .find(|m| matches!(m, Message::Display(_)))
            .unwrap();
        assert!(matches!(
            first_display,
            Message::Display(DisplayCommand::Sfill { .. })
        ));
    }

    #[test]
    fn offscreen_to_screen_keeps_semantics_end_to_end() {
        let mut ws = system();
        let thinc_raster::Rect { .. } = Rect::default();
        let res = ws.process(DrawRequest::CreatePixmap { width: 16, height: 16 });
        let pm = match res {
            thinc_display::request::RequestResult::Created(id) => id,
            other => panic!("{other:?}"),
        };
        ws.process(DrawRequest::FillRect {
            target: pm,
            rect: Rect::new(0, 0, 16, 16),
            color: Color::rgb(4, 5, 6),
        });
        // Nothing sent while drawing stays offscreen.
        assert_eq!(ws.driver().display_backlog(), 0);
        ws.process(DrawRequest::CopyArea {
            src: pm,
            dst: SCREEN,
            src_rect: Rect::new(0, 0, 16, 16),
            dst_x: 8,
            dst_y: 8,
        });
        let msgs = flush_all(&mut ws);
        assert!(msgs
            .iter()
            .any(|m| matches!(m, Message::Display(DisplayCommand::Sfill { .. }))));
        assert!(!msgs
            .iter()
            .any(|m| matches!(m, Message::Display(DisplayCommand::Raw { .. }))));
    }

    #[test]
    fn composite_travels_as_raw_of_blended_result() {
        let mut ws = system();
        ws.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 64, 64),
            color: Color::rgb(0, 0, 0),
        });
        let data: Vec<u8> = vec![255u8, 0, 0, 128]
            .into_iter()
            .cycle()
            .take(8 * 8 * 4)
            .collect();
        ws.process(DrawRequest::Composite {
            target: SCREEN,
            rect: Rect::new(8, 8, 8, 8),
            data,
            op: thinc_raster::CompositeOp::Over,
        });
        let msgs = flush_all(&mut ws);
        // The blend result arrives as RAW; a client replay matches.
        assert!(msgs
            .iter()
            .any(|m| matches!(m, Message::Display(DisplayCommand::Raw { .. }))));
        let mut client = thinc_client::ThincClient::new(64, 64, PixelFormat::Rgb888);
        for m in &msgs {
            client.apply(m);
        }
        assert_eq!(
            client.framebuffer().get_pixel(12, 12),
            ws.screen().get_pixel(12, 12)
        );
    }

    #[test]
    fn encryption_round_trip() {
        let mut s = ThincServer::new(ServerConfig {
            rc4_key: Some(b"0123456789abcdef".to_vec()),
            ..ServerConfig::default()
        });
        let mut data = b"display update".to_vec();
        s.encrypt(&mut data);
        assert_ne!(&data, b"display update");
        // The client decrypts with its own keystream at the same
        // position.
        let mut c = Rc4::new(b"0123456789abcdef");
        c.apply(&mut data);
        assert_eq!(&data, b"display update");
    }

    #[test]
    fn liveness_pings_then_declares_dead_and_resync_revives() {
        use crate::liveness::{LivenessConfig, LivenessVerdict};
        use thinc_net::time::SimDuration;
        let mut ws = system();
        let cfg = ServerConfig {
            width: 64,
            height: 64,
            compress_raw: false,
            liveness: Some(LivenessConfig {
                timeout: SimDuration::from_secs_f64(10.0),
                ping_interval: SimDuration::from_secs_f64(2.0),
            }),
            ..ServerConfig::default()
        };
        *ws.driver_mut() = ThincServer::new(cfg);
        let secs = |s: f64| SimTime((s * 1e6) as u64);
        // Silence past the ping interval queues a probe on the wire.
        assert!(matches!(
            ws.driver_mut().poll_liveness(secs(3.0)),
            LivenessVerdict::SendPing { .. }
        ));
        let msgs = flush_all(&mut ws);
        assert!(msgs.iter().any(|m| matches!(m, Message::Ping { .. })));
        // A pong (any client message) rescues it.
        ws.driver_mut().set_time(secs(4.0));
        ws.driver_mut().handle_message(&Message::Pong {
            seq: 0,
            timestamp_us: 3_000_000,
        });
        assert!(matches!(
            ws.driver_mut().poll_liveness(secs(5.0)),
            LivenessVerdict::Alive
        ));
        // Sustained silence declares it dead — once.
        assert!(matches!(
            ws.driver_mut().poll_liveness(secs(14.5)),
            LivenessVerdict::Dead
        ));
        assert!(ws.driver().client_dead());
        let m = ws.driver().resilience_metrics();
        assert_eq!(m.liveness_timeouts(), 1);
        assert!(m.pings_sent() >= 1);
        // Reconnect: resync revives the client.
        let screen = ws.screen().clone();
        ws.driver_mut().resync(&screen);
        assert!(!ws.driver().client_dead());
        assert_eq!(ws.driver().resilience_metrics().resyncs(), 1);
    }

    #[test]
    fn overflow_debt_is_repaid_as_raw_and_client_converges() {
        // A tiny byte bound forces evictions; the next draw repays
        // the debt with fresh-screen RAW and the client still
        // converges to the exact screen content.
        let thinc = ThincServer::new(ServerConfig {
            width: 64,
            height: 64,
            compress_raw: false,
            buffer_bound_bytes: Some(4 * 1024),
            ..ServerConfig::default()
        });
        let mut ws = WindowServer::new(64, 64, PixelFormat::Rgb888, thinc);
        // Several large overlapping images blow through the bound.
        for i in 0..6 {
            ws.process(DrawRequest::PutImage {
                target: SCREEN,
                rect: Rect::new(i * 4, i * 4, 32, 32),
                data: vec![(i * 40) as u8; 32 * 32 * 3],
            });
        }
        let evicted = ws.driver().stats().buffer.overflow_evicted;
        assert!(evicted > 0, "bound should have forced evictions");
        assert_eq!(ws.driver().resilience_metrics().overflow_evictions(), evicted);
        // Drain, then repay any debt deferred while the bound was
        // full (repayment only pushes pieces that fit).
        let mut msgs = flush_all(&mut ws);
        for _ in 0..10 {
            if !ws.driver().overflow_debt_outstanding() {
                break;
            }
            let screen = ws.screen().clone();
            ws.driver_mut().repay_overflow_debt(&screen);
            msgs.extend(flush_all(&mut ws));
        }
        assert!(!ws.driver().overflow_debt_outstanding());
        let mut client = thinc_client::ThincClient::new(64, 64, PixelFormat::Rgb888);
        for m in &msgs {
            client.apply(m);
        }
        assert_eq!(client.framebuffer().data(), ws.screen().data());
    }

    #[test]
    fn av_bound_drops_oldest_video_keeps_control() {
        let thinc = ThincServer::new(ServerConfig {
            width: 64,
            height: 64,
            compress_raw: false,
            av_bound: Some(4),
            ..ServerConfig::default()
        });
        let mut ws = WindowServer::new(64, 64, PixelFormat::Rgb888, thinc);
        ws.driver_mut().set_cursor(8, 8, 0, 0, vec![0; 8 * 8 * 4]);
        let frame = YuvFrame::new(YuvFormat::Yv12, 16, 16);
        for _ in 0..10 {
            ws.process(DrawRequest::VideoPut {
                frame: frame.clone(),
                dst: Rect::new(0, 0, 64, 64),
            });
        }
        assert!(ws.driver().av_backlog() <= 4);
        assert!(ws.driver().resilience_metrics().stale_video_dropped() > 0);
        // The cursor shape survived the pressure.
        let msgs = flush_all(&mut ws);
        assert!(msgs.iter().any(|m| matches!(m, Message::CursorShape { .. })));
    }

    #[test]
    fn resync_reannounces_live_video_streams() {
        let mut ws = system();
        let frame = YuvFrame::new(YuvFormat::Yv12, 16, 16);
        ws.process(DrawRequest::VideoPut {
            frame,
            dst: Rect::new(0, 0, 64, 64),
        });
        let _ = flush_all(&mut ws);
        // Reconnect: a fresh client must learn the stream geometry.
        let screen = ws.screen().clone();
        ws.driver_mut().resync(&screen);
        let msgs = flush_all(&mut ws);
        assert!(msgs.iter().any(|m| matches!(m, Message::VideoInit { .. })));
    }

    #[test]
    fn refresh_request_latches_until_taken() {
        let mut s = ThincServer::new(ServerConfig::default());
        assert!(!s.take_resync_request());
        s.handle_message(&Message::RefreshRequest { attempt: 1 });
        assert!(s.take_resync_request());
        assert!(!s.take_resync_request(), "latch is consumed");
    }

    #[test]
    fn stale_pong_does_not_rescue_the_client() {
        use crate::liveness::{LivenessConfig, LivenessVerdict};
        use thinc_net::time::SimDuration;
        let cfg = ServerConfig {
            liveness: Some(LivenessConfig {
                timeout: SimDuration::from_secs_f64(10.0),
                ping_interval: SimDuration::from_secs_f64(2.0),
            }),
            ..ServerConfig::default()
        };
        let mut s = ThincServer::new(cfg);
        let secs = |t: f64| SimTime((t * 1e6) as u64);
        // Probe goes out with seq 0.
        assert!(matches!(
            s.poll_liveness(secs(3.0)),
            LivenessVerdict::SendPing { seq: 0 }
        ));
        // A pong answering some other (long-gone) probe surfaces from
        // the recovering link's queue: it must not count as fresh
        // traffic.
        s.set_time(secs(4.0));
        s.handle_message(&Message::Pong {
            seq: 7,
            timestamp_us: 0,
        });
        assert!(matches!(s.poll_liveness(secs(10.5)), LivenessVerdict::Dead));
        assert!(s.client_dead());
    }

    #[test]
    fn degradation_ladder_descends_under_faults_and_recovers() {
        use crate::degradation::{DegradationConfig, DegradationLevel};
        use thinc_net::fault::FaultPlan;
        use thinc_net::time::SimDuration;
        let thinc = ThincServer::new(ServerConfig {
            width: 64,
            height: 64,
            compress_raw: false,
            buffer_bound_bytes: Some(32 * 1024),
            av_bound: Some(8),
            degradation: Some(DegradationConfig {
                degrade_after: 1,
                promote_after: 1,
                ..DegradationConfig::default()
            }),
            ..ServerConfig::default()
        });
        let mut ws = WindowServer::new(64, 64, PixelFormat::Rgb888, thinc);
        // Link collapses for the first second.
        let plan = FaultPlan::seeded(3)
            .with_collapse(SimTime(0), SimDuration::from_secs(1), 0.05);
        let mut link = NetworkConfig::lan_desktop().with_faults(plan).connect();
        let mut trace = PacketTrace::new();
        let secs = |t: f64| SimTime((t * 1e6) as u64);
        // Each flush inside the window is a pressured epoch.
        for i in 0..3 {
            let _ = ws
                .driver_mut()
                .flush(secs(0.1 * (i + 1) as f64), &mut link.down, &mut trace);
        }
        assert_eq!(ws.driver().degradation_level(), DegradationLevel::Survival);
        assert!(ws.driver().scaling_active(), "survival shrinks the scale");
        let m = ws.driver().resilience_metrics();
        assert_eq!(m.degrade_steps(), 3);
        assert_eq!(m.max_degradation_level(), 3);
        assert_eq!(m.degradation_level(), 3);
        // The window clears: each clear epoch climbs one rung.
        for i in 0..3 {
            let _ = ws
                .driver_mut()
                .flush(secs(1.5 + 0.1 * i as f64), &mut link.down, &mut trace);
        }
        assert_eq!(ws.driver().degradation_level(), DegradationLevel::Full);
        assert!(!ws.driver().scaling_active());
        let m = ws.driver().resilience_metrics();
        assert_eq!(m.promote_steps(), 3);
        assert_eq!(m.degradation_level(), 0);
        // The promotion back to Full owes a refresh: the next draw
        // repays the low-fidelity period and the client converges
        // byte-exact.
        ws.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(10, 10, 8, 8),
            color: Color::rgb(9, 8, 7),
        });
        let msgs = flush_all(&mut ws);
        let mut client = thinc_client::ThincClient::new(64, 64, PixelFormat::Rgb888);
        client.apply_all(&msgs);
        assert_eq!(client.framebuffer().data(), ws.screen().data());
    }

    #[test]
    fn overflow_repay_respects_active_scaling() {
        // Regression: repaying debt while server-side scaling is
        // active used to read the *viewport-space* debt rects straight
        // off the session-sized screen and then scale the result
        // again — repainting the wrong region with doubly-shrunk
        // content. The ledger is session-space now and each piece is
        // scaled exactly once, so a scaled client converges to the
        // same image as a one-shot scaled snapshot of the screen.
        let thinc = ThincServer::new(ServerConfig {
            width: 64,
            height: 64,
            compress_raw: false,
            buffer_bound_bytes: Some(1024),
            ..ServerConfig::default()
        });
        let mut ws = WindowServer::new(64, 64, PixelFormat::Rgb888, thinc);
        ws.driver_mut().handle_message(&Message::ClientHello {
            version: 1,
            viewport_width: 32,
            viewport_height: 32,
        });
        assert!(ws.driver().scaling_active());
        for i in 0..6 {
            ws.process(DrawRequest::PutImage {
                target: SCREEN,
                rect: Rect::new(i * 4, i * 4, 32, 32),
                data: vec![(i * 40) as u8; 32 * 32 * 3],
            });
        }
        assert!(ws.driver().stats().buffer.overflow_evicted > 0);
        let mut msgs = flush_all(&mut ws);
        for _ in 0..10 {
            if !ws.driver().overflow_debt_outstanding() {
                break;
            }
            let screen = ws.screen().clone();
            ws.driver_mut().repay_overflow_debt(&screen);
            msgs.extend(flush_all(&mut ws));
        }
        assert!(!ws.driver().overflow_debt_outstanding());
        // Every repaid RAW must target the viewport, not a
        // doubly-shrunk corner of it.
        let vp = Rect::new(0, 0, 32, 32);
        for m in &msgs {
            if let Message::Display(cmd) = m {
                let r = cmd.dest_rect();
                assert!(
                    vp.contains(&r),
                    "command outside the viewport: {r:?}"
                );
            }
        }
        let mut client = thinc_client::ThincClient::new(32, 32, PixelFormat::Rgb888);
        client.apply_all(&msgs);
        // Expected: the final screen, scaled once.
        let (clip, data) = ws.screen().get_raw(&Rect::new(0, 0, 64, 64));
        let full = DisplayCommand::Raw {
            rect: clip,
            encoding: thinc_protocol::commands::RawEncoding::None,
            data: data.into(),
        };
        let scaled = ScalePolicy::new(64, 64, 32, 32)
            .transform(&full, ws.screen())
            .expect("full-screen raw survives scaling");
        let mut expect = thinc_client::ThincClient::new(32, 32, PixelFormat::Rgb888);
        expect.apply(&Message::Display(scaled));
        assert_eq!(client.framebuffer().data(), expect.framebuffer().data());
    }

    #[test]
    fn revision3_hello_enables_cache_and_older_peers_stay_uncached() {
        let hello = |version| Message::ClientHello {
            version,
            viewport_width: 1024,
            viewport_height: 768,
        };
        let mut s = ThincServer::new(ServerConfig::default());
        assert!(!s.cache_enabled(), "no cache before the handshake");
        s.handle_message(&hello(2));
        assert!(!s.cache_enabled(), "a revision-2 peer cannot resolve refs");
        s.handle_message(&hello(PROTOCOL_VERSION));
        assert!(s.cache_enabled());
        // And the config switch disables it even for revision-3 peers.
        let mut s = ThincServer::new(ServerConfig {
            cache_budget_bytes: None,
            ..ServerConfig::default()
        });
        s.handle_message(&hello(PROTOCOL_VERSION));
        assert!(!s.cache_enabled());
    }

    #[test]
    fn repeated_content_travels_as_cache_refs_and_client_converges() {
        let mut ws = system();
        ws.driver_mut().handle_message(&Message::ClientHello {
            version: PROTOCOL_VERSION,
            viewport_width: 64,
            viewport_height: 64,
        });
        assert!(ws.driver().cache_enabled());
        let mut sc = thinc_client::StreamClient::new(64, 64, PixelFormat::Rgb888);
        let hello = ws.driver().hello();
        let bytes = ws.driver_mut().encode_frame(&hello);
        sc.feed(&bytes);
        // The same tile drawn three times: the first flush ships the
        // payload, later rounds ship references the client resolves
        // from its store.
        let mut refs = 0u64;
        for _ in 0..3 {
            ws.process(DrawRequest::PutImage {
                target: SCREEN,
                rect: Rect::new(0, 0, 16, 16),
                data: vec![123u8; 16 * 16 * 3],
            });
            for m in flush_all(&mut ws) {
                if matches!(m, Message::CacheRef { .. }) {
                    refs += 1;
                }
                let bytes = ws.driver_mut().encode_frame(&m);
                sc.feed(&bytes);
            }
        }
        assert!(refs >= 2, "repeat rounds must travel as references");
        assert_eq!(sc.client().framebuffer().data(), ws.screen().data());
        let m = ws.driver().resilience_metrics();
        assert_eq!(m.cache_hits(), refs);
        assert_eq!(sc.resilience_metrics().cache_hits(), refs);
        assert!(m.cache_bytes_saved() > 0);
    }

    #[test]
    fn unsatisfiable_cache_miss_escalates_to_refresh() {
        let mut s = ThincServer::new(ServerConfig::default());
        s.handle_message(&Message::ClientHello {
            version: PROTOCOL_VERSION,
            viewport_width: 1024,
            viewport_height: 768,
        });
        // A miss for a hash the ledger never held (or evicted): the
        // client skipped an update, so a full-view refresh is owed.
        s.handle_message(&Message::CacheMiss { hash: 0xBAD_C0DE });
        assert!(s.refresh_owed, "unsatisfiable miss owes a refresh");
        assert_eq!(s.resilience_metrics().cache_misses(), 1);
    }

    /// A server with every subsystem lit up and mid-flight state:
    /// negotiated revision-3 framing (integrity + cache), a cursor, a
    /// queued A/V backlog, partially flushed display traffic, and a
    /// non-identity scale.
    fn checkpointable_server() -> WindowServer<ThincServer> {
        use crate::degradation::DegradationConfig;
        use crate::liveness::LivenessConfig;
        use thinc_net::time::SimDuration;
        let thinc = ThincServer::new(ServerConfig {
            width: 64,
            height: 64,
            rc4_key: Some(b"0123456789abcdef".to_vec()),
            buffer_bound_bytes: Some(512 * 1024),
            av_bound: Some(8),
            liveness: Some(LivenessConfig {
                timeout: SimDuration::from_secs_f64(10.0),
                ping_interval: SimDuration::from_secs_f64(2.0),
            }),
            degradation: Some(DegradationConfig::default()),
            ..ServerConfig::default()
        });
        let mut ws = WindowServer::new(64, 64, PixelFormat::Rgb888, thinc);
        ws.driver_mut().handle_message(&Message::ClientHello {
            version: PROTOCOL_VERSION,
            viewport_width: 48,
            viewport_height: 48,
        });
        ws.driver_mut().set_cursor(8, 8, 1, 1, vec![7; 8 * 8 * 4]);
        ws.driver_mut().open_audio(44_100, 2);
        ws.driver_mut().play_audio(&vec![1u8; 4096]);
        // Incompressible noise so the backlog cannot collapse to a
        // few bytes under the RAW codec.
        let mut x = 0x2545_F491u32;
        for i in 0..3 {
            let data: Vec<u8> = (0..24 * 24 * 3)
                .map(|_| {
                    x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    (x >> 24) as u8
                })
                .collect();
            ws.process(DrawRequest::PutImage {
                target: SCREEN,
                rect: Rect::new(i * 8, i * 8, 24, 24),
                data,
            });
        }
        // One constrained flush epoch against a narrow pipe: some
        // traffic goes out, the rest stays buffered (mid-flight
        // checkpoint state).
        let mut pipe = TcpPipe::new(thinc_net::tcp::TcpParams {
            bandwidth_bps: 256_000,
            sndbuf_bytes: 2 * 1024,
            ..thinc_net::tcp::TcpParams::default()
        });
        let mut trace = PacketTrace::new();
        let _ = ws.driver_mut().flush(SimTime(10_000), &mut pipe, &mut trace);
        assert!(
            ws.driver().display_backlog() > 0 || ws.driver().av_backlog() > 0,
            "checkpoint fixture should carry backlog"
        );
        ws
    }

    #[test]
    fn server_restore_re_checkpoints_byte_exact() {
        let ws = checkpointable_server();
        let c1 = ws.driver().checkpoint();
        let mut restored = ThincServer::restore(&c1).expect("valid image restores");
        let c2 = restored.checkpoint();
        assert_eq!(c1, c2, "checkpoint(restore(c)) must equal c");
        assert_eq!(restored.wire_revision(), ws.driver().wire_revision());
        assert_eq!(restored.display_backlog(), ws.driver().display_backlog());
        assert_eq!(restored.av_backlog(), ws.driver().av_backlog());
        assert_eq!(restored.viewport(), ws.driver().viewport());
        assert_eq!(restored.view(), ws.driver().view());
        assert!(restored.cache_enabled());
        // The framer continues the sequence stream exactly where the
        // crashed server left it: the same message frames to the same
        // bytes on both sides.
        let probe = Message::CursorMove { x: 3, y: 4 };
        let mut original = checkpointable_server();
        assert_eq!(
            restored.encode_frame(&probe),
            original.driver_mut().encode_frame(&probe),
        );
    }

    #[test]
    fn corrupt_server_checkpoints_are_typed_errors() {
        let ws = checkpointable_server();
        let image = ws.driver().checkpoint();
        for cut in 0..image.len().min(200) {
            assert!(ThincServer::restore(&image[..cut]).is_err());
        }
        for byte in (0..image.len()).step_by(41) {
            let mut bad = image.clone();
            bad[byte] ^= 0x08;
            assert!(ThincServer::restore(&bad).is_err(), "flip at {byte}");
        }
        let mut grown = image.clone();
        grown.push(0);
        assert!(ThincServer::restore(&grown).is_err(), "trailing garbage");
    }

    #[test]
    fn restored_server_converges_the_client() {
        // A client that saw everything up to the crash converges
        // byte-exact on the stream the restored server produces.
        let mut ws = checkpointable_server();
        let mut sc = thinc_client::StreamClient::new(48, 48, PixelFormat::Rgb888);
        // Replay the pre-crash traffic (fixture flushed one epoch
        // before checkpointing; reproduce it through a fresh fixture
        // so the client sees those bytes).
        // Instead: drive this fixture from scratch so every delivered
        // frame reaches the client.
        let hello = ws.driver().hello();
        let bytes = ws.driver_mut().encode_frame(&hello);
        sc.feed(&bytes);
        let mut link = NetworkConfig::lan_desktop().connect();
        let mut trace = PacketTrace::new();
        let mut now = SimTime(20_000);
        for _ in 0..50 {
            let batch = ws.driver_mut().flush(now, &mut link.down, &mut trace);
            for (_, m) in &batch {
                let bytes = ws.driver_mut().encode_frame(m);
                sc.feed(&bytes);
            }
            if ws.driver().display_backlog() == 0 && ws.driver().av_backlog() == 0 {
                break;
            }
            now = link.down.tx_free_at();
        }
        // Crash & failover mid-session: new content arrives only
        // after the standby took over.
        let image = ws.driver().checkpoint();
        *ws.driver_mut() = ThincServer::restore(&image).unwrap();
        ws.process(DrawRequest::FillRect {
            target: SCREEN,
            rect: Rect::new(0, 0, 64, 16),
            color: Color::rgb(9, 200, 9),
        });
        for _ in 0..50 {
            let batch = ws.driver_mut().flush(now, &mut link.down, &mut trace);
            for (_, m) in &batch {
                let bytes = ws.driver_mut().encode_frame(m);
                sc.feed(&bytes);
            }
            if ws.driver().display_backlog() == 0 && ws.driver().av_backlog() == 0 {
                break;
            }
            now = link.down.tx_free_at();
        }
        assert_eq!(
            sc.resilience_metrics().seq_gaps(),
            0,
            "failover must not break the frame sequence"
        );
        // Expected image: the final screen scaled once onto the
        // 48x48 viewport.
        let (clip, data) = ws.screen().get_raw(&Rect::new(0, 0, 64, 64));
        let full = DisplayCommand::Raw {
            rect: clip,
            encoding: thinc_protocol::commands::RawEncoding::None,
            data: data.into(),
        };
        let scaled = ScalePolicy::new(64, 64, 48, 48)
            .transform(&full, ws.screen())
            .expect("full-screen raw survives scaling");
        let mut expect = thinc_client::ThincClient::new(48, 48, PixelFormat::Rgb888);
        expect.apply(&Message::Display(scaled));
        assert_eq!(sc.client().framebuffer().data(), expect.framebuffer().data());
    }

    #[test]
    fn hello_reports_session_geometry() {
        let s = ThincServer::new(ServerConfig::default());
        match s.hello() {
            Message::ServerHello { width, height, depth, .. } => {
                assert_eq!((width, height, depth), (1024, 768, 24));
            }
            other => panic!("{other:?}"),
        }
    }
}
