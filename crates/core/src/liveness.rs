//! Server-side client liveness tracking.
//!
//! The server holds all session state (§1–§3), so it — not the client
//! — must decide when a connection is gone: a dead client's buffers
//! would otherwise accumulate display updates forever. Display and
//! input traffic doubles as the heartbeat; when a client has been
//! silent past the ping interval the server probes it with
//! [`Message::Ping`](thinc_protocol::Message::Ping), and when silence
//! reaches the timeout the client is declared dead and its resources
//! are reclaimable. A returning client reconnects and resyncs — the
//! session itself survives.

use thinc_net::time::{SimDuration, SimTime};

/// Liveness policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Silence after which the client is declared dead.
    pub timeout: SimDuration,
    /// Silence after which the server sends a ping probe (should be
    /// well under `timeout` so a live-but-idle client gets several
    /// chances to answer).
    pub ping_interval: SimDuration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        Self {
            timeout: SimDuration::from_secs_f64(30.0),
            ping_interval: SimDuration::from_secs_f64(5.0),
        }
    }
}

/// What the server should do about a client right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessVerdict {
    /// Recent traffic; nothing to do.
    Alive,
    /// Silent past the ping interval: send a probe with this sequence
    /// number.
    SendPing {
        /// Sequence number for the probe.
        seq: u32,
    },
    /// Silent past the timeout: declare the client dead.
    Dead,
}

/// Tracks one client's liveness from the traffic the server observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessTracker {
    config: LivenessConfig,
    last_activity: SimTime,
    /// The most recent unanswered probe: `(seq, sent_at)`. Only a Pong
    /// echoing exactly this `seq` counts as proof of life — a stale
    /// Pong for an earlier probe (e.g. delayed in a recovering link's
    /// queue) says nothing about the connection *now*.
    outstanding_ping: Option<(u32, SimTime)>,
    next_ping_seq: u32,
    dead: bool,
}

impl LivenessTracker {
    /// Starts tracking at `now` (connection time counts as activity).
    pub fn new(config: LivenessConfig, now: SimTime) -> Self {
        Self {
            config,
            last_activity: now,
            outstanding_ping: None,
            next_ping_seq: 0,
            dead: false,
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> LivenessConfig {
        self.config
    }

    /// Records genuine traffic from the client (input, hello, refresh
    /// request — anything the client originated just now proves the
    /// connection lives). Pongs go through
    /// [`note_pong`](Self::note_pong) instead, because a pong only
    /// proves liveness when it answers the latest probe.
    pub fn note_activity(&mut self, now: SimTime) {
        if now > self.last_activity {
            self.last_activity = now;
        }
        self.outstanding_ping = None;
    }

    /// Records a Pong echoing probe `seq`. Credits activity only when
    /// `seq` matches the latest outstanding probe (exact equality is
    /// wraparound-safe: sequence numbers are generated with
    /// `wrapping_add`, and only the single latest probe is ever
    /// matchable). Returns whether the pong was fresh.
    pub fn note_pong(&mut self, seq: u32, now: SimTime) -> bool {
        match self.outstanding_ping {
            Some((expect, _)) if expect == seq => {
                self.note_activity(now);
                true
            }
            _ => false,
        }
    }

    /// The sequence number of the latest unanswered probe, if any.
    pub fn outstanding_ping_seq(&self) -> Option<u32> {
        self.outstanding_ping.map(|(seq, _)| seq)
    }

    /// Whether the client has been declared dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Restarts tracking after a reconnect: the client is live again
    /// as of `now`.
    pub fn reset(&mut self, now: SimTime) {
        self.last_activity = now;
        self.outstanding_ping = None;
        self.dead = false;
    }

    /// Time of the last observed client activity.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Evaluates the client at `now`. At most one ping per silent
    /// ping-interval is requested; once silence reaches the timeout
    /// the verdict is `Dead` (latched until [`reset`](Self::reset)).
    pub fn poll(&mut self, now: SimTime) -> LivenessVerdict {
        if self.dead {
            return LivenessVerdict::Dead;
        }
        let silence = now - self.last_activity;
        if silence >= self.config.timeout {
            self.dead = true;
            return LivenessVerdict::Dead;
        }
        if silence >= self.config.ping_interval {
            let due = match self.outstanding_ping {
                None => true,
                Some((_, at)) => now - at >= self.config.ping_interval,
            };
            if due {
                let seq = self.next_ping_seq;
                self.next_ping_seq = self.next_ping_seq.wrapping_add(1);
                self.outstanding_ping = Some((seq, now));
                return LivenessVerdict::SendPing { seq };
            }
        }
        LivenessVerdict::Alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LivenessConfig {
        LivenessConfig {
            timeout: SimDuration::from_secs_f64(10.0),
            ping_interval: SimDuration::from_secs_f64(2.0),
        }
    }

    fn secs(s: f64) -> SimTime {
        SimTime((s * 1e6) as u64)
    }

    #[test]
    fn active_client_stays_alive() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        for i in 1..100 {
            t.note_activity(secs(i as f64));
            assert_eq!(t.poll(secs(i as f64 + 0.5)), LivenessVerdict::Alive);
        }
        assert!(!t.is_dead());
    }

    #[test]
    fn silence_triggers_ping_then_death() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(t.poll(secs(1.0)), LivenessVerdict::Alive);
        // Past the ping interval: exactly one probe per interval.
        assert_eq!(t.poll(secs(2.5)), LivenessVerdict::SendPing { seq: 0 });
        assert_eq!(t.poll(secs(3.0)), LivenessVerdict::Alive);
        assert_eq!(t.poll(secs(5.0)), LivenessVerdict::SendPing { seq: 1 });
        // Past the timeout: dead, and the verdict latches.
        assert_eq!(t.poll(secs(10.0)), LivenessVerdict::Dead);
        assert!(t.is_dead());
        assert_eq!(t.poll(secs(10.5)), LivenessVerdict::Dead);
    }

    #[test]
    fn pong_activity_rescues_the_client() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(t.poll(secs(2.5)), LivenessVerdict::SendPing { seq: 0 });
        assert!(t.note_pong(0, secs(3.0))); // Matching pong arrives.
        assert_eq!(t.poll(secs(4.0)), LivenessVerdict::Alive);
        // The clock restarts from the pong: death comes 10 s later.
        assert_eq!(t.poll(secs(13.0)), LivenessVerdict::Dead);
    }

    #[test]
    fn stale_pong_does_not_count_as_fresh_traffic() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(t.poll(secs(2.5)), LivenessVerdict::SendPing { seq: 0 });
        assert_eq!(t.poll(secs(5.0)), LivenessVerdict::SendPing { seq: 1 });
        // A delayed pong for probe 0 arrives after probe 1 went out: it
        // proves nothing about the connection now and must not rescue.
        assert!(!t.note_pong(0, secs(6.0)));
        assert_eq!(t.outstanding_ping_seq(), Some(1));
        assert_eq!(t.poll(secs(10.0)), LivenessVerdict::Dead);
    }

    #[test]
    fn unsolicited_pong_is_ignored() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        assert!(!t.note_pong(7, secs(1.0)));
        assert_eq!(t.last_activity(), SimTime::ZERO);
    }

    proptest::proptest! {
        /// Over any probe history — including sequence wraparound from
        /// near `u32::MAX` — a pong matching the latest outstanding
        /// probe always rescues, and a pong for any older probe never
        /// does.
        #[test]
        fn seq_matching_survives_wraparound(
            start_seq in proptest::prelude::any::<u32>(),
            probes in 1u32..12,
            stale_back in 1u32..8,
        ) {
            // Huge timeout: the run issues `probes` probes back to
            // back without ever dying; every poll past the first
            // interval is exactly one SendPing.
            let cfg = LivenessConfig {
                timeout: SimDuration::from_secs_f64(1_000.0),
                ping_interval: SimDuration::from_secs_f64(2.0),
            };
            let mut t = LivenessTracker::new(cfg, SimTime::ZERO);
            t.next_ping_seq = start_seq;
            let mut latest = None;
            for i in 0..probes {
                let at = secs(2.5 + 2.0 * i as f64);
                match t.poll(at) {
                    LivenessVerdict::SendPing { seq } => latest = Some((seq, at)),
                    other => panic!("expected probe, got {other:?}"),
                }
            }
            let (seq, at) = latest.unwrap();
            proptest::prop_assert_eq!(seq, start_seq.wrapping_add(probes - 1));
            let pong_at = at + SimDuration::from_secs_f64(0.5);
            // Stale pong (an earlier seq, wraparound-aware) never counts
            // and leaves the probe outstanding.
            let stale = seq.wrapping_sub(stale_back);
            let mut stale_t = t.clone();
            proptest::prop_assert!(!stale_t.note_pong(stale, pong_at));
            proptest::prop_assert_eq!(stale_t.outstanding_ping_seq(), Some(seq));
            // Matching pong always counts.
            let mut fresh = t.clone();
            proptest::prop_assert!(fresh.note_pong(seq, pong_at));
            proptest::prop_assert_eq!(fresh.last_activity(), pong_at);
            proptest::prop_assert_eq!(fresh.outstanding_ping_seq(), None);
        }
    }

    #[test]
    fn reset_revives_after_reconnect() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(t.poll(secs(10.0)), LivenessVerdict::Dead);
        t.reset(secs(20.0));
        assert!(!t.is_dead());
        assert_eq!(t.poll(secs(21.0)), LivenessVerdict::Alive);
    }
}
