//! Server-side client liveness tracking.
//!
//! The server holds all session state (§1–§3), so it — not the client
//! — must decide when a connection is gone: a dead client's buffers
//! would otherwise accumulate display updates forever. Display and
//! input traffic doubles as the heartbeat; when a client has been
//! silent past the ping interval the server probes it with
//! [`Message::Ping`](thinc_protocol::Message::Ping), and when silence
//! reaches the timeout the client is declared dead and its resources
//! are reclaimable. A returning client reconnects and resyncs — the
//! session itself survives.

use thinc_net::time::{SimDuration, SimTime};

/// Liveness policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Silence after which the client is declared dead.
    pub timeout: SimDuration,
    /// Silence after which the server sends a ping probe (should be
    /// well under `timeout` so a live-but-idle client gets several
    /// chances to answer).
    pub ping_interval: SimDuration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        Self {
            timeout: SimDuration::from_secs_f64(30.0),
            ping_interval: SimDuration::from_secs_f64(5.0),
        }
    }
}

/// What the server should do about a client right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessVerdict {
    /// Recent traffic; nothing to do.
    Alive,
    /// Silent past the ping interval: send a probe with this sequence
    /// number.
    SendPing {
        /// Sequence number for the probe.
        seq: u32,
    },
    /// Silent past the timeout: declare the client dead.
    Dead,
}

/// Tracks one client's liveness from the traffic the server observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessTracker {
    config: LivenessConfig,
    last_activity: SimTime,
    last_ping: Option<SimTime>,
    next_ping_seq: u32,
    dead: bool,
}

impl LivenessTracker {
    /// Starts tracking at `now` (connection time counts as activity).
    pub fn new(config: LivenessConfig, now: SimTime) -> Self {
        Self {
            config,
            last_activity: now,
            last_ping: None,
            next_ping_seq: 0,
            dead: false,
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> LivenessConfig {
        self.config
    }

    /// Records traffic from the client (input, pong, hello — anything
    /// proves the connection lives).
    pub fn note_activity(&mut self, now: SimTime) {
        if now > self.last_activity {
            self.last_activity = now;
        }
        self.last_ping = None;
    }

    /// Whether the client has been declared dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Restarts tracking after a reconnect: the client is live again
    /// as of `now`.
    pub fn reset(&mut self, now: SimTime) {
        self.last_activity = now;
        self.last_ping = None;
        self.dead = false;
    }

    /// Time of the last observed client activity.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Evaluates the client at `now`. At most one ping per silent
    /// ping-interval is requested; once silence reaches the timeout
    /// the verdict is `Dead` (latched until [`reset`](Self::reset)).
    pub fn poll(&mut self, now: SimTime) -> LivenessVerdict {
        if self.dead {
            return LivenessVerdict::Dead;
        }
        let silence = now - self.last_activity;
        if silence >= self.config.timeout {
            self.dead = true;
            return LivenessVerdict::Dead;
        }
        if silence >= self.config.ping_interval {
            let due = match self.last_ping {
                None => true,
                Some(at) => now - at >= self.config.ping_interval,
            };
            if due {
                self.last_ping = Some(now);
                let seq = self.next_ping_seq;
                self.next_ping_seq = self.next_ping_seq.wrapping_add(1);
                return LivenessVerdict::SendPing { seq };
            }
        }
        LivenessVerdict::Alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LivenessConfig {
        LivenessConfig {
            timeout: SimDuration::from_secs_f64(10.0),
            ping_interval: SimDuration::from_secs_f64(2.0),
        }
    }

    fn secs(s: f64) -> SimTime {
        SimTime((s * 1e6) as u64)
    }

    #[test]
    fn active_client_stays_alive() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        for i in 1..100 {
            t.note_activity(secs(i as f64));
            assert_eq!(t.poll(secs(i as f64 + 0.5)), LivenessVerdict::Alive);
        }
        assert!(!t.is_dead());
    }

    #[test]
    fn silence_triggers_ping_then_death() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(t.poll(secs(1.0)), LivenessVerdict::Alive);
        // Past the ping interval: exactly one probe per interval.
        assert_eq!(t.poll(secs(2.5)), LivenessVerdict::SendPing { seq: 0 });
        assert_eq!(t.poll(secs(3.0)), LivenessVerdict::Alive);
        assert_eq!(t.poll(secs(5.0)), LivenessVerdict::SendPing { seq: 1 });
        // Past the timeout: dead, and the verdict latches.
        assert_eq!(t.poll(secs(10.0)), LivenessVerdict::Dead);
        assert!(t.is_dead());
        assert_eq!(t.poll(secs(10.5)), LivenessVerdict::Dead);
    }

    #[test]
    fn pong_activity_rescues_the_client() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(t.poll(secs(2.5)), LivenessVerdict::SendPing { seq: 0 });
        t.note_activity(secs(3.0)); // Pong arrives.
        assert_eq!(t.poll(secs(4.0)), LivenessVerdict::Alive);
        // The clock restarts from the pong: death comes 10 s later.
        assert_eq!(t.poll(secs(13.0)), LivenessVerdict::Dead);
    }

    #[test]
    fn reset_revives_after_reconnect() {
        let mut t = LivenessTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(t.poll(secs(10.0)), LivenessVerdict::Dead);
        t.reset(secs(20.0));
        assert!(!t.is_dead());
        assert_eq!(t.poll(secs(21.0)), LivenessVerdict::Alive);
    }
}
