//! Server-side screen scaling (§6).
//!
//! After a client reports a viewport smaller than the session, the
//! server resizes every update before sending. The policy is
//! per-command, exactly as in the paper:
//!
//! - `RAW` — resampled (high-quality simplified-Fant), large savings;
//! - `PFILL` — the tile image is resized;
//! - `BITMAP` — cannot be resized without artifacts (no intermediate
//!   values in 1-bit data), so it is converted to `RAW` from the
//!   rendered screen and resampled;
//! - `SFILL` — "resizing represents no savings", sent with mapped
//!   coordinates only;
//! - `COPY` — coordinates mapped.

use thinc_protocol::commands::{DisplayCommand, RawEncoding, Tile};
use thinc_raster::scale::scale_region;
use thinc_raster::{scale_image, Framebuffer, Rect, ScaleFilter};

/// Maps session-coordinate updates into a smaller client viewport.
///
/// The *view* is the session-space region currently shown (the whole
/// session by default). Zooming (§6) narrows the view: updates outside
/// it are dropped entirely, and updates inside map onto the viewport
/// at the zoomed scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalePolicy {
    /// Session (server framebuffer) width.
    pub session_w: u32,
    /// Session height.
    pub session_h: u32,
    /// Client viewport width.
    pub viewport_w: u32,
    /// Client viewport height.
    pub viewport_h: u32,
    /// The session-space region mapped onto the viewport.
    pub view: Rect,
}

impl ScalePolicy {
    /// A policy mapping the whole `session` onto `viewport`.
    pub fn new(session_w: u32, session_h: u32, viewport_w: u32, viewport_h: u32) -> Self {
        Self {
            session_w,
            session_h,
            viewport_w,
            viewport_h,
            view: Rect::new(0, 0, session_w, session_h),
        }
    }

    /// Restricts the mapped region to `view` (zoom). The view is
    /// clamped to the session and never empty.
    pub fn with_view(mut self, view: Rect) -> Self {
        let session = Rect::new(0, 0, self.session_w, self.session_h);
        let v = view.intersection(&session);
        self.view = if v.is_empty() { session } else { v };
        self
    }

    /// Whether any transformation is needed.
    pub fn is_identity(&self) -> bool {
        self.view == Rect::new(0, 0, self.session_w, self.session_h)
            && self.session_w == self.viewport_w
            && self.session_h == self.viewport_h
    }

    /// Maps a session point to viewport coordinates (cursor
    /// positions). Points outside the view clamp to its edge.
    pub fn map_point(&self, x: i32, y: i32) -> (i32, i32) {
        if self.is_identity() {
            return (x, y);
        }
        let cx = x.clamp(self.view.x, self.view.right() - 1) - self.view.x;
        let cy = y.clamp(self.view.y, self.view.bottom() - 1) - self.view.y;
        (
            (cx as i64 * self.viewport_w as i64 / self.view.w.max(1) as i64) as i32,
            (cy as i64 * self.viewport_h as i64 / self.view.h.max(1) as i64) as i32,
        )
    }

    /// Maps a session rectangle to viewport coordinates (covering).
    /// Content outside the view maps to an empty rect.
    pub fn map_rect(&self, r: &Rect) -> Rect {
        if self.is_identity() {
            return *r;
        }
        let visible = r.intersection(&self.view);
        if visible.is_empty() {
            return Rect::default();
        }
        visible
            .translated(-self.view.x, -self.view.y)
            .scaled(self.viewport_w, self.view.w, self.viewport_h, self.view.h)
    }

    /// Maps a viewport rectangle back to session coordinates — the
    /// covering inverse of [`map_rect`](Self::map_rect): the result
    /// contains every session pixel whose mapped image intersects
    /// `r`. Overflow debt is recorded in viewport space (the buffer
    /// holds already-scaled commands), but the authoritative screen is
    /// session-sized; repaying debt reads the screen through this
    /// inverse before scaling down again.
    pub fn unmap_rect(&self, r: &Rect) -> Rect {
        if self.is_identity() {
            return *r;
        }
        let vp = r.intersection(&Rect::new(0, 0, self.viewport_w, self.viewport_h));
        if vp.is_empty() {
            return Rect::default();
        }
        let vw = self.viewport_w.max(1) as i64;
        let vh = self.viewport_h.max(1) as i64;
        let x0 = self.view.x as i64 + (vp.x as i64 * self.view.w as i64) / vw;
        let y0 = self.view.y as i64 + (vp.y as i64 * self.view.h as i64) / vh;
        let x1 = self.view.x as i64 + (vp.right() as i64 * self.view.w as i64 + vw - 1) / vw;
        let y1 = self.view.y as i64 + (vp.bottom() as i64 * self.view.h as i64 + vh - 1) / vh;
        let out = Rect::new(
            x0 as i32,
            y0 as i32,
            (x1 - x0).max(0) as u32,
            (y1 - y0).max(0) as u32,
        );
        out.intersection(&self.view)
    }

    /// Transforms one command for the viewport. `screen` is the
    /// server's rendered framebuffer (session coordinates), used for
    /// the `BITMAP`→`RAW` conversion.
    ///
    /// Returns `None` when the command maps to nothing visible.
    pub fn transform(&self, cmd: &DisplayCommand, screen: &Framebuffer) -> Option<DisplayCommand> {
        if self.is_identity() {
            return Some(cmd.clone());
        }
        match cmd {
            DisplayCommand::Sfill { rect, color } => {
                let r = self.map_rect(rect);
                (!r.is_empty()).then_some(DisplayCommand::Sfill { rect: r, color: *color })
            }
            DisplayCommand::Copy {
                src_rect,
                dst_x,
                dst_y,
            } => {
                let s = self.map_rect(src_rect);
                let d = self.map_rect(&Rect::new(*dst_x, *dst_y, src_rect.w, src_rect.h));
                if s.is_empty() || d.is_empty() {
                    return None;
                }
                // Use the destination's mapped size for both (COPY
                // requires equal extents); covering-rounding may
                // differ by a pixel between the two mappings.
                let src = Rect::new(s.x, s.y, d.w.min(s.w), d.h.min(s.h));
                Some(DisplayCommand::Copy {
                    src_rect: src,
                    dst_x: d.x,
                    dst_y: d.y,
                })
            }
            DisplayCommand::Raw {
                rect,
                encoding: RawEncoding::None,
                data,
            } => {
                let r = self.map_rect(rect);
                if r.is_empty() {
                    return None;
                }
                let total = rect.area() as usize;
                if total == 0 || data.len() % total != 0 {
                    return None;
                }
                // Rebuild a framebuffer from the payload, take the
                // view-visible portion and resample it.
                let fmt = format_for_bpp(data.len() / total)?;
                let mut fb = Framebuffer::new(rect.w, rect.h, fmt);
                fb.put_raw(&Rect::new(0, 0, rect.w, rect.h), data);
                let visible = rect
                    .intersection(&self.view)
                    .translated(-rect.x, -rect.y);
                let scaled = scale_region(&fb, &visible, r.w, r.h, ScaleFilter::Fant);
                let (_, out) = scaled.get_raw(&Rect::new(0, 0, r.w, r.h));
                Some(DisplayCommand::Raw {
                    rect: r,
                    encoding: RawEncoding::None,
                    data: out.into(),
                })
            }
            DisplayCommand::Raw { rect, .. } => {
                // Compressed payload: fall back to the rendered screen.
                self.raw_from_screen(rect, screen)
            }
            DisplayCommand::Pfill { rect, tile } => {
                let r = self.map_rect(rect);
                if r.is_empty() {
                    return None;
                }
                // Resize the tile by the view-to-viewport ratio (at
                // least 1 px).
                let tw = ((tile.width as u64 * self.viewport_w as u64 / self.view.w.max(1) as u64)
                    .max(1)) as u32;
                let th = ((tile.height as u64 * self.viewport_h as u64 / self.view.h.max(1) as u64)
                    .max(1)) as u32;
                let fmt = format_for_bpp(
                    tile.pixels.len() / (tile.width as usize * tile.height as usize).max(1),
                )?;
                let mut fb = Framebuffer::new(tile.width, tile.height, fmt);
                fb.put_raw(&Rect::new(0, 0, tile.width, tile.height), &tile.pixels);
                let scaled = scale_image(&fb, tw, th, ScaleFilter::Fant);
                let (_, pixels) = scaled.get_raw(&Rect::new(0, 0, tw, th));
                Some(DisplayCommand::Pfill {
                    rect: r,
                    tile: Tile {
                        width: tw,
                        height: th,
                        pixels,
                    },
                })
            }
            DisplayCommand::Bitmap { rect, .. } => {
                // BITMAP → RAW from the rendered screen, resampled
                // with anti-aliasing (the §6 rule).
                self.raw_from_screen(rect, screen)
            }
        }
    }

    fn raw_from_screen(&self, rect: &Rect, screen: &Framebuffer) -> Option<DisplayCommand> {
        let clip = rect.intersection(&screen.bounds()).intersection(&self.view);
        let r = self.map_rect(&clip);
        if r.is_empty() {
            return None;
        }
        let scaled = scale_region(screen, &clip, r.w, r.h, ScaleFilter::Fant);
        let (_, data) = scaled.get_raw(&Rect::new(0, 0, r.w, r.h));
        Some(DisplayCommand::Raw {
            rect: r,
            encoding: RawEncoding::None,
            data: data.into(),
        })
    }
}

fn format_for_bpp(bpp: usize) -> Option<thinc_raster::PixelFormat> {
    use thinc_raster::PixelFormat as PF;
    Some(match bpp {
        1 => PF::Indexed8,
        2 => PF::Rgb565,
        3 => PF::Rgb888,
        4 => PF::Rgba8888,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_raster::{Color, PixelFormat};

    fn policy() -> ScalePolicy {
        // The paper's PDA configuration: 1024x768 -> 320x240.
        ScalePolicy::new(1024, 768, 320, 240)
    }

    fn screen() -> Framebuffer {
        Framebuffer::new(1024, 768, PixelFormat::Rgb888)
    }

    #[test]
    fn identity_passthrough() {
        let p = ScalePolicy::new(100, 100, 100, 100);
        assert!(p.is_identity());
        let cmd = DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 50, 50),
            color: Color::WHITE,
        };
        assert_eq!(p.transform(&cmd, &screen()), Some(cmd));
    }

    #[test]
    fn sfill_rect_mapped_color_kept() {
        let p = policy();
        let cmd = DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 1024, 768),
            color: Color::rgb(9, 9, 9),
        };
        match p.transform(&cmd, &screen()).unwrap() {
            DisplayCommand::Sfill { rect, color } => {
                assert_eq!(rect, Rect::new(0, 0, 320, 240));
                assert_eq!(color, Color::rgb(9, 9, 9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn raw_payload_shrinks_by_area_ratio() {
        let p = policy();
        let cmd = DisplayCommand::Raw {
            rect: Rect::new(0, 0, 256, 192),
            encoding: RawEncoding::None,
            data: vec![7; 256 * 192 * 3].into(),
        };
        match p.transform(&cmd, &screen()).unwrap() {
            DisplayCommand::Raw { rect, data, .. } => {
                assert_eq!(rect, Rect::new(0, 0, 80, 60));
                assert_eq!(data.len(), 80 * 60 * 3);
                // Flat content stays flat through Fant.
                assert!(data.iter().all(|&b| b == 7));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bitmap_converts_to_raw() {
        let p = policy();
        let mut scr = screen();
        scr.fill_rect(&Rect::new(0, 0, 64, 16), Color::WHITE);
        let cmd = DisplayCommand::Bitmap {
            rect: Rect::new(0, 0, 64, 16),
            bits: vec![0xFF; 8 * 16],
            fg: Color::WHITE,
            bg: None,
        };
        let out = p.transform(&cmd, &scr).unwrap();
        match out {
            DisplayCommand::Raw { rect, data, .. } => {
                assert_eq!(rect, Rect::new(0, 0, 20, 5));
                assert_eq!(data.len(), 20 * 5 * 3);
                assert_eq!(&data[0..3], &[255, 255, 255]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pfill_tile_resized() {
        let p = policy();
        let cmd = DisplayCommand::Pfill {
            rect: Rect::new(0, 0, 512, 384),
            tile: Tile {
                width: 32,
                height: 32,
                pixels: vec![5; 32 * 32 * 3],
            },
        };
        match p.transform(&cmd, &screen()).unwrap() {
            DisplayCommand::Pfill { rect, tile } => {
                assert_eq!(rect, Rect::new(0, 0, 160, 120));
                assert_eq!(tile.width, 10);
                assert_eq!(tile.height, 10);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn copy_coordinates_mapped() {
        let p = policy();
        let cmd = DisplayCommand::Copy {
            src_rect: Rect::new(0, 0, 512, 384),
            dst_x: 512,
            dst_y: 384,
        };
        match p.transform(&cmd, &screen()).unwrap() {
            DisplayCommand::Copy {
                src_rect,
                dst_x,
                dst_y,
            } => {
                assert_eq!((dst_x, dst_y), (160, 120));
                assert_eq!((src_rect.w, src_rect.h), (160, 120));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_maps_to_none() {
        // A 1-pixel command in a huge session may vanish at PDA size.
        let p = ScalePolicy::new(10_000, 10_000, 10, 10);
        let cmd = DisplayCommand::Sfill {
            rect: Rect::new(5, 5, 0, 0),
            color: Color::WHITE,
        };
        assert!(p.transform(&cmd, &screen()).is_none());
    }

    #[test]
    fn zoomed_view_drops_outside_content() {
        let p = policy().with_view(Rect::new(512, 384, 256, 192));
        // Entirely outside the view: nothing to send.
        let outside = DisplayCommand::Sfill {
            rect: Rect::new(0, 0, 100, 100),
            color: Color::WHITE,
        };
        assert!(p.transform(&outside, &screen()).is_none());
        // Inside the view: mapped at the zoomed scale.
        let inside = DisplayCommand::Sfill {
            rect: Rect::new(512, 384, 256, 192),
            color: Color::WHITE,
        };
        match p.transform(&inside, &screen()).unwrap() {
            DisplayCommand::Sfill { rect, .. } => {
                assert_eq!(rect, Rect::new(0, 0, 320, 240));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zoomed_raw_clips_to_view() {
        let p = policy().with_view(Rect::new(0, 0, 512, 384));
        // A RAW spanning the whole session: only the view half (per
        // axis) survives, mapped onto the full viewport.
        let cmd = DisplayCommand::Raw {
            rect: Rect::new(0, 0, 1024, 768),
            encoding: RawEncoding::None,
            data: vec![9; 1024 * 768 * 3].into(),
        };
        match p.transform(&cmd, &screen()).unwrap() {
            DisplayCommand::Raw { rect, data, .. } => {
                assert_eq!(rect, Rect::new(0, 0, 320, 240));
                assert_eq!(data.len(), 320 * 240 * 3);
                assert!(data.iter().all(|&b| b == 9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_view_clamps_to_session() {
        let p = policy().with_view(Rect::new(-100, -100, 5000, 5000));
        assert_eq!(p.view, Rect::new(0, 0, 1024, 768));
        // Degenerate views fall back to the whole session.
        let q = policy().with_view(Rect::new(5000, 5000, 10, 10));
        assert_eq!(q.view, Rect::new(0, 0, 1024, 768));
    }

    #[test]
    fn unmap_covers_the_mapped_image() {
        // For any session rect, unmap(map(r)) must contain r ∩ view —
        // the covering-inverse property the debt-repay path relies on.
        let policies = [
            policy(),
            policy().with_view(Rect::new(512, 384, 256, 192)),
            ScalePolicy::new(64, 64, 17, 13),
            ScalePolicy::new(100, 100, 100, 100),
        ];
        let rects = [
            Rect::new(0, 0, 1024, 768),
            Rect::new(3, 5, 100, 40),
            Rect::new(513, 390, 50, 60),
            Rect::new(0, 0, 1, 1),
            Rect::new(40, 40, 7, 9),
        ];
        for p in &policies {
            for r in &rects {
                let mapped = p.map_rect(r);
                if mapped.is_empty() {
                    continue;
                }
                let back = p.unmap_rect(&mapped);
                let expect = r.intersection(&p.view);
                assert!(
                    back.intersection(&expect) == expect,
                    "{p:?} {r:?} -> {mapped:?} -> {back:?} misses {expect:?}"
                );
            }
        }
    }

    #[test]
    fn unmap_clamps_to_view_and_viewport() {
        let p = policy().with_view(Rect::new(512, 384, 256, 192));
        // The whole viewport unmaps to exactly the view.
        assert_eq!(p.unmap_rect(&Rect::new(0, 0, 320, 240)), p.view);
        // Outside the viewport unmaps to nothing.
        assert!(p.unmap_rect(&Rect::new(400, 300, 10, 10)).is_empty());
    }

    #[test]
    fn bandwidth_reduction_factor() {
        // The headline effect: a fullscreen RAW shrinks by more than
        // the paper's "factor of two" at PDA scale (area ratio ~10x).
        let p = policy();
        let cmd = DisplayCommand::Raw {
            rect: Rect::new(0, 0, 1024, 768),
            encoding: RawEncoding::None,
            data: vec![1; 1024 * 768 * 3].into(),
        };
        let out = p.transform(&cmd, &screen()).unwrap();
        assert!(out.wire_size() * 2 < cmd.wire_size());
    }
}
