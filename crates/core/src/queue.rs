//! Protocol command objects and the command queue (§4 of the paper).
//!
//! "A command queue is a queue where commands drawing to a particular
//! region are ordered according to their arrival time. The command
//! queue keeps track of commands affecting its draw region, and
//! guarantees that only those commands relevant to the current
//! contents of the region are in the queue."
//!
//! Three overwrite classes govern eviction:
//!
//! - **Partial** commands are opaque and may be partially or fully
//!   overwritten — the queue tracks the still-visible remainder and
//!   evicts the command once nothing remains.
//! - **Complete** commands are opaque but only evicted when fully
//!   covered (solid fills: tiny on the wire, so clipping buys nothing).
//! - **Transparent** commands depend on output drawn before them and
//!   never cause eviction themselves.

use thinc_protocol::commands::{DisplayCommand, RawEncoding};
use thinc_raster::{Rect, Region};

/// How a command overwrites and may be overwritten (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverwriteClass {
    /// Opaque; only evicted when completely covered.
    Complete,
    /// Opaque; clipped to its still-visible region, evicted when empty.
    Partial,
    /// Depends on previously drawn output; does not evict others.
    Transparent,
}

/// Classifies a protocol command per the paper's taxonomy.
///
/// `RAW` and `PFILL` are opaque and cheap to clip (partial). `SFILL`
/// is the canonical complete command. A `BITMAP` with a background
/// color is opaque but not cheaply clippable bit-wise, so it is
/// treated as complete; without a background it leaves 0-bits
/// untouched and is transparent. `COPY` reads the framebuffer produced
/// by earlier commands, so it is transparent (order-dependent).
pub fn classify(cmd: &DisplayCommand) -> OverwriteClass {
    match cmd {
        DisplayCommand::Raw { .. } | DisplayCommand::Pfill { .. } => OverwriteClass::Partial,
        DisplayCommand::Sfill { .. } => OverwriteClass::Complete,
        DisplayCommand::Bitmap { bg: Some(_), .. } => OverwriteClass::Complete,
        DisplayCommand::Bitmap { bg: None, .. } => OverwriteClass::Transparent,
        DisplayCommand::Copy { .. } => OverwriteClass::Transparent,
    }
}

/// A command held in a queue, with its bookkeeping.
#[derive(Debug, Clone)]
pub struct QueuedCommand {
    /// Arrival sequence number (queue-local, monotonically increasing).
    pub seq: u64,
    /// The protocol command itself.
    pub cmd: DisplayCommand,
    /// Overwrite class (cached from [`classify`]).
    pub class: OverwriteClass,
    /// For partial commands: the part of the output still relevant.
    /// Always the full destination for other classes.
    pub visible: Region,
    /// Marked for priority delivery (overlaps the input halo, §5).
    pub realtime: bool,
}

impl QueuedCommand {
    /// Whether any of the command's output is still relevant.
    pub fn is_relevant(&self) -> bool {
        !self.visible.is_empty()
    }

    /// Wire size of the command (scheduling key).
    pub fn wire_size(&self) -> u64 {
        self.cmd.wire_size()
    }
}

/// Statistics of queue maintenance, for tests and ablation reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Commands pushed.
    pub pushed: u64,
    /// Commands evicted because they were fully overwritten.
    pub evicted: u64,
    /// Commands merged into a predecessor.
    pub merged: u64,
}

/// An ordered queue of commands drawing to one region (a pixmap or
/// the screen).
#[derive(Debug, Clone, Default)]
pub struct CommandQueue {
    entries: Vec<QueuedCommand>,
    next_seq: u64,
    stats: QueueStats,
}

impl CommandQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// The live commands, in arrival order.
    pub fn entries(&self) -> &[QueuedCommand] {
        &self.entries
    }

    /// Number of live commands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue holds no commands.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maintenance statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Pushes a command, enforcing the overlap invariants:
    /// opaque commands evict fully-covered predecessors and clip the
    /// visible regions of partial predecessors; adjacent compatible
    /// commands merge. Returns the sequence number assigned.
    pub fn push(&mut self, cmd: DisplayCommand, realtime: bool) -> u64 {
        self.stats.pushed += 1;
        let class = classify(&cmd);
        let dest = cmd.dest_rect();
        if matches!(class, OverwriteClass::Complete | OverwriteClass::Partial) && !dest.is_empty()
        {
            let mut evicted = 0;
            self.entries.retain_mut(|e| {
                match e.class {
                    OverwriteClass::Partial => {
                        e.visible.subtract_rect(&dest);
                        if e.visible.is_empty() {
                            evicted += 1;
                            return false;
                        }
                    }
                    OverwriteClass::Complete | OverwriteClass::Transparent => {
                        if dest.contains(&e.cmd.dest_rect()) {
                            evicted += 1;
                            return false;
                        }
                    }
                }
                true
            });
            self.stats.evicted += evicted;
        }
        // Merge with the most recent entry when possible (the
        // scan-line aggregation case from §4).
        if realtime == self.entries.last().map(|e| e.realtime).unwrap_or(realtime) {
            if let Some(last) = self.entries.last_mut() {
                if let Some(merged) = merge_commands(&last.cmd, &cmd) {
                    self.stats.merged += 1;
                    last.cmd = merged;
                    last.visible = Region::from_rect(last.cmd.dest_rect());
                    return last.seq;
                }
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(QueuedCommand {
            seq,
            cmd,
            class,
            visible: Region::from_rect(dest),
            realtime,
        });
        seq
    }

    /// Removes and returns all commands, in arrival order.
    pub fn drain(&mut self) -> Vec<QueuedCommand> {
        std::mem::take(&mut self.entries)
    }

    /// Total wire size of all live commands.
    pub fn wire_size(&self) -> u64 {
        self.entries.iter().map(|e| e.wire_size()).sum()
    }

    /// Returns clones of the commands whose output intersects
    /// `src_rect`, clipped/translated to `(dx, dy)` — the queue-copy
    /// operation that mirrors a pixmap-to-pixmap copy (§4.1).
    ///
    /// Commands that cannot be exactly clipped (bitmaps, copies,
    /// phase-sensitive tiles) are returned only when fully contained
    /// in `src_rect`; the caller must cover the remainder with RAW
    /// data from the source drawable (the "last resort" path). The
    /// returned region is the area covered by the returned commands.
    pub fn extract_region(&self, src_rect: &Rect, dx: i32, dy: i32) -> (Vec<DisplayCommand>, Region) {
        let mut out = Vec::new();
        // `expressed` tracks the pixels whose *final content within
        // the extraction* is fully reproduced by the returned command
        // sequence. A later command that cannot be extracted makes its
        // footprint unexpressed again (the caller's RAW fallback —
        // appended after all extracted commands and reading the final
        // drawable contents — then covers it, overwriting any
        // extracted ink in that area with identical final pixels).
        let mut expressed = Region::new();
        for e in &self.entries {
            let dest = e.cmd.dest_rect();
            let overlap = dest.intersection(src_rect);
            if overlap.is_empty() {
                continue;
            }
            // Tile fills are phase-anchored to absolute destination
            // coordinates, so they only survive translations that are
            // multiples of the tile size. Copies read other pixels of
            // the region whose extraction status is unknown, so they
            // are never extracted.
            let extractable_kind = match &e.cmd {
                DisplayCommand::Pfill { tile, .. } => {
                    tile.width > 0
                        && tile.height > 0
                        && dx.rem_euclid(tile.width as i32) == 0
                        && dy.rem_euclid(tile.height as i32) == 0
                }
                DisplayCommand::Copy { .. } => false,
                _ => true,
            };
            let clipped = if !extractable_kind {
                None
            } else if src_rect.contains(&dest) {
                // Fully contained: translate the whole command.
                let mut c = e.cmd.clone();
                c.translate(dx, dy);
                Some(c)
            } else {
                clip_command(&e.cmd, &overlap).map(|mut c| {
                    c.translate(dx, dy);
                    c
                })
            };
            match clipped {
                Some(c) => {
                    // Opaque commands express their whole footprint;
                    // transparent ones only add ink over whatever is
                    // below, leaving its expression status unchanged.
                    if classify(&e.cmd) != OverwriteClass::Transparent {
                        expressed.union_rect(&overlap.translated(dx, dy));
                    }
                    out.push(c);
                }
                None => {
                    expressed.subtract_rect(&overlap.translated(dx, dy));
                }
            }
        }
        (out, expressed)
    }
}

/// The screen regions a command's output *depends on or produces*:
/// the destination for every command, plus the source rectangle for
/// `COPY` (which reads the framebuffer produced by earlier commands).
/// Dependency analysis in the scheduler overlaps these regions.
pub fn dependency_rects(cmd: &DisplayCommand) -> Vec<Rect> {
    match cmd {
        DisplayCommand::Copy { src_rect, .. } => vec![*src_rect, cmd.dest_rect()],
        _ => vec![cmd.dest_rect()],
    }
}

/// Attempts to merge `next` into `prev`, returning the combined
/// command. Merges:
/// - equal-color `SFILL`s whose union is an exact rectangle,
/// - uncompressed `RAW`s stacked vertically with identical x-span
///   (the per-scanline image rasterization case).
pub fn merge_commands(prev: &DisplayCommand, next: &DisplayCommand) -> Option<DisplayCommand> {
    match (prev, next) {
        (
            DisplayCommand::Sfill { rect: a, color: ca },
            DisplayCommand::Sfill { rect: b, color: cb },
        ) if ca == cb => {
            let u = a.union(b);
            if u.area() == a.area() + b.area() - a.intersection(b).area() && exact_union(a, b) {
                Some(DisplayCommand::Sfill { rect: u, color: *ca })
            } else {
                None
            }
        }
        (
            DisplayCommand::Raw {
                rect: a,
                encoding: RawEncoding::None,
                data: da,
            },
            DisplayCommand::Raw {
                rect: b,
                encoding: RawEncoding::None,
                data: db,
            },
        ) if a.x == b.x && a.w == b.w && a.bottom() == b.y => {
            let mut data = Vec::with_capacity(da.len() + db.len());
            data.extend_from_slice(da);
            data.extend_from_slice(db);
            Some(DisplayCommand::Raw {
                rect: Rect::new(a.x, a.y, a.w, a.h + b.h),
                encoding: RawEncoding::None,
                data: data.into(),
            })
        }
        _ => None,
    }
}

/// Whether the union of two rectangles is exactly their combined area
/// (i.e. they tile a rectangle).
fn exact_union(a: &Rect, b: &Rect) -> bool {
    let u = a.union(b);
    u.area() == a.area() + b.area() - a.intersection(b).area()
}

/// Whether [`clip_command`] can clip this command exactly: solid
/// fills, well-formed uncompressed RAW data, and destination-anchored
/// tile fills. Bitmaps, copies and compressed RAW are not clippable.
pub fn exactly_clippable(cmd: &DisplayCommand) -> bool {
    match cmd {
        DisplayCommand::Sfill { .. } | DisplayCommand::Pfill { .. } => true,
        DisplayCommand::Raw {
            rect,
            encoding: RawEncoding::None,
            data,
        } => {
            let px = rect.area() as usize;
            px > 0 && data.len() % px == 0
        }
        _ => false,
    }
}

/// Clips a command to `clip`, when the command kind supports exact
/// clipping. Returns `None` for kinds that cannot be clipped without
/// loss (bitmap bit-shifting, copies, phase-sensitive content is
/// handled by the caller's RAW fallback).
pub fn clip_command(cmd: &DisplayCommand, clip: &Rect) -> Option<DisplayCommand> {
    let dest = cmd.dest_rect();
    let r = dest.intersection(clip);
    if r.is_empty() {
        return None;
    }
    if r == dest {
        return Some(cmd.clone());
    }
    match cmd {
        DisplayCommand::Sfill { color, .. } => Some(DisplayCommand::Sfill { rect: r, color: *color }),
        DisplayCommand::Raw {
            rect,
            encoding: RawEncoding::None,
            data,
        } => {
            // Slice the sub-rectangle out of the row-major payload.
            // The payload is tightly packed; infer bpp from the sizes.
            let total_px = rect.area() as usize;
            if total_px == 0 || data.len() % total_px != 0 {
                return None;
            }
            let bpp = data.len() / total_px;
            let src_stride = rect.w as usize * bpp;
            let row_off = (r.x - rect.x) as usize * bpp;
            let row_len = r.w as usize * bpp;
            let mut out = Vec::with_capacity(row_len * r.h as usize);
            for y in 0..r.h as usize {
                let sy = (r.y - rect.y) as usize + y;
                let start = sy * src_stride + row_off;
                out.extend_from_slice(&data[start..start + row_len]);
            }
            Some(DisplayCommand::Raw {
                rect: r,
                encoding: RawEncoding::None,
                data: out.into(),
            })
        }
        DisplayCommand::Pfill { tile, .. } => {
            // Tile phase anchors to absolute destination coordinates,
            // so shrinking the rectangle leaves every pixel unchanged.
            Some(DisplayCommand::Pfill {
                rect: r,
                tile: tile.clone(),
            })
        }
        // Compressed RAW, BITMAP (bit-shifting), COPY: not exactly
        // clippable here.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinc_protocol::commands::Tile;
    use thinc_raster::Color;

    fn sfill(x: i32, y: i32, w: u32, h: u32, v: u8) -> DisplayCommand {
        DisplayCommand::Sfill {
            rect: Rect::new(x, y, w, h),
            color: Color::rgb(v, v, v),
        }
    }

    fn raw(x: i32, y: i32, w: u32, h: u32) -> DisplayCommand {
        DisplayCommand::Raw {
            rect: Rect::new(x, y, w, h),
            encoding: RawEncoding::None,
            data: (0..(w * h * 3) as usize).map(|i| i as u8).collect(),
        }
    }

    #[test]
    fn classification_matches_paper() {
        assert_eq!(classify(&raw(0, 0, 2, 2)), OverwriteClass::Partial);
        assert_eq!(classify(&sfill(0, 0, 2, 2, 1)), OverwriteClass::Complete);
        assert_eq!(
            classify(&DisplayCommand::Copy {
                src_rect: Rect::new(0, 0, 2, 2),
                dst_x: 4,
                dst_y: 4
            }),
            OverwriteClass::Transparent
        );
        assert_eq!(
            classify(&DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 8, 8),
                bits: vec![0; 8],
                fg: Color::BLACK,
                bg: None
            }),
            OverwriteClass::Transparent
        );
        assert_eq!(
            classify(&DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 8, 8),
                bits: vec![0; 8],
                fg: Color::BLACK,
                bg: Some(Color::WHITE)
            }),
            OverwriteClass::Complete
        );
        assert_eq!(
            classify(&DisplayCommand::Pfill {
                rect: Rect::new(0, 0, 8, 8),
                tile: Tile {
                    width: 2,
                    height: 2,
                    pixels: vec![0; 12]
                }
            }),
            OverwriteClass::Partial
        );
    }

    #[test]
    fn full_overwrite_evicts() {
        let mut q = CommandQueue::new();
        q.push(raw(0, 0, 10, 10), false);
        q.push(sfill(0, 0, 20, 20, 1), false);
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats().evicted, 1);
        assert!(matches!(q.entries()[0].cmd, DisplayCommand::Sfill { .. }));
    }

    #[test]
    fn partial_overwrite_clips_visible() {
        let mut q = CommandQueue::new();
        q.push(raw(0, 0, 10, 10), false);
        q.push(sfill(5, 5, 10, 10, 1), false);
        assert_eq!(q.len(), 2);
        let raw_entry = &q.entries()[0];
        assert_eq!(raw_entry.visible.area(), 100 - 25);
    }

    #[test]
    fn complete_commands_survive_partial_overlap() {
        let mut q = CommandQueue::new();
        q.push(sfill(0, 0, 10, 10, 1), false);
        q.push(raw(5, 5, 10, 10), false);
        assert_eq!(q.len(), 2);
        // The SFILL keeps its full rect (complete class).
        assert_eq!(q.entries()[0].visible.area(), 100);
    }

    #[test]
    fn transparent_does_not_evict() {
        let mut q = CommandQueue::new();
        q.push(raw(0, 0, 10, 10), false);
        q.push(
            DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 10, 10),
                bits: vec![0xFF; 20],
                fg: Color::BLACK,
                bg: None,
            },
            false,
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.entries()[0].visible.area(), 100);
    }

    #[test]
    fn transparent_evicted_when_fully_covered() {
        let mut q = CommandQueue::new();
        q.push(
            DisplayCommand::Bitmap {
                rect: Rect::new(2, 2, 4, 4),
                bits: vec![0xFF; 4],
                fg: Color::BLACK,
                bg: None,
            },
            false,
        );
        q.push(sfill(0, 0, 10, 10, 3), false);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn scanline_raws_merge() {
        let mut q = CommandQueue::new();
        // 20 one-pixel-tall scan lines, as image rasterization emits.
        for y in 0..20 {
            q.push(raw(5, y, 64, 1), false);
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats().merged, 19);
        let e = &q.entries()[0];
        assert_eq!(e.cmd.dest_rect(), Rect::new(5, 0, 64, 20));
        if let DisplayCommand::Raw { data, .. } = &e.cmd {
            assert_eq!(data.len(), 64 * 20 * 3);
        } else {
            panic!("expected RAW");
        }
    }

    #[test]
    fn adjacent_same_color_sfills_merge() {
        let mut q = CommandQueue::new();
        q.push(sfill(0, 0, 10, 5, 7), false);
        q.push(sfill(0, 5, 10, 5, 7), false);
        assert_eq!(q.len(), 1);
        assert_eq!(q.entries()[0].cmd.dest_rect(), Rect::new(0, 0, 10, 10));
    }

    #[test]
    fn different_color_sfills_do_not_merge() {
        let mut q = CommandQueue::new();
        q.push(sfill(0, 0, 10, 5, 7), false);
        q.push(sfill(0, 5, 10, 5, 8), false);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn non_tiling_sfills_do_not_merge() {
        let mut q = CommandQueue::new();
        q.push(sfill(0, 0, 10, 5, 7), false);
        q.push(sfill(3, 5, 10, 5, 7), false);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clip_raw_extracts_subrect() {
        let cmd = raw(0, 0, 4, 4);
        let clipped = clip_command(&cmd, &Rect::new(1, 1, 2, 2)).unwrap();
        assert_eq!(clipped.dest_rect(), Rect::new(1, 1, 2, 2));
        if let DisplayCommand::Raw { data, .. } = &clipped {
            // Row 1, cols 1..3 of a 4-wide rgb image.
            let expect_first = (4 * 1 + 1) * 3;
            assert_eq!(data[0], expect_first as u8);
            assert_eq!(data.len(), 2 * 2 * 3);
        } else {
            panic!("expected RAW");
        }
    }

    #[test]
    fn clip_sfill() {
        let c = clip_command(&sfill(0, 0, 10, 10, 1), &Rect::new(8, 8, 10, 10)).unwrap();
        assert_eq!(c.dest_rect(), Rect::new(8, 8, 2, 2));
    }

    #[test]
    fn clip_bitmap_unsupported() {
        let bm = DisplayCommand::Bitmap {
            rect: Rect::new(0, 0, 16, 8),
            bits: vec![0; 16],
            fg: Color::BLACK,
            bg: None,
        };
        assert!(clip_command(&bm, &Rect::new(1, 1, 4, 4)).is_none());
        // But a containing clip returns the command unchanged.
        assert!(clip_command(&bm, &Rect::new(0, 0, 100, 100)).is_some());
    }

    #[test]
    fn extract_region_translates() {
        let mut q = CommandQueue::new();
        q.push(sfill(0, 0, 4, 4, 1), false);
        q.push(raw(4, 0, 4, 4), false);
        let (cmds, covered) = q.extract_region(&Rect::new(0, 0, 8, 4), 100, 50);
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].dest_rect(), Rect::new(100, 50, 4, 4));
        assert_eq!(cmds[1].dest_rect(), Rect::new(104, 50, 4, 4));
        assert_eq!(covered.area(), 32);
    }

    #[test]
    fn extract_region_partial_bitmap_reports_uncovered() {
        let mut q = CommandQueue::new();
        q.push(
            DisplayCommand::Bitmap {
                rect: Rect::new(0, 0, 16, 8),
                bits: vec![0xFF; 16],
                fg: Color::BLACK,
                bg: Some(Color::WHITE),
            },
            false,
        );
        // Clip cuts the bitmap: not exactly clippable, so not returned.
        let (cmds, covered) = q.extract_region(&Rect::new(8, 0, 8, 4), 0, 0);
        assert!(cmds.is_empty());
        assert!(covered.is_empty());
    }

    #[test]
    fn drain_empties() {
        let mut q = CommandQueue::new();
        q.push(sfill(0, 0, 1, 1, 1), false);
        let cmds = q.drain();
        assert_eq!(cmds.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn realtime_flag_preserved() {
        let mut q = CommandQueue::new();
        q.push(sfill(0, 0, 1, 1, 1), true);
        assert!(q.entries()[0].realtime);
    }
}
